#!/usr/bin/env python3
"""Drive every registered benchmark through the scenario engine.

Emits one uniform JSON file for the perf-trajectory ``BENCH_*.json``
tooling: per scenario, its name, params, headline metric and wall
time, plus a run-level header (code version, worker count, totals).

Run:  python benchmarks/run_all.py [--tags ablation] [--workers 4]
      [--out BENCH_RESULTS.json] [--cache DIR]
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import registry                          # noqa: E402
from repro.engine.cache import ResultCache, compute_code_version  # noqa: E402
from repro.engine.executor import execute                  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tags", default=None,
        help="comma-separated tag filter (default: every scenario)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--out", default="BENCH_RESULTS.json")
    parser.add_argument(
        "--cache", default=None,
        help="optional result-cache directory (benchmarks default to "
        "uncached so wall times are real)",
    )
    args = parser.parse_args(argv)

    tags = (
        [t.strip() for t in args.tags.split(",") if t.strip()]
        if args.tags
        else None
    )
    entries = registry.select(tags=tags)
    specs = [e.spec for e in entries]
    cache = ResultCache(args.cache) if args.cache else None
    report = execute(
        specs,
        workers=args.workers,
        timeout_s=args.timeout,
        cache=cache,
        progress=lambda r: print(
            f"  {r.name:<14} {r.status:<7} {r.elapsed_s:.2f}s", flush=True
        ),
    )

    benchmarks = []
    for result in report:
        metric, value = result.headline_metric()
        benchmarks.append(
            {
                "scenario": result.name,
                "params": result.params,
                "tags": list(result.tags),
                "status": result.status,
                "headline_metric": {"name": metric, "value": value},
                "wall_time_s": round(result.elapsed_s, 4),
                "cached": result.cached,
            }
        )
    payload = {
        "schema": "repro-bench-v1",
        "code_version": compute_code_version(),
        "workers": args.workers,
        "scenarios": len(benchmarks),
        "failed": len(report.failed),
        "total_wall_time_s": round(
            sum(r.elapsed_s for r in report.executed), 3
        ),
        "benchmarks": benchmarks,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1, default=str))
    print(f"\nwrote {args.out}: {len(benchmarks)} scenarios, "
          f"{len(report.failed)} failed")
    return 1 if report.failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
