#!/usr/bin/env python3
"""Drive every registered benchmark through the scenario engine.

Thin wrapper over ``repro.engine.perf.run_bench`` (the same code behind
``python -m repro bench``): emits the uniform ``BENCH_RESULTS.json``
payload, appends a ``BENCH_TRAJECTORY.json`` entry and gates against
the committed baseline with a configurable regression threshold.

Run:  python benchmarks/run_all.py [--tags ablation] [--workers 4]
      [--out BENCH_RESULTS.json] [--cache DIR] [--threshold 0.25]
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine.perf import run_bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tags", default=None,
        help="comma-separated tag filter (default: every scenario)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--out", default="BENCH_RESULTS.json")
    parser.add_argument(
        "--cache", default=None,
        help="optional result-cache directory (benchmarks default to "
        "uncached so wall times are real)",
    )
    parser.add_argument(
        "--trajectory", default="BENCH_TRAJECTORY.json",
        help="append-only perf trajectory log ('' to skip)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline payload to gate against (default: --out before "
        "this run); '' skips the gate",
    )
    parser.add_argument("--threshold", type=float, default=0.25)
    args = parser.parse_args(argv)

    tags = (
        [t.strip() for t in args.tags.split(",") if t.strip()]
        if args.tags
        else None
    )
    return run_bench(
        tags=tags,
        workers=args.workers,
        timeout_s=args.timeout,
        out=args.out,
        trajectory=args.trajectory or None,
        baseline=args.baseline,
        threshold=args.threshold,
        cache_dir=args.cache,
    )


if __name__ == "__main__":
    raise SystemExit(main())
