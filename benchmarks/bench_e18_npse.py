"""Benchmark E18: SRAM-trie search engine vs CAM: memory and power efficiency.

Regenerates the table for experiment E18 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e18_npse.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e18_npse_vs_cam
from repro.analysis.report import render_experiment


def test_npse_e18(benchmark):
    result = benchmark.pedantic(e18_npse_vs_cam, rounds=1, iterations=1)
    print()
    print(render_experiment("E18", result))
    assert result["verdict"]["trie_wins_energy_at_scale"]
