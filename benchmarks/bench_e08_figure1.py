"""Benchmark E8: Figure 1: the flexibility vs differentiation processor spectrum.

Regenerates the table for experiment E8 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e08_figure1.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e08_figure1
from repro.analysis.report import render_experiment


def test_figure1_e8(benchmark):
    result = benchmark(e08_figure1)
    print()
    print(render_experiment("E8", result))
    assert result["verdict"]["all_on_front"]
