"""Benchmark E2: $5 chip at 20% margin needs >1M units for the 90nm mask alone.

Regenerates the table for experiment E2 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e02_breakeven_mask.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e02_mask_breakeven
from repro.analysis.report import render_experiment


def test_breakeven_mask_e2(benchmark):
    result = benchmark(e02_mask_breakeven)
    print()
    print(render_experiment("E2", result))
    assert result["verdict"]["exceeds_1M"]
