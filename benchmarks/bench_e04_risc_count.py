"""Benchmark E4: 100M+ transistors hold the logic of >1000 32-bit RISC cores.

Regenerates the table for experiment E4 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e04_risc_count.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e04_risc_equivalents
from repro.analysis.report import render_experiment


def test_risc_count_e4(benchmark):
    result = benchmark(e04_risc_equivalents)
    print()
    print(render_experiment("E4", result))
    assert result["verdict"]["exceeds_1000"]
