"""Benchmark E11: Hardware multithreading hides 10-200 cycle interconnect latency.

Regenerates the table for experiment E11 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e11_multithreading.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e11_multithreading
from repro.analysis.report import render_experiment


def test_multithreading_e11(benchmark):
    result = benchmark(e11_multithreading)
    print()
    print(render_experiment("E11", result))
    assert result["verdict"]["recovers_90pct"]
