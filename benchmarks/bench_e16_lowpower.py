"""Benchmark E16: Multi-Vt, back-bias and voltage scaling leakage/energy levers.

Regenerates the table for experiment E16 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e16_lowpower.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e16_low_power
from repro.analysis.report import render_experiment


def test_lowpower_e16(benchmark):
    result = benchmark(e16_low_power)
    print()
    print(render_experiment("E16", result))
    assert result["verdict"]["multi_vt_saves_over_half_leakage"]
