"""Benchmark E10: Topology characterization: bus/ring/tree/mesh/torus/fat-tree/crossbar.

Regenerates the table for experiment E10 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e10_noc_topologies.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e10_noc_topologies
from repro.analysis.report import render_experiment


def test_noc_topologies_e10(benchmark):
    result = benchmark.pedantic(e10_noc_topologies, rounds=1, iterations=1)
    print()
    print(render_experiment("E10", result))
    assert result["verdict"]["bus_saturates_first"]
