"""Benchmark E6: Design productivity peaks at 130nm and declines below 90nm.

Regenerates the table for experiment E6 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e06_productivity.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e06_productivity
from repro.analysis.report import render_experiment


def test_productivity_e6(benchmark):
    result = benchmark(e06_productivity)
    print()
    print(render_experiment("E6", result))
    assert result["verdict"]["declines_after_peak"]
