"""Ablation A1: NoC router pipeline depth.

DESIGN.md section 5 flags the router pipeline delay as a design choice
to ablate: deeper router pipelines raise zero-load latency linearly in
hop count but leave saturation throughput (a link property) unchanged.
"""

from repro.analysis.report import format_table
from repro.noc.metrics import simulate_traffic
from repro.noc.topology import mesh
from repro.noc.traffic import TrafficPattern


def sweep_router_delay(delays=(1.0, 2.0, 4.0, 8.0)):
    rows = []
    for delay in delays:
        metrics = simulate_traffic(
            mesh(16),
            TrafficPattern.UNIFORM,
            offered_load=0.2,
            duration=4000.0,
            warmup=1000.0,
            router_delay=delay,
        )
        rows.append(
            {
                "router_delay": delay,
                "avg_latency": round(metrics.avg_latency, 2),
                "accepted": round(metrics.accepted_load, 3),
                "saturated": metrics.saturated,
            }
        )
    return rows


def test_router_delay_ablation(benchmark):
    rows = benchmark.pedantic(sweep_router_delay, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    latencies = [row["avg_latency"] for row in rows]
    assert latencies == sorted(latencies), "latency must rise with pipe depth"
    # Throughput at this moderate load is unaffected by router depth.
    accepted = [row["accepted"] for row in rows]
    assert max(accepted) - min(accepted) < 0.02
