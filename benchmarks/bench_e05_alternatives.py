"""Benchmark E5: The NRE-flexibility continuum: FPGA low volume, ASIC high.

Regenerates the table for experiment E5 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e05_alternatives.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e05_alternatives
from repro.analysis.report import render_experiment


def test_alternatives_e5(benchmark):
    result = benchmark(e05_alternatives)
    print()
    print(render_experiment("E5", result))
    assert result["verdict"]["fpga_wins_low"] and result["verdict"]["asic_wins_high"]
