"""Benchmark E13: Figure 2: FPPA platform composition from 6 to 64 processors.

Regenerates the table for experiment E13 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e13_fppa.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e13_fppa_composition
from repro.analysis.report import render_experiment


def test_fppa_e13(benchmark):
    result = benchmark(e13_fppa_composition)
    print()
    print(render_experiment("E13", result))
    assert result["verdict"]["has_all_component_classes"]
