"""Ablation A7: hardware vs software OS scheduling cost.

Thin shim over the scenario engine: the sweep logic lives in
:mod:`repro.analysis.ablations` (scenario ``A7``) and is shared with
``python -m repro run --tags ablation``.  The benchmark reports the
runtime of the full ablation and asserts its verdict booleans.
"""

from repro.engine.bench import run_scenario_bench


def test_rtos_switch_cost(benchmark):
    run_scenario_bench("A7", benchmark)
