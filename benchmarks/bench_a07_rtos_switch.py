"""Ablation A7: hardware vs software OS scheduling cost.

Section 5.2: "part of the O/S services will need to be performed in
hardware."  Sweeps the context-switch cost through RTA on a periodic
task set: the set schedules under a 1-cycle hardware scheduler, loses
all margin, then becomes infeasible under software-kernel costs.
"""

from repro.analysis.report import format_table
from repro.rtos.schedulability import (
    PeriodicTaskSpec,
    max_context_switch_cost,
    response_time_analysis,
    schedulable,
)

TASK_SET = [
    PeriodicTaskSpec("isr", period=80, wcet=10),
    PeriodicTaskSpec("codec", period=200, wcet=70),
    PeriodicTaskSpec("control", period=500, wcet=120),
]


def sweep_switch_cost(costs=(0.0, 1.0, 5.0, 15.0, 30.0)):
    rows = []
    for cost in costs:
        responses = response_time_analysis(TASK_SET, context_switch=cost)
        rows.append(
            {
                "switch_cycles": cost,
                "r_isr": responses["isr"],
                "r_codec": responses["codec"],
                "r_control": responses["control"],
                "schedulable": schedulable(TASK_SET, cost),
            }
        )
    rows.append(
        {
            "switch_cycles": f"limit={max_context_switch_cost(TASK_SET):.1f}",
            "r_isr": "-", "r_codec": "-", "r_control": "-",
            "schedulable": "-",
        }
    )
    return rows


def test_rtos_switch_cost(benchmark):
    rows = benchmark.pedantic(sweep_switch_cost, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    assert rows[1]["schedulable"] is True      # 1-cycle hardware swap
    assert rows[4]["schedulable"] is False     # 30-cycle software kernel
