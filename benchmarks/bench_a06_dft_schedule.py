"""Ablation A6: SoC test scheduling vs TAM width.

Section 4's "DFT has to evolve together with SoC complexity": test time
for a 12-core StepNP-class SoC as the test access mechanism widens,
against the serial-test baseline.
"""

from repro.analysis.report import format_table
from repro.dft.schedule import schedule_tests, serial_test_cycles
from repro.dft.wrapper import CoreTestSpec


def make_soc_cores(num_pes=12):
    cores = [
        CoreTestSpec(
            name=f"pe{i}", inputs=64, outputs=64, scan_flops=8_000,
            internal_chains=4, patterns=800, test_power_mw=40.0,
        )
        for i in range(num_pes)
    ]
    cores.append(
        CoreTestSpec(
            name="noc", inputs=256, outputs=256, scan_flops=20_000,
            internal_chains=8, patterns=1200, test_power_mw=80.0,
        )
    )
    return cores


def sweep_tam_width(widths=(4, 8, 16, 32)):
    cores = make_soc_cores()
    rows = []
    for width in widths:
        schedule = schedule_tests(cores, tam_width=width)
        rows.append(
            {
                "tam_width": width,
                "schedule_cycles": schedule.total_cycles,
                "serial_cycles": serial_test_cycles(cores, width),
                "speedup_vs_serial": round(
                    serial_test_cycles(cores, width) / schedule.total_cycles, 2
                ),
            }
        )
    return rows


def test_dft_schedule_sweep(benchmark):
    rows = benchmark.pedantic(sweep_tam_width, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    times = [row["schedule_cycles"] for row in rows]
    assert times == sorted(times, reverse=True), "wider TAM, faster test"
    assert rows[-1]["speedup_vs_serial"] > 1.5
