"""Ablation A6: SoC test scheduling vs TAM width.

Thin shim over the scenario engine: the sweep logic lives in
:mod:`repro.analysis.ablations` (scenario ``A6``) and is shared with
``python -m repro run --tags ablation``.  The benchmark reports the
runtime of the full ablation and asserts its verdict booleans.
"""

from repro.engine.bench import run_scenario_bench


def test_dft_schedule_sweep(benchmark):
    run_scenario_bench("A6", benchmark)
