"""Benchmark E14: IPv4 at 10Gb/s on StepNP: near-100% utilization at >100-cycle latency.

Regenerates the table for experiment E14 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e14_ipv4_stepnp.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e14_ipv4_stepnp
from repro.analysis.report import render_experiment


def test_ipv4_stepnp_e14(benchmark):
    result = benchmark.pedantic(e14_ipv4_stepnp, rounds=1, iterations=1)
    print()
    print(render_experiment("E14", result))
    assert result["verdict"]["near_full_utilization"]
