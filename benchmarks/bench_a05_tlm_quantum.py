"""Ablation A5: TLM quantum size vs simulation speed and accuracy.

The paper's Section 4 TLM argument quantified: loosely-timed modeling
with larger quanta costs fewer kernel events (faster simulation) while
the back-annotated timing stays accurate.
"""

from repro.analysis.report import format_table
from repro.tlm.compare import quantum_sweep


def test_tlm_quantum_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: quantum_sweep(quanta=(10.0, 100.0, 1000.0, 10_000.0),
                              transactions=200),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(rows))
    events = [row["tlm_events"] for row in rows]
    assert events == sorted(events, reverse=True), "bigger quantum, fewer events"
    assert all(row["event_ratio"] > 5 for row in rows)
    assert all(row["timing_error"] < 0.25 for row in rows)
