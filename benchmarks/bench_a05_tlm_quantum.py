"""Ablation A5: TLM quantum size vs simulation speed and accuracy.

Thin shim over the scenario engine: the sweep logic lives in
:mod:`repro.analysis.ablations` (scenario ``A5``) and is shared with
``python -m repro run --tags ablation``.  The benchmark reports the
runtime of the full ablation and asserts its verdict booleans.
"""

from repro.engine.bench import run_scenario_bench


def test_tlm_quantum_sweep(benchmark):
    run_scenario_bench("A5", benchmark)
