"""Ablation A3: LPM trie stride width.

Thin shim over the scenario engine: the sweep logic lives in
:mod:`repro.analysis.ablations` (scenario ``A3``) and is shared with
``python -m repro run --tags ablation``.  The benchmark reports the
runtime of the full ablation and asserts its verdict booleans.
"""

from repro.engine.bench import run_scenario_bench


def test_lpm_stride_ablation(benchmark):
    run_scenario_bench("A3", benchmark)
