"""Ablation A3: LPM trie stride width.

The NPSE-style search engine trades SRAM footprint against lookup
accesses: wider strides mean fewer memory reads per lookup (lower
latency/energy per packet) but more controlled-prefix-expansion blowup
(more SRAM).  This bench quantifies the knee over strides 2-8.

Stride 16 is excluded deliberately: with a realistic /16-/24-heavy
table, every distinct 16-bit prefix top allocates a 65536-entry
second-level node, exploding to gigabytes at 20K prefixes — the
measured reason real search engines (NPSE included) use 4-8-bit
strides.
"""

from repro.analysis.report import format_table
from repro.apps.trafficgen import random_prefix_table
from repro.apps.lpm import LpmTrie


def sweep_stride(strides=(2, 4, 8), prefixes=20_000):
    table = random_prefix_table(prefixes, seed=5)
    probes = [(p | 0x0101) & 0xFFFFFFFF for p, _l, _h in table[:400]]
    rows = []
    for stride in strides:
        trie = LpmTrie(stride=stride)
        for prefix, length, hop in table:
            trie.insert(prefix, length, hop)
        stats = trie.stats()
        accesses = [trie.lookup(addr)[1] for addr in probes]
        rows.append(
            {
                "stride": stride,
                "sram_kb": round(stats.sram_kbytes, 1),
                "avg_accesses": round(sum(accesses) / len(accesses), 2),
                "worst_accesses": stats.worst_case_accesses,
            }
        )
    return rows


def test_lpm_stride_ablation(benchmark):
    rows = benchmark.pedantic(sweep_stride, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    accesses = [row["avg_accesses"] for row in rows]
    assert accesses == sorted(accesses, reverse=True)
    srams = [row["sram_kb"] for row in rows]
    assert srams[-1] > srams[0], "wider stride pays in SRAM"
