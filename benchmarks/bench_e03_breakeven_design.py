"""Benchmark E3: $10-100M design NRE at 0.13um implies 10-100M unit volumes.

Regenerates the table for experiment E3 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e03_breakeven_design.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e03_design_breakeven
from repro.analysis.report import render_experiment


def test_breakeven_design_e3(benchmark):
    result = benchmark(e03_design_breakeven)
    print()
    print(render_experiment("E3", result))
    assert result["verdict"]["volume_in_10M_100M_band"]
