"""Benchmark E15: Automated application-to-platform mapping beats naive placement.

Regenerates the table for experiment E15 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e15_mapping.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e15_mapping
from repro.analysis.report import render_experiment


def test_mapping_e15(benchmark):
    result = benchmark(e15_mapping)
    print()
    print(render_experiment("E15", result))
    assert result["verdict"]["auto_beats_naive"]
