"""Ablation A8: FlexWare retargeting across the processor spectrum.

Thin shim over the scenario engine: the sweep logic lives in
:mod:`repro.analysis.ablations` (scenario ``A8``) and is shared with
``python -m repro run --tags ablation``.  The benchmark reports the
runtime of the full ablation and asserts its verdict booleans.
"""

from repro.engine.bench import run_scenario_bench


def test_flexware_retargeting(benchmark):
    run_scenario_bench("A8", benchmark)
