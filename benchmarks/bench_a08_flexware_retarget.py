"""Ablation A8: FlexWare retargeting across the processor spectrum.

One FIR source program costed on GP RISC, MAC-fusing DSP, and an ASIP
with a tap instruction — the Figure-1 differentiation axis derived
bottom-up from code, plus an executed-on-ISS correctness check.
"""

from repro.analysis.report import format_table
from repro.flexware.codegen import compile_to_risc
from repro.flexware.ir import fir_ir
from repro.flexware.targets import retargeting_report


def retarget_fir(taps=32):
    program = fir_ir(taps=taps)
    rows = retargeting_report(program)
    # Correctness anchor: the RISC-compiled binary computes the same
    # dot product the reference evaluator does.
    memory = {i: i + 1 for i in range(taps)}
    memory.update({0x200 + i: 2 for i in range(taps)})
    sample_base, coeff_base = program.inputs
    expected = program.evaluate(
        {sample_base: 0, coeff_base: 0x200}, memory=dict(memory)
    )
    compiled = compile_to_risc(program)
    result, cpu = compiled.run(
        {sample_base: 0, coeff_base: 0x200}, memory=memory
    )
    assert result == expected
    for row in rows:
        row["iss_verified"] = row["target"] != "gp_risc" or result == expected
        row["iss_cycles"] = cpu.cycles if row["target"] == "gp_risc" else "-"
    return rows


def test_flexware_retargeting(benchmark):
    rows = benchmark.pedantic(retarget_fir, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    order = [row["target"] for row in rows]
    assert order == ["asip", "dsp", "gp_risc"]
