"""Benchmark E17: Embedded memory architecture tradeoffs: eSRAM/eDRAM/external.

Regenerates the table for experiment E17 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e17_memory.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e17_memory_tradeoff
from repro.analysis.report import render_experiment


def test_memory_e17(benchmark):
    result = benchmark(e17_memory_tradeoff)
    print()
    print(render_experiment("E17", result))
    assert result["verdict"]["esram_wins_small"]
