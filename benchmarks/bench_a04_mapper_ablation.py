"""Ablation A4: mapper quality vs optimization cost.

Compares the constructive mappers against simulated annealing at
increasing iteration budgets: how much makespan each additional unit of
optimization time buys — the MultiFlex "assist and automate
optimization where possible" tradeoff.
"""

import time

from repro.analysis.report import format_table
from repro.mapping.anneal import anneal_map
from repro.mapping.dse import make_platform_model
from repro.mapping.evaluate import evaluate_mapping
from repro.mapping.mapper import MAPPERS, run_mapper
from repro.mapping.taskgraph import layered_random_graph


def mapper_cost_quality(tasks=60, num_pes=8, seed=3):
    graph = layered_random_graph(tasks, layers=6, seed=seed)
    platform = make_platform_model(num_pes, "mesh", dsp_fraction=0.25)
    rows = []
    for name in sorted(MAPPERS):
        start = time.perf_counter()
        mapping = run_mapper(name, graph, platform)
        elapsed = time.perf_counter() - start
        cost = evaluate_mapping(graph, platform, mapping)
        rows.append(
            {
                "mapper": name,
                "makespan": round(cost.makespan_cycles, 1),
                "map_time_ms": round(elapsed * 1000, 2),
            }
        )
    for iterations in (200, 1000, 3000):
        start = time.perf_counter()
        mapping = anneal_map(graph, platform, iterations=iterations)
        elapsed = time.perf_counter() - start
        cost = evaluate_mapping(graph, platform, mapping)
        rows.append(
            {
                "mapper": f"anneal-{iterations}",
                "makespan": round(cost.makespan_cycles, 1),
                "map_time_ms": round(elapsed * 1000, 2),
            }
        )
    return rows


def test_mapper_ablation(benchmark):
    rows = benchmark.pedantic(mapper_cost_quality, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    by_name = {row["mapper"]: row["makespan"] for row in rows}
    assert by_name["comm_aware"] < by_name["random"]
    assert by_name["anneal-3000"] <= by_name["anneal-200"] * 1.02
