"""Benchmark E9: 6-10 cycles to cross a 50nm die; NoC latencies several x larger.

Regenerates the table for experiment E9 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e09_wire_delay.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e09_wire_delay
from repro.analysis.report import render_experiment


def test_wire_delay_e9(benchmark):
    result = benchmark(e09_wire_delay)
    print()
    print(render_experiment("E9", result))
    assert result["verdict"]["in_6_10_band"]
