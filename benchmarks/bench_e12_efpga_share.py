"""Benchmark E12: The 10x eFPGA penalty limits it to <5% of SoC functionality.

Regenerates the table for experiment E12 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e12_efpga_share.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e12_efpga_share
from repro.analysis.report import render_experiment


def test_efpga_share_e12(benchmark):
    result = benchmark(e12_efpga_share)
    print()
    print(render_experiment("E12", result))
    assert result["verdict"]["acceptable_below_5pct"]
