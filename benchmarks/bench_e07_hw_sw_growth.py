"""Benchmark E7: HW +56%/yr vs SW +140%/yr; SW effort overtakes HW pre-2003.

Regenerates the table for experiment E7 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e07_hw_sw_growth.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e07_hw_sw_growth
from repro.analysis.report import render_experiment


def test_hw_sw_growth_e7(benchmark):
    result = benchmark(e07_hw_sw_growth)
    print()
    print(render_experiment("E7", result))
    assert result["verdict"]["before_paper"]
