"""Ablation A2: hardware vs software thread swap cost.

The paper's Section 6.2 claims hardware multithreading swaps threads
"in one cycle".  This ablation quantifies why that matters: sweeping
the swap cost from the 1-cycle hardware figure to a 200-cycle software
context switch shows utilization collapsing for OS-style switching.
"""

from repro.analysis.report import format_table
from repro.processors.multithread import run_latency_hiding_experiment


def sweep_swap_cost(costs=(0.0, 1.0, 10.0, 50.0, 200.0)):
    rows = []
    for cost in costs:
        result = run_latency_hiding_experiment(
            num_threads=8,
            compute_cycles=20.0,
            remote_latency=100.0,
            duration=20_000.0,
            swap_cycles=cost,
        )
        rows.append(
            {
                "swap_cycles": cost,
                "utilization": round(result["utilization"], 3),
                "occupancy": round(result["occupancy"], 3),
                "throughput": round(result["throughput"], 4),
            }
        )
    return rows


def test_thread_swap_ablation(benchmark):
    rows = benchmark.pedantic(sweep_swap_cost, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    utils = [row["utilization"] for row in rows]
    assert utils == sorted(utils, reverse=True)
    by_cost = {row["swap_cycles"]: row["utilization"] for row in rows}
    assert by_cost[1.0] > 0.9          # the paper's 1-cycle HW swap
    assert by_cost[200.0] < 0.4        # an OS context switch
