"""Ablation A9: the 1-GOPS reconfigurable signal-processing IC.

Thin shim over the scenario engine: the sweep logic lives in
:mod:`repro.analysis.ablations` (scenario ``A9``) and is shared with
``python -m repro run --tags ablation``.  The benchmark reports the
runtime of the full ablation and asserts its verdict booleans.
"""

from repro.engine.bench import run_scenario_bench


def test_reconfigurable_gops(benchmark):
    run_scenario_bench("A9", benchmark)
