"""Ablation A9: the 1-GOPS reconfigurable signal-processing IC.

Section 8's first bullet: a configurable RISC core plus an eFPGA fabric
implementing application-specific instruction extensions.  Runs a SAD
kernel with and without the fabric extension and reports sustained
GOPS at the IC's 200 MHz class clock.
"""

from repro.analysis.report import format_table
from repro.processors.reconfigurable import (
    STANDARD_EXTENSIONS,
    gops_estimate,
    run_extended,
)

_EXTENDED_KERNEL = """
    li r1, 0x10203040
    li r2, 0x0F213F42
    li r4, 100
loop:
    xop0 r3, r1, r2
    xop0 r5, r1, r2
    xop0 r6, r1, r2
    xop0 r7, r1, r2
    subi r4, r4, 1
    bne r4, r0, loop
    halt
"""

# The same four SADs in base ISA (one byte lane shown x4 via shifts).
_BASE_KERNEL_HEADER = """
    li r1, 0x10203040
    li r2, 0x0F213F42
    li r4, 100
loop:
"""
_BASE_SAD = "".join(
    f"""
    shri r5, r1, {shift}
    andi r5, r5, 0xFF
    shri r6, r2, {shift}
    andi r6, r6, 0xFF
    sub r7, r5, r6
    blt r7, r0, neg{tag}_{shift}
    jmp pos{tag}_{shift}
neg{tag}_{shift}:
    sub r7, r0, r7
pos{tag}_{shift}:
    add r3, r3, r7
"""
    for tag in range(4)
    for shift in (0, 8, 16, 24)
)
_BASE_KERNEL = (
    _BASE_KERNEL_HEADER
    + "    li r3, 0\n"
    + _BASE_SAD
    + """
    subi r4, r4, 1
    bne r4, r0, loop
    halt
"""
)


def gops_comparison():
    extended = run_extended(_EXTENDED_KERNEL,
                            {0: STANDARD_EXTENSIONS["sad8"]})
    base = run_extended(_BASE_KERNEL, {})
    return [
        {
            "configuration": "risc+efpga(sad8)",
            "cycles": extended.cycles,
            "gops@200MHz": round(gops_estimate(extended, 200.0), 2),
        },
        {
            "configuration": "base risc",
            "cycles": base.cycles,
            "gops@200MHz": round(gops_estimate(base, 200.0), 2),
        },
    ]


def test_reconfigurable_gops(benchmark):
    rows = benchmark.pedantic(gops_comparison, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    by_config = {row["configuration"]: row for row in rows}
    # The paper's IC claims 1 GOPS; the base RISC manages a fraction.
    assert by_config["risc+efpga(sad8)"]["gops@200MHz"] > 0.9
    assert by_config["base risc"]["gops@200MHz"] < 0.3
    assert (
        by_config["base risc"]["cycles"]
        > 5 * by_config["risc+efpga(sad8)"]["cycles"]
    )
