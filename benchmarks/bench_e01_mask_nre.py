"""Benchmark E1: Mask-set NRE x10 over three generations, >$1M at 90nm.

Regenerates the table for experiment E1 (see DESIGN.md / EXPERIMENTS.md)
and reports the runtime of the full experiment as the benchmark metric.
Run with ``pytest benchmarks/bench_e01_mask_nre.py --benchmark-only -s`` to see the table.
"""

from repro.analysis.experiments import e01_mask_nre
from repro.analysis.report import render_experiment


def test_mask_nre_e1(benchmark):
    result = benchmark(e01_mask_nre)
    print()
    print(render_experiment("E1", result))
    assert result["verdict"]["exceeds_1M_at_90nm"]
