#!/usr/bin/env python
"""Audit a coordinator journal: resumed runs re-execute nothing.

Usage: python scripts/check_no_reexecution.py JOURNAL.jsonl

Replays the journal (snapshot-aware: a compacted journal folds its
snapshot plus tail) and asserts the crash-resume invariant the cluster
is built around: **no spec hash completed before the last ``resume``
marker appears in any lease recorded after it.**  A violation means a
restarted coordinator handed already-banked work back to a worker —
wasted compute at best, a correctness smell at worst.

Also prints the replay cost (records folded) and snapshot provenance,
so the chaos CI smoke doubles as a living demonstration that resume
work after compaction is proportional to live jobs, not to history.
Exit 0 when the invariant holds, 1 with the offending hashes
otherwise, 2 on usage/missing-journal errors.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster.journal import JobJournal  # noqa: E402


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print(__doc__)
        return 2
    journal_path = Path(argv[0])
    if not journal_path.exists():
        print(f"error: no journal at {journal_path}")
        return 2
    state = JobJournal.replay(journal_path)
    provenance = (
        "snapshot + tail" if state.from_snapshot
        else "tail only (TORN SNAPSHOT)" if state.torn_snapshot
        else "full journal"
    )
    print(
        f"replayed {state.replayed_records} records ({provenance}), "
        f"{len(state.jobs)} jobs, {state.resumes} resume(s), "
        f"{state.dropped_lines} torn/dropped lines"
    )
    if state.resumes == 0:
        print("no resume marker: nothing to audit (run with --resume)")
        return 0
    completed_before = state.completed_at_last_resume
    post_resume = state.leases_after_last_resume()
    offenders = sorted({
        spec_hash
        for (_job, spec_hash, _worker) in post_resume
        if spec_hash in completed_before
    })
    print(
        f"{len(completed_before)} spec(s) were complete at the last "
        f"resume; {len(post_resume)} lease(s) granted after it"
    )
    if offenders:
        print("RE-EXECUTION DETECTED — completed specs leased again:")
        for spec_hash in offenders:
            print(f"  {spec_hash}")
        return 1
    print("no re-execution: every post-resume lease was pending work")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
