#!/usr/bin/env python
"""Assert two engine report JSONs hold the same deterministic results.

Usage: python scripts/compare_reports.py A.json B.json

Compares the order-independent set of ``comparable_payload`` records
(name, spec hash, status, verdict, rows) — the same equivalence the
engine's serial-vs-parallel tests use.  Timing, backend, and cache
provenance are expected to differ and are ignored.  Exit 0 on match,
1 with a diff summary otherwise.

CI uses this to assert round-trip fidelity: a ``repro submit`` stream
through the scenario service must equal a local ``repro run`` of the
same specs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine.results import Report  # noqa: E402


def payload_index(report: Report) -> dict:
    return {
        (r.name, r.spec_hash): json.dumps(
            r.comparable_payload(), sort_keys=True, default=str
        )
        for r in report
    }


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    left, right = (payload_index(Report.load(path)) for path in argv)
    ok = True
    for key in sorted(set(left) | set(right)):
        name, spec_hash = key
        if key not in left:
            print(f"MISSING in {argv[0]}: {name} ({spec_hash[:12]})")
        elif key not in right:
            print(f"MISSING in {argv[1]}: {name} ({spec_hash[:12]})")
        elif left[key] != right[key]:
            print(f"DIFFERS: {name} ({spec_hash[:12]})")
        else:
            continue
        ok = False
    if ok:
        print(f"{len(left)} results identical across both reports")
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
