#!/usr/bin/env python
"""Assert a results warehouse agrees with a merged report JSON.

Usage: python scripts/check_warehouse.py WAREHOUSE.sqlite REPORT.json [JOB_ID]

Parity is checked three ways:

1. **Row count** — the warehouse holds exactly one row per report
   result (for the given job id when one is passed, otherwise across
   the whole ``results`` table).
2. **Spec identity** — the multiset of (scenario, spec_hash) pairs
   matches the report's.
3. **Headline metrics & status** — for every spec hash, the recorded
   headline value and status equal the report's (wall time and cache
   provenance are expected to differ between warehouse rows and the
   streamed report, and are ignored).

CI runs this after the cluster smoke sweep: every result a sharded
cluster job streamed back must also be one queryable warehouse row.
Exit 0 on parity, 1 with a diff summary otherwise.
"""

from __future__ import annotations

import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine.results import Report  # noqa: E402
from repro.telemetry.warehouse import ResultsWarehouse  # noqa: E402


def report_index(report: Report) -> dict:
    index: dict = {}
    for result in report:
        name, value = result.headline_metric()
        numeric = (
            float(value)
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
            else None
        )
        index[(result.name, result.spec_hash)] = (
            result.status, name, numeric,
        )
    return index


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    wh_path, report_path = argv[0], argv[1]
    job_id = argv[2] if len(argv) == 3 else None
    report = Report.load(report_path)
    expected = report_index(report)
    filters = {"job": job_id} if job_id else {}
    with ResultsWarehouse(wh_path) as warehouse:
        rows = warehouse.query(**filters)

    ok = True
    scope = f"job {job_id}" if job_id else "all rows"
    total = len(list(report))
    if len(rows) != total:
        print(
            f"ROW COUNT MISMATCH ({scope}): warehouse has {len(rows)} "
            f"rows, report has {total} results"
        )
        ok = False

    expected_keys = Counter((r.name, r.spec_hash) for r in report)
    actual_keys = Counter((r["scenario"], r["spec_hash"]) for r in rows)
    for key in sorted(set(expected_keys) | set(actual_keys)):
        want, got = expected_keys[key], actual_keys[key]
        if want != got:
            print(
                f"SPEC MISMATCH: {key[0]} ({key[1][:12]}) — "
                f"report x{want}, warehouse x{got}"
            )
            ok = False

    by_hash = {(r["scenario"], r["spec_hash"]): r for r in rows}
    for key, (status, metric_name, metric_value) in expected.items():
        row = by_hash.get(key)
        if row is None:
            continue  # already reported above
        if row["status"] != status:
            print(
                f"STATUS DIFFERS: {key[0]} — report {status!r}, "
                f"warehouse {row['status']!r}"
            )
            ok = False
        if metric_value is not None:
            recorded = row["headline_value"]
            if recorded is None or abs(recorded - metric_value) > 1e-9:
                print(
                    f"HEADLINE DIFFERS: {key[0]} {metric_name} — "
                    f"report {metric_value!r}, warehouse {recorded!r}"
                )
                ok = False

    if ok:
        print(
            f"{len(rows)} warehouse rows match the report "
            f"({scope}: counts, spec hashes, statuses, headline metrics)"
        )
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
