#!/usr/bin/env python3
"""Low-power wireless LAN implementation exploration.

Section 8: "The use of coarse and fine grain configurable fabrics allows
the system designer to optimize performance versus power consumption.
We are exploring these issues in the application of low-power wireless
LAN's."  Plus the Section 4 circuit-level levers: multi-Vt, back bias,
voltage scaling.

Run:  python examples/wireless_lowpower.py
"""

from repro.analysis.report import format_table
from repro.apps.wireless import wlan_power_comparison
from repro.technology.node import node
from repro.technology.power import (
    PowerModel,
    VtClass,
    dvs_energy_delay,
    leakage_current_per_um,
    multi_vt_optimize,
)


def main():
    print("=" * 72)
    print("1. 802.11a baseband: implementation style per stage")
    print("=" * 72)
    rows = [
        {
            "assignment": name,
            "symbol_time_us": round(data["symbol_time_us"], 2),
            "power_mw": round(data["power_mw"], 1),
            "meets_rate": data["feasible"],
        }
        for name, data in wlan_power_comparison().items()
    ]
    print(format_table(rows))
    print(
        "\nhardwired blocks win on power by ~50x over software; the eFPGA"
        "\npays the paper's 10x penalty over hardwired; 'mixed' keeps the"
        "\nflexible DSP only where its power cost is affordable."
    )

    process = node("90nm")
    block = PowerModel.for_block(process, transistors=20e6)

    print()
    print("=" * 72)
    print("2. Multi-Vt assignment on a 20M-transistor 90nm block")
    print("=" * 72)
    rows = []
    for critical in (1.0, 0.5, 0.2, 0.1):
        result = multi_vt_optimize(block, critical_fraction=critical)
        rows.append(
            {
                "critical_fraction": critical,
                "leakage_mw": round(result["optimized_leakage_w"] * 1000, 2),
                "leakage_saving": f"{result['leakage_saving']:.0%}",
            }
        )
    print(format_table(rows))

    print()
    print("=" * 72)
    print("3. Back bias: leakage vs reverse body bias")
    print("=" * 72)
    base = leakage_current_per_um(process)
    rows = [
        {
            "body_bias_v": bias,
            "leakage_ratio": round(
                leakage_current_per_um(process, VtClass.NOMINAL, bias) / base, 4
            ),
        }
        for bias in (0.0, 0.25, 0.5, 1.0)
    ]
    print(format_table(rows))

    print()
    print("=" * 72)
    print("4. Voltage scaling: energy vs delay")
    print("=" * 72)
    rows = [
        {
            "vdd_scale": scale,
            "energy_factor": round(dvs_energy_delay(block, scale)["energy_factor"], 3),
            "delay_factor": round(dvs_energy_delay(block, scale)["delay_factor"], 3),
        }
        for scale in (1.0, 0.9, 0.8, 0.7, 0.6)
    ]
    print(format_table(rows))


if __name__ == "__main__":
    main()
