#!/usr/bin/env python3
"""The Section-4 'evolutionary solutions' toolbox in action.

The paper's Section 4 lists the design-automation evolutions the two
lower abstraction levels need: TLM for fast co-simulation, DFT that
scales with SoC complexity, lightweight OS services (in hardware where
needed), and retargetable software tools.  This example runs each of
those subsystems on a StepNP-class SoC description.

Run:  python examples/codesign_tools.py
"""

from repro.analysis.report import format_table
from repro.dft.schedule import schedule_tests, serial_test_cycles
from repro.dft.bist import memory_bist_time_ms, patterns_for_coverage
from repro.dft.wrapper import CoreTestSpec
from repro.flexware.codegen import compile_to_risc
from repro.flexware.ir import fir_ir
from repro.flexware.targets import retargeting_report
from repro.rtos.schedulability import (
    PeriodicTaskSpec,
    max_context_switch_cost,
    response_time_analysis,
)
from repro.tlm.compare import quantum_sweep


def main():
    print("=" * 72)
    print("1. TLM co-simulation speedup (Section 4, [10])")
    print("=" * 72)
    print(format_table(quantum_sweep(transactions=200)))
    print(
        "\nevent_ratio = cycle-accurate kernel events per TLM event: the"
        "\nsimulation-speed argument for developing software against TLM"
        "\nplatform models before RTL exists."
    )

    print()
    print("=" * 72)
    print("2. SoC test scheduling over IEEE 1500 wrappers (Section 4)")
    print("=" * 72)
    cores = [
        CoreTestSpec(f"pe{i}", 64, 64, 8_000, 4, 800, 40.0) for i in range(8)
    ] + [CoreTestSpec("noc", 256, 256, 20_000, 8, 1200, 80.0)]
    rows = []
    for width in (8, 16, 32):
        schedule = schedule_tests(cores, tam_width=width)
        rows.append(
            {
                "tam_width": width,
                "parallel_cycles": schedule.total_cycles,
                "serial_cycles": serial_test_cycles(cores, width),
            }
        )
    print(format_table(rows))
    print(
        f"\n2MB eSRAM BIST (March C-): "
        f"{memory_bist_time_ms(2.0):.1f} ms at 100 MHz; "
        f"95% logic coverage needs "
        f"{patterns_for_coverage(0.95):,} pseudo-random patterns."
    )

    print()
    print("=" * 72)
    print("3. OS services in hardware (Section 5.2)")
    print("=" * 72)
    tasks = [
        PeriodicTaskSpec("isr", period=80, wcet=10),
        PeriodicTaskSpec("codec", period=200, wcet=70),
        PeriodicTaskSpec("control", period=500, wcet=120),
    ]
    rows = []
    for cost, label in ((1.0, "hardware scheduler"), (20.0, "software kernel")):
        responses = response_time_analysis(tasks, context_switch=cost)
        rows.append({"scheduler": label, "switch_cycles": cost, **responses})
    print(format_table(rows))
    limit = max_context_switch_cost(tasks)
    print(
        f"\nthe set stays schedulable up to a {limit:.1f}-cycle context"
        "\nswitch: a hardware scheduler clears it easily, a heavyweight"
        "\nsoftware kernel does not."
    )

    print()
    print("=" * 72)
    print("4. Retargetable software tools (Section 8, FlexWare)")
    print("=" * 72)
    program = fir_ir(taps=32)
    print(format_table(retargeting_report(program)))
    compiled = compile_to_risc(program)
    print(
        f"\nthe same 32-tap FIR source compiles to {compiled.instructions} "
        f"RISC instructions ({compiled.spill_slots} spill slots) and runs "
        "on the bundled ISS; the DSP and ASIP targets cost the identical "
        "IR at their fused-datapath rates."
    )


if __name__ == "__main__":
    main()
