#!/usr/bin/env python3
"""Multimedia application-to-platform mapping exploration.

Section 8's outlook: extend the MP-SoC programming models "for consumer
multimedia applications like image processing and digital video".  This
example maps a video-decoder pipeline onto candidate platforms with the
MultiFlex-style mappers, explores the design space (PE count x topology
x mapper), and reports the Pareto front plus the frame rates each
product class needs.

Run:  python examples/multimedia_mapping.py
"""

from repro.analysis.report import format_table
from repro.apps.multimedia import (
    FRAME_RATE_TARGETS,
    frame_rate_on_platform,
    video_pipeline_graph,
)
from repro.mapping.dse import explore, make_platform_model, pareto_points
from repro.mapping.evaluator import MappingEvaluator
from repro.mapping.mapper import MAPPERS, run_mapper
from repro.noc.topology import TopologyKind


def main():
    graph = video_pipeline_graph(parallel_slices=4)
    print(
        f"video pipeline: {len(graph)} tasks, "
        f"{graph.total_compute():,.0f} reference cycles/frame, "
        f"critical path {graph.critical_path_cycles():,.0f} cycles"
    )

    print()
    print("=" * 72)
    print("1. Mapper comparison on an 8-PE mesh platform (25% DSPs)")
    print("=" * 72)
    platform = make_platform_model(8, "mesh", dsp_fraction=0.25)
    evaluator = MappingEvaluator(graph, platform)
    rows = []
    for name in sorted(MAPPERS):
        mapping = run_mapper(name, graph, platform)
        cost = evaluator.evaluate(mapping, mapper_name=name)
        rows.append(cost.as_row())
    print(format_table(rows))

    print()
    print("=" * 72)
    print("2. Design-space exploration (PE count x topology x mapper)")
    print("=" * 72)
    points = explore(
        graph,
        pe_counts=(4, 8, 16),
        topologies=(TopologyKind.MESH, TopologyKind.FAT_TREE),
        mappers=("round_robin", "comm_aware"),
    )
    front = pareto_points(points)
    rows = [
        {
            "pes": p.num_pes,
            "topology": p.topology,
            "mapper": p.mapper,
            "makespan": round(p.cost.makespan_cycles),
            "area_proxy": f"{p.area_proxy:,.0f}",
            "pareto": "*" if p in front else "",
        }
        for p in points
    ]
    print(format_table(rows))

    print()
    print("=" * 72)
    print("3. Frame rates by platform and product target (300 MHz)")
    print("=" * 72)
    rows = []
    for num_pes, dsp in ((4, 0.0), (8, 0.25), (8, 0.5), (16, 0.5)):
        candidate = make_platform_model(num_pes, "mesh", dsp_fraction=dsp)
        fps = frame_rate_on_platform(candidate)
        row = {"pes": num_pes, "dsp_mix": f"{dsp:.0%}", "fps": round(fps, 1)}
        for product, target in FRAME_RATE_TARGETS.items():
            row[product] = "ok" if fps >= target else "-"
        rows.append(row)
    print(format_table(rows))


if __name__ == "__main__":
    main()
