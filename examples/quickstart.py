#!/usr/bin/env python3
"""Quickstart: build an MP-SoC platform, deploy a DSOC object, call it.

This walks the paper's whole stack in ~60 lines:

1. describe a StepNP-style platform (processors + NoC + memory + I/O);
2. instantiate it as a live simulation;
3. define a DSOC object (the paper's CORBA-lite programming model);
4. deploy it replicated across the processor array;
5. invoke it from a client and read the platform metrics.

Then it hands the same stack to the scenario engine: every experiment
and ablation in this repo is a registered scenario, runnable in batch
(``python -m repro run --tags smoke --workers 4``).

Run:  python examples/quickstart.py
"""

from repro.dsoc import DsocObject, DsocRuntime, Interface, Method, Param
from repro.platform import build_platform, stepnp_spec


class Crypto(DsocObject):
    """A toy work object: 'encrypt' costs compute plus one table read."""

    interface = Interface(
        "Crypto",
        (Method("encrypt", (Param("block", "u32"),)),),
    )

    def __init__(self, key_table_terminal):
        super().__init__()
        self.key_table_terminal = key_table_terminal

    def serve_encrypt(self, ctx, svc, block):
        yield from ctx.compute(30)                      # rounds of mixing
        key = yield from svc.read(self.key_table_terminal, block & 0xFF)
        yield from ctx.compute(10)                      # final whitening
        return (block * 2654435761 + (key or 0)) & 0xFFFFFFFF


def main():
    # 1-2. Describe and instantiate the platform (Figure 2 of the paper).
    spec = stepnp_spec(num_pes=8, threads=4, topology="fat_tree")
    platform = build_platform(spec)
    print("platform:", spec.summary())

    # 3-4. Deploy the DSOC object on every PE, 4 server threads each.
    runtime = DsocRuntime(platform)
    table_terminal = platform.memory_terminal("esram")
    runtime.deploy_replicated(
        "crypto", lambda: Crypto(table_terminal), server_threads=4
    )

    # 5. Drive it from the line-interface terminal.
    client_terminal = platform.line_interfaces[0].terminal
    proxy = runtime.proxy(client_terminal, "crypto")
    results = []

    def client():
        for block in range(64):
            ciphertext = yield proxy.call("encrypt", block)
            results.append(ciphertext)

    platform.sim.spawn(client())
    platform.run(until=200_000)

    print(f"encrypted {len(results)} blocks; first 4: {results[:4]}")
    print(f"requests served across replicas: {runtime.total_served('crypto')}")
    print(f"average PE utilization: {platform.average_pe_utilization():.3f}")
    assert len(results) == 64

    # 6. The scenario engine: the batch interface over every workload.
    engine_demo()


def engine_demo():
    """Run two registered scenarios through the engine, serially."""
    from repro.engine import execute, registry

    print()
    print("scenario engine: "
          f"{len(registry.all_scenarios())} registered scenarios, tags "
          f"{', '.join(sorted(registry.all_tags()))}")
    specs = [entry.spec for entry in registry.select(names=["E1", "A7"])]
    report = execute(specs, workers=1)
    print(report.render())
    print()
    print("CLI equivalents:")
    print("  python -m repro list --tags smoke")
    print("  python -m repro run --tags ablation --workers 8 "
          "--cache .repro_cache")
    print("  python -m repro run --names E1 A7 --out report.json")


if __name__ == "__main__":
    main()
