#!/usr/bin/env python3
"""NoC topology characterization.

Section 6.1 of the paper: "there is still much remaining work to be done
to characterize the various topologies — ranging from bus, ring, tree to
full-crossbar — and their effectiveness for different application
domains."  This explorer does that characterization: for each topology
and traffic pattern it reports zero-load latency, latency at moderate
load, the saturation point, and the wiring cost.

Run:  python examples/noc_topology_explorer.py [terminals]
"""

import sys

from repro.analysis.report import format_table
from repro.noc.metrics import saturation_load, simulate_traffic
from repro.noc.topology import bus, crossbar, fat_tree, mesh, ring, torus, tree
from repro.noc.traffic import TrafficPattern


def explore(terminals=16, saturation_loads=None, patterns=None):
    builders = [bus, ring, tree, mesh, torus, fat_tree, crossbar]
    if terminals < 9:
        builders.remove(torus)  # a torus needs >=3 routers per dimension
    patterns = patterns or [
        TrafficPattern.UNIFORM,
        TrafficPattern.NEIGHBOR,
        TrafficPattern.HOTSPOT,
    ]
    loads = saturation_loads or [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
    rows = []
    for build in builders:
        topology = build(terminals)
        for pattern in patterns:
            light = simulate_traffic(
                topology, pattern, 0.05, duration=3000.0, warmup=750.0
            )
            sat = saturation_load(
                topology,
                pattern,
                loads=loads,
                duration=2500.0,
                warmup=500.0,
            )
            rows.append(
                {
                    "topology": topology.name,
                    "pattern": pattern.value,
                    "latency@5%": round(light.avg_latency, 1),
                    "saturation_load": sat,
                    "wiring_cost": round(topology.wiring_cost()),
                }
            )
    return rows


def main():
    terminals = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    rows = explore(terminals)
    print(f"NoC topology characterization at {terminals} terminals")
    print("(saturation_load = offered flits/terminal/cycle at which the")
    print(" network saturates; inf = never within the sweep)\n")
    print(format_table(rows))
    print(
        "\nReading: the bus saturates almost immediately (the paper's"
        "\nargument for moving away from shared buses); the crossbar has"
        "\nthe best latency but a wiring cost an order of magnitude above"
        "\nthe mesh/fat-tree, which scale gracefully."
    )


if __name__ == "__main__":
    main()
