#!/usr/bin/env python3
"""The paper's headline experiment: IPv4 fast path at 10 Gbit/s on StepNP.

Section 7.2 of the paper: "We achieved near 100% utilization of the
embedded processors and threads, even in presence of NoC interconnect
latencies of over 100 cycles, while processing worst-case traffic at a
10 Gbit line rate."

This script sweeps the hardware thread count at a fixed >100-cycle
forwarding-table latency and prints the utilization/throughput table —
single-threaded cores collapse, multithreaded cores sustain line rate.

Run:  python examples/ipv4_stepnp.py
"""

from repro.analysis.report import format_table
from repro.apps.stepnp_ipv4 import run_ipv4_on_stepnp


def main():
    rows = []
    for threads in (1, 2, 4, 8):
        result = run_ipv4_on_stepnp(
            num_pes=16,
            threads_per_pe=threads,
            packets=1200,
            line_rate_gbps=10.0,
            packet_bytes=40,          # worst case: minimum-size packets
            extra_table_latency=100.0,  # ">100 cycle" NoC regime
        )
        rows.append(result.as_row())
    print("IPv4 fast path on StepNP (16 PEs, SPIN fat-tree NoC,")
    print("forwarding-table round trips > 100 cycles):\n")
    print(format_table(rows))
    best = rows[-1]
    print(
        f"\nWith {best['threads']} hardware threads per PE the platform "
        f"sustains {best['sustained_gbps']} Gb/s of the offered "
        f"{best['offered_gbps']} Gb/s at {best['utilization']:.0%} PE "
        "utilization — the paper's result."
    )


if __name__ == "__main__":
    main()
