#!/usr/bin/env python3
"""SoC economics explorer: the numbers behind the paper's Section 1.

Regenerates the economic case for flexible platforms: mask-set NRE
escalation, break-even volumes at the paper's $5/20% example, the
NRE-flexibility continuum winners by volume, and platform amortization
over a product family.

Run:  python examples/platform_economics.py
"""

from repro.analysis.report import format_table
from repro.economics.alternatives import best_alternative
from repro.economics.breakeven import BreakEven, platform_amortization
from repro.economics.complexity import risc_equivalents_at_node
from repro.economics.nre import mask_nre_series
from repro.economics.productivity import productivity_series
from repro.technology.node import node_names


def main():
    print("=" * 72)
    print("1. Mask-set NRE by node (the x10-in-3-generations escalation)")
    print("=" * 72)
    rows = [
        {"node": name, "mask_nre": f"${cost:,.0f}"}
        for name, cost in mask_nre_series()
    ]
    print(format_table(rows))

    print()
    print("=" * 72)
    print("2. Break-even volumes at the paper's $5 chip, 20% margin")
    print("=" * 72)
    rows = [BreakEven.analyze(name).as_row() for name in node_names()]
    print(format_table(rows))

    print()
    print("=" * 72)
    print("3. Cheapest implementation style by volume (130nm, 50M tx)")
    print("=" * 72)
    rows = []
    for volume in (1_000, 10_000, 50_000, 200_000, 1_000_000, 10_000_000):
        choice, cost = best_alternative("130nm", volume)
        rows.append(
            {
                "volume": f"{volume:,}",
                "winner": choice.value,
                "total_cost": f"${cost:,.0f}",
            }
        )
    print(format_table(rows))

    print()
    print("=" * 72)
    print("4. Platform amortization over a product family")
    print("=" * 72)
    rows = []
    for variants in (1, 2, 5, 10, 20):
        result = platform_amortization(60e6, variants)
        rows.append(
            {
                "variants": variants,
                "nre_per_product": f"${result['nre_per_product']:,.0f}",
                "saving": f"{result['saving_vs_independent']:.0%}",
            }
        )
    print(format_table(rows))

    print()
    print("=" * 72)
    print("5. Design productivity and the silicon the paper counts in RISCs")
    print("=" * 72)
    productivity = dict(productivity_series())
    rows = [
        {
            "node": name,
            "tx_per_man_year": f"{productivity[name]:,.0f}",
            "risc_cores_per_100mm2": round(
                risc_equivalents_at_node(name, 100.0)
            ),
        }
        for name in node_names()
    ]
    print(format_table(rows))
    print(
        "\nProductivity peaks at 130nm and declines below 90nm (deep-"
        "\nsubmicron drag) while the die holds ever more RISC-equivalents:"
        "\nthe widening gap the paper's platform thesis answers."
    )


if __name__ == "__main__":
    main()
