"""Unit tests for the platform layer (spec, FPPA builder, StepNP,
abstraction levels)."""

import pytest

from repro.noc.topology import TopologyKind
from repro.platform.abstraction import (
    ABSTRACTION_LEVELS,
    competence_overlap,
    hardware_design_levels,
    level,
    max_pairwise_overlap,
)
from repro.platform.fppa import build_platform
from repro.platform.spec import IoSpec, MemorySpec, PeSpec, PlatformSpec
from repro.platform.stepnp import STEPNP_LARGE, STEPNP_SMALL, stepnp_spec
from repro.processors.classes import ProcessorKind
from repro.sim.core import Timeout


class TestSpecs:
    def test_pe_spec_validation(self):
        with pytest.raises(ValueError):
            PeSpec(ProcessorKind.DSP, count=0)
        with pytest.raises(ValueError):
            PeSpec(ProcessorKind.DSP, count=1, threads=0)
        with pytest.raises(ValueError):
            PeSpec(ProcessorKind.DSP, count=1, clock_ghz=0.0)

    def test_memory_spec_validation(self):
        with pytest.raises(ValueError, match="technology"):
            MemorySpec(technology="dram9000", capacity_mb=1.0)
        with pytest.raises(ValueError):
            MemorySpec(technology="esram", capacity_mb=0.0)

    def test_io_spec_validation(self):
        with pytest.raises(ValueError, match="family"):
            IoSpec(family="warp_bus")

    def test_empty_platform_rejected(self):
        spec = PlatformSpec(name="empty")
        with pytest.raises(ValueError, match="no processors"):
            spec.validate()

    def test_terminal_count(self):
        spec = stepnp_spec(num_pes=8, threads=4)
        # 8 PEs + 2 memories + 1 hwip + 1 io + 1 efpga
        assert spec.num_terminals() == 13

    def test_transistor_rollup_positive(self):
        assert stepnp_spec().logic_transistors() > 1e6

    def test_summary_fields(self):
        summary = stepnp_spec(num_pes=16, threads=8).summary()
        assert summary["processors"] == 16
        assert summary["hardware_threads"] == 128


class TestStepnpConfigs:
    def test_small_is_half_dozen(self):
        """'Current generation platforms ... already include over a
        half-dozen processors.'"""
        assert STEPNP_SMALL.num_pes() == 6

    def test_large_is_16x8(self):
        assert STEPNP_LARGE.num_pes() == 16
        assert STEPNP_LARGE.total_threads() == 128

    def test_scales_to_hundreds_of_threads(self):
        """Section 6: 'MP-SoC platforms will include ten to hundreds of
        embedded processors.'"""
        spec = stepnp_spec(num_pes=128, threads=4)
        assert spec.num_pes() == 128
        assert spec.total_threads() == 512

    def test_topology_by_string(self):
        spec = stepnp_spec(topology="mesh")
        assert spec.topology is TopologyKind.MESH

    def test_pe_count_validation(self):
        with pytest.raises(ValueError):
            stepnp_spec(num_pes=0)


class TestBuildPlatform:
    def test_component_bindings_created(self):
        platform = build_platform(stepnp_spec(num_pes=8, threads=4))
        assert len(platform.pes) == 8
        assert len(platform.memories) == 2
        assert "viterbi_decoder" in platform.hw_ip_slaves
        assert len(platform.line_interfaces) == 1
        assert platform.efpga is not None

    def test_terminals_unique(self):
        platform = build_platform(stepnp_spec(num_pes=8))
        terminals = [b.terminal for b in platform.pes] + [
            b.terminal for b in platform.memories
        ]
        assert len(terminals) == len(set(terminals))

    def test_memory_terminal_lookup(self):
        platform = build_platform(stepnp_spec(num_pes=4))
        assert platform.memory_terminal("esram") >= 4
        with pytest.raises(ValueError):
            platform.memory_terminal("eflash")

    def test_pe_memory_transaction_runs(self):
        platform = build_platform(stepnp_spec(num_pes=4, threads=2))
        target = platform.memory_terminal("esram")
        binding = platform.pes[0]
        out = []

        def thread_body(ctx):
            yield from ctx.compute(5)
            value = yield from ctx.remote(binding.master.read(target, 0x10))
            out.append(value)

        binding.pe.spawn_thread(thread_body)
        platform.run(until=10_000)
        assert out == [None]  # unwritten address reads None, roundtrip worked

    def test_utilization_zero_when_idle(self):
        platform = build_platform(stepnp_spec(num_pes=4))
        platform.run(until=100)
        assert platform.average_pe_utilization() == 0.0

    def test_mesh_platform_builds(self):
        platform = build_platform(stepnp_spec(num_pes=6, topology="mesh"))
        assert platform.topology.kind is TopologyKind.MESH


class TestAbstractionLevels:
    def test_four_levels(self):
        assert sorted(ABSTRACTION_LEVELS) == [1, 2, 3, 4]

    def test_level_lookup_validation(self):
        with pytest.raises(KeyError):
            level(5)

    def test_no_hardware_design_at_top_two(self):
        """Section 3: 'No hardware design is done' at level 1; 'as a
        rule, no IP design is done' at level 2."""
        assert not level(1).designs_hardware
        assert not level(2).designs_hardware
        assert hardware_design_levels() == [3, 4]

    def test_mostly_non_overlapping(self):
        """The paper's 'mostly non-overlapping' claim: every pairwise
        competence overlap stays below 1/3."""
        assert max_pairwise_overlap() < 1 / 3

    def test_adjacent_levels_share_a_bridge(self):
        """'Mostly' — adjacent levels still share one bridging skill."""
        assert competence_overlap(1, 2) > 0.0

    def test_overlap_symmetric(self):
        assert competence_overlap(1, 3) == competence_overlap(3, 1)
