"""Tests for the bench runner, perf trajectory and regression gate."""

import json

import pytest

from repro.engine import perf
from repro.engine.cli import main as cli_main


def payload(version, scenarios):
    """Minimal repro-bench-v1 payload: {name: wall_time_s}."""
    return {
        "schema": perf.BENCH_SCHEMA,
        "code_version": version,
        "workers": 1,
        "scenarios": len(scenarios),
        "failed": 0,
        "total_wall_time_s": round(sum(scenarios.values()), 3),
        "benchmarks": [
            {
                "scenario": name,
                "params": {},
                "tags": [],
                "status": "ok",
                "headline_metric": {"name": "rows", "value": 1},
                "wall_time_s": wall,
                "cached": False,
            }
            for name, wall in scenarios.items()
        ],
    }


class TestCompare:
    def test_within_threshold_passes(self):
        base = payload("aaa", {"E1": 1.0, "E2": 2.0})
        cur = payload("bbb", {"E1": 1.1, "E2": 2.2})
        comparison = perf.compare_payloads(cur, base, threshold=0.25)
        assert not comparison.regressed
        assert comparison.compared == 2
        assert comparison.ratio == pytest.approx(1.1)

    def test_total_regression_fails(self):
        base = payload("aaa", {"E1": 1.0, "E2": 2.0})
        cur = payload("bbb", {"E1": 2.0, "E2": 3.0})
        comparison = perf.compare_payloads(cur, base, threshold=0.25)
        assert comparison.regressed
        assert "REGRESSION" in comparison.render()

    def test_only_shared_scenarios_compared(self):
        base = payload("aaa", {"E1": 1.0, "E9": 50.0})
        cur = payload("bbb", {"E1": 1.0, "E2": 99.0})
        comparison = perf.compare_payloads(cur, base)
        assert comparison.compared == 1
        assert not comparison.regressed

    def test_per_scenario_slowdowns_reported(self):
        base = payload("aaa", {"E1": 1.0, "E2": 2.0})
        cur = payload("bbb", {"E1": 2.0, "E2": 2.0})
        comparison = perf.compare_payloads(cur, base, threshold=0.25)
        assert any("E1" in line for line in comparison.regressions)

    def test_tiny_scenarios_not_flagged_individually(self):
        base = payload("aaa", {"E1": 0.01})
        cur = payload("bbb", {"E1": 0.05})
        comparison = perf.compare_payloads(cur, base, threshold=0.25)
        assert comparison.regressions == []

    def test_failed_and_cached_entries_excluded(self):
        base = payload("aaa", {"E1": 1.0, "E2": 1.0})
        cur = payload("bbb", {"E1": 1.0, "E2": 1.0})
        cur["benchmarks"][1]["status"] = "error"
        base["benchmarks"][0]["cached"] = True
        comparison = perf.compare_payloads(cur, base)
        assert comparison.compared == 0


class TestTrajectory:
    def test_append_creates_and_extends(self, tmp_path):
        path = tmp_path / "traj.json"
        entry = perf.trajectory_entry(payload("aaa", {"E1": 1.0}), ["smoke"])
        perf.append_trajectory(path, entry)
        perf.append_trajectory(
            path, perf.trajectory_entry(payload("bbb", {"E1": 0.5}), None)
        )
        data = json.loads(path.read_text())
        assert data["schema"] == perf.TRAJECTORY_SCHEMA
        assert [e["code_version"] for e in data["entries"]] == ["aaa", "bbb"]
        assert data["entries"][0]["tags"] == ["smoke"]
        assert data["entries"][1]["per_scenario_wall_s"] == {"E1": 0.5}

    @pytest.mark.parametrize(
        "corrupt",
        [
            "{not json",
            "[]",                                      # valid JSON, wrong shape
            '{"schema": "repro-bench-trajectory-v1"}',  # missing entries
            '{"schema": "repro-bench-trajectory-v1", "entries": 3}',
        ],
    )
    def test_corrupt_file_restarts_log(self, tmp_path, corrupt):
        path = tmp_path / "traj.json"
        path.write_text(corrupt)
        perf.append_trajectory(
            path, perf.trajectory_entry(payload("ccc", {"E1": 1.0}), None)
        )
        data = json.loads(path.read_text())
        assert len(data["entries"]) == 1


class TestBenchCli:
    def test_bench_writes_results_trajectory_and_gates(self, tmp_path):
        out = tmp_path / "results.json"
        traj = tmp_path / "traj.json"
        code = cli_main(
            [
                "bench", "--names", "E1", "--workers", "1",
                "--out", str(out), "--trajectory", str(traj),
            ]
        )
        assert code == 0
        results = json.loads(out.read_text())
        assert results["schema"] == perf.BENCH_SCHEMA
        assert results["scenarios"] == 1
        assert results["benchmarks"][0]["scenario"] == "E1"
        assert len(json.loads(traj.read_text())["entries"]) == 1

        # Second run gates against the first payload (same code: passes).
        code = cli_main(
            [
                "bench", "--names", "E1", "--workers", "1",
                "--out", str(out), "--trajectory", str(traj),
            ]
        )
        assert code == 0
        assert len(json.loads(traj.read_text())["entries"]) == 2

    def test_bench_regression_exit_code(self, tmp_path, monkeypatch):
        from repro.engine.results import Report, ScenarioResult

        def fake_execute(specs, **kwargs):
            return Report(
                results=[
                    ScenarioResult(
                        name=spec.name,
                        spec_hash=spec.content_hash,
                        elapsed_s=10.0,
                    )
                    for spec in specs
                ]
            )

        monkeypatch.setattr(perf, "execute", fake_execute)
        out = tmp_path / "results.json"
        out.write_text(json.dumps(payload("old", {"E1": 1.0})))
        code = cli_main(
            [
                "bench", "--names", "E1", "--workers", "1",
                "--out", str(out), "--no-trajectory",
            ]
        )
        assert code == perf.EXIT_REGRESSION

    def test_explicit_missing_baseline_is_an_error(self, tmp_path):
        code = cli_main(
            [
                "bench", "--names", "E1", "--workers", "1",
                "--out", str(tmp_path / "results.json"), "--no-trajectory",
                "--baseline", str(tmp_path / "nope.json"),
            ]
        )
        assert code == 2

    def test_explicit_corrupt_baseline_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = cli_main(
            [
                "bench", "--names", "E1", "--workers", "1",
                "--out", str(tmp_path / "results.json"), "--no-trajectory",
                "--baseline", str(bad),
            ]
        )
        assert code == 2

    def test_no_compare_skips_gate(self, tmp_path, monkeypatch):
        from repro.engine.results import Report, ScenarioResult

        monkeypatch.setattr(
            perf,
            "execute",
            lambda specs, **kwargs: Report(
                results=[
                    ScenarioResult(
                        name=spec.name,
                        spec_hash=spec.content_hash,
                        elapsed_s=10.0,
                    )
                    for spec in specs
                ]
            ),
        )
        out = tmp_path / "results.json"
        out.write_text(json.dumps(payload("old", {"E1": 1.0})))
        code = cli_main(
            [
                "bench", "--names", "E1", "--workers", "1",
                "--out", str(out), "--no-trajectory", "--no-compare",
            ]
        )
        assert code == 0


class TestCachedRunHandling:
    """Cache replays must be visibly flagged and never gate-comparable."""

    def test_cached_in_current_counted_as_excluded(self):
        base = payload("aaa", {"E1": 1.0, "E2": 2.0})
        cur = payload("bbb", {"E1": 1.0, "E2": 9.0})
        cur["benchmarks"][1]["cached"] = True  # a 9s "regression"… replayed
        comparison = perf.compare_payloads(cur, base)
        assert comparison.compared == 1
        assert comparison.excluded_cached == 1
        assert not comparison.regressed
        assert "excluded from the gate" in comparison.render()

    def test_cached_in_baseline_counted_as_excluded(self):
        base = payload("aaa", {"E1": 1.0, "E2": 0.01})
        base["benchmarks"][1]["cached"] = True  # fake 0.01s baseline win
        cur = payload("bbb", {"E1": 1.0, "E2": 2.0})
        comparison = perf.compare_payloads(cur, base)
        assert comparison.compared == 1
        assert comparison.excluded_cached == 1
        assert not comparison.regressed

    def test_warm_cache_bench_marks_and_warns(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        cache = tmp_path / "cache"
        args = [
            "bench", "--names", "E1", "--workers", "1",
            "--out", str(out), "--no-trajectory",
            "--cache", str(cache),
        ]
        assert cli_main(args) == 0
        first = json.loads(out.read_text())
        assert first["benchmarks"][0]["cached"] is False
        capsys.readouterr()
        # Warm cache: the replayed scenario is flagged, a warning is
        # printed, and the gate has nothing fresh to compare.
        assert cli_main(args) == 0
        second = json.loads(out.read_text())
        assert second["benchmarks"][0]["cached"] is True
        stdout = capsys.readouterr().out
        assert "replayed from the result cache" in stdout
        assert "0 comparable scenarios" in stdout

    def test_cached_runs_never_enter_trajectory(self, tmp_path):
        out = tmp_path / "results.json"
        traj = tmp_path / "traj.json"
        cache = tmp_path / "cache"
        args = [
            "bench", "--names", "E1", "--workers", "1",
            "--out", str(out), "--trajectory", str(traj),
            "--cache", str(cache), "--no-compare",
        ]
        assert cli_main(args) == 0
        assert cli_main(args) == 0
        entries = json.loads(traj.read_text())["entries"]
        assert len(entries) == 2
        assert entries[0]["per_scenario_wall_s"].get("E1") is not None
        assert entries[1]["per_scenario_wall_s"] == {}


class TestProfileMode:
    def test_profile_writes_top_functions(self, tmp_path):
        out = tmp_path / "profile.json"
        code = cli_main(
            ["bench", "--profile", "--names", "E1", "A2",
             "--profile-out", str(out), "--quiet"]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == perf.PROFILE_SCHEMA
        assert data["top"] == 20
        assert [s["scenario"] for s in data["scenarios"]] == ["A2", "E1"]
        for scenario in data["scenarios"]:
            assert scenario["status"] == "ok"
            assert 0 < len(scenario["top_functions"]) <= 20
            top = scenario["top_functions"][0]
            assert {"function", "file", "line", "ncalls",
                    "tottime_s", "cumtime_s"} <= set(top)
            # Sorted by cumulative time, descending.
            cums = [f["cumtime_s"] for f in scenario["top_functions"]]
            assert cums == sorted(cums, reverse=True)

    def test_profile_unknown_selection_errors(self, capsys):
        assert cli_main(["bench", "--profile", "--tags", "nosuch"]) == 2
