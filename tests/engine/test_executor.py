"""Executor: serial/parallel equivalence, determinism, timeouts."""

import pytest

from repro.engine.executor import (
    ProcessBackend,
    SerialBackend,
    execute,
    make_backend,
    run_spec,
)
from repro.engine.registry import get, scenario, unregister
from repro.engine.spec import ScenarioSpec

#: cheap scenarios that still exercise RNG-heavy simulation paths.
FAST = ("E1", "E5", "E8", "A7", "A9")


def _specs(names=FAST):
    return [get(name).spec for name in names]


class TestBackendSelection:
    def test_auto_picks_by_worker_count(self):
        assert isinstance(make_backend("auto", workers=1), SerialBackend)
        assert isinstance(make_backend("auto", workers=4), ProcessBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_backend("quantum")


class TestDeterminism:
    def test_same_seed_identical_result(self):
        spec = get("E15").spec  # annealing: heavily RNG-dependent
        a = run_spec(spec)
        b = run_spec(spec)
        assert a.comparable_payload() == b.comparable_payload()

    def test_different_seed_different_rng_stream(self):
        spec = get("E15").spec
        assert spec.derived_seed() != spec.with_seed(1).derived_seed()

    def test_serial_vs_parallel_equivalence(self):
        specs = _specs()
        serial = execute(specs, backend="serial")
        parallel = execute(specs, workers=2, backend="process")
        assert len(serial) == len(parallel) == len(specs)
        for s, p in zip(serial, parallel):
            assert s.comparable_payload() == p.comparable_payload()
            assert s.backend == "serial" and p.backend == "process"

    def test_rerun_reproduces_bit_identical_rows(self):
        specs = _specs(("A7", "E5"))
        first = execute(specs, workers=2)
        second = execute(specs, workers=2)
        for a, b in zip(first, second):
            assert a.rows == b.rows
            assert a.verdict == b.verdict


class TestExecution:
    def test_report_aggregates_all_scenarios(self):
        report = execute(_specs(("E1", "E2", "E3")))
        assert [r.name for r in report] == ["E1", "E2", "E3"]
        assert all(r.ok for r in report)
        assert all(r.reproduced for r in report)
        rendered = report.render()
        assert "3 scenarios: 3 executed" in rendered

    def test_params_flow_into_scenario(self):
        spec = get("E18").spec.with_params(table_sizes=(100,))
        result = run_spec(spec)
        assert result.ok
        assert len(result.rows) == 1
        assert result.rows[0]["prefixes"] == 100

    def test_non_dict_return_is_an_error_not_a_crash(self):
        @scenario("_listret")
        def _listret():
            return [{"a": 1}]

        try:
            result = run_spec(ScenarioSpec("_listret"))
            assert result.status == "error"
            assert "expected a dict" in result.error
        finally:
            unregister("_listret")

    def test_ablation_verdict_survives_params_override(self):
        result = run_spec(get("A7").spec.with_params(costs=(0.0, 50.0)))
        assert result.ok
        assert result.verdict["hw_1cycle_schedulable"]
        assert result.verdict["sw_kernel_infeasible"]

    def test_timeout_forces_process_backend_on_auto(self):
        assert isinstance(
            make_backend("auto", workers=1, timeout_s=5.0), ProcessBackend
        )

    def test_parallel_timeout_marks_job(self):
        @scenario("_slow")
        def _slow():
            import time

            time.sleep(30)
            return {"rows": []}

        try:
            report = execute(
                [ScenarioSpec("_slow")],
                workers=2,
                backend="process",
                timeout_s=1.0,
            )
            assert report.results[0].status == "timeout"
            assert report.failed
        finally:
            unregister("_slow")

    def test_jobs_queued_behind_a_hung_job_still_run(self):
        @scenario("_hang")
        def _hang():
            import time

            time.sleep(30)
            return {"rows": []}

        try:
            specs = [ScenarioSpec("_hang"), get("E1").spec]
            report = execute(
                specs, workers=1, backend="process", timeout_s=1.0
            )
            by_name = {r.name: r for r in report}
            assert by_name["_hang"].status == "timeout"
            assert by_name["E1"].ok  # resubmitted to a fresh pool
        finally:
            unregister("_hang")

    def test_error_carries_the_full_worker_traceback(self):
        # a 13-deep chain of *distinct* functions: under the old
        # format_exc(limit=8) the innermost frames — the ones that
        # identify the bug — were cut off
        source = "def f0():\n    raise RuntimeError('innermost marker')\n"
        for i in range(1, 13):
            source += f"def f{i}():\n    return f{i - 1}()\n"

        @scenario("_deepfail")
        def _deepfail():
            namespace: dict = {}
            exec(compile(source, "<deepfail>", "exec"), namespace)
            return namespace["f12"]()

        try:
            for result in (
                run_spec(ScenarioSpec("_deepfail")),
                execute(
                    [ScenarioSpec("_deepfail")], workers=1,
                    backend="process",
                ).results[0],
            ):
                assert result.status == "error"
                assert "innermost marker" in result.error
                # every intermediate frame survives, verbatim
                for i in range(13):
                    assert f"in f{i}" in result.error
        finally:
            unregister("_deepfail")

    def test_expected_false_excuses_negative_controls(self):
        from repro.engine.results import ScenarioResult

        result = ScenarioResult(
            name="x",
            spec_hash="h",
            verdict={"wins": True, "control": False},
            expected_false=("control",),
        )
        assert result.reproduced is True
        assert get("E14").expected_false == ("line_rate_without_mt",)

    def test_raising_progress_aborts_the_pool_promptly(self):
        """A progress-callback raise (the service's cancel signal) must
        terminate the pool, not drain the queued jobs first."""
        import time

        @scenario("_abort_slow")
        def _abort_slow(i=0):
            time.sleep(30)
            return {"rows": []}

        class _Abort(Exception):
            pass

        def progress(_result):
            raise _Abort

        try:
            specs = [get("E1").spec] + [
                ScenarioSpec("_abort_slow", {"i": i}) for i in range(3)
            ]
            start = time.monotonic()
            with pytest.raises(_Abort):
                execute(specs, workers=1, backend="process",
                        progress=progress)
            assert time.monotonic() - start < 10  # not 3 x 30s
        finally:
            unregister("_abort_slow")

    def test_progress_callback_sees_every_result(self):
        seen = []
        execute(_specs(("E1", "E2")), progress=seen.append)
        assert [r.name for r in seen] == ["E1", "E2"]

    def test_report_roundtrips_through_json(self, tmp_path):
        report = execute(_specs(("E1",)))
        path = report.save(tmp_path / "report.json")
        from repro.engine.results import Report

        loaded = Report.load(path)
        assert len(loaded) == 1
        assert (
            loaded.results[0].comparable_payload()
            == report.results[0].comparable_payload()
        )


class TestCli:
    def test_cli_list_and_run(self, tmp_path, capsys):
        from repro.engine.cli import main

        assert main(["list", "--tags", "ablation"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out and "A9" in out

        rc = main(
            [
                "run",
                "--names", "E1", "A7",
                "--cache", str(tmp_path / "cache"),
                "--out", str(tmp_path / "report.json"),
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 scenarios: 2 executed, 0 cached, 0 failed" in out
        assert (tmp_path / "report.json").exists()

        # second run: everything replays from cache
        rc = main(
            [
                "run",
                "--names", "E1", "A7",
                "--cache", str(tmp_path / "cache"),
                "--quiet",
            ]
        )
        assert rc == 0
        assert "0 executed, 2 cached" in capsys.readouterr().out

    def test_cli_report(self, tmp_path, capsys):
        from repro.engine.cli import main

        path = str(tmp_path / "r.json")
        main(["run", "--names", "E1", "--no-cache", "--quiet",
              "--out", path])
        capsys.readouterr()
        assert main(["report", path, "--full"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "mask_nre_usd" in out

    def test_cli_unknown_scenario_errors(self, capsys):
        from repro.engine.cli import main

        assert main(["run", "--names", "E99", "--no-cache"]) == 2

    def test_cli_sweep_and_shard(self, capsys):
        from repro.engine.cli import main

        @scenario("_cli_sweep", params={"n": 1})
        def _cli_sweep(n=1):
            return {"rows": [{"n": n}], "verdict": {"ok": True}}

        try:
            rc = main(
                ["run", "--names", "_cli_sweep", "--no-cache", "--quiet",
                 "--sweep", "n=1,2,3,4", "--shard", "1/2"]
            )
            assert rc == 0
            out = capsys.readouterr().out
            assert "2 scenarios: 2 executed" in out  # n=2 and n=4
        finally:
            unregister("_cli_sweep")

    def test_cli_bad_sweep_and_shard_are_usage_errors(self, capsys):
        from repro.engine.cli import main

        assert main(["run", "--names", "E1", "--no-cache",
                     "--sweep", "broken"]) == 2
        assert main(["run", "--names", "E1", "--no-cache",
                     "--shard", "5/2"]) == 2
