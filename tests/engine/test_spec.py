"""Spec hashing: stability, canonicalization, and seed derivation."""

import pytest

from repro.engine.spec import ScenarioSpec


class TestContentHash:
    def test_hash_is_stable_across_instances(self):
        a = ScenarioSpec("x", {"alpha": 1, "beta": [1, 2]}, seed=3)
        b = ScenarioSpec("x", {"alpha": 1, "beta": [1, 2]}, seed=3)
        assert a.content_hash == b.content_hash
        assert len(a.content_hash) == 64

    def test_param_order_does_not_matter(self):
        a = ScenarioSpec("x", {"alpha": 1, "beta": 2})
        b = ScenarioSpec("x", {"beta": 2, "alpha": 1})
        assert a.content_hash == b.content_hash

    def test_lists_and_tuples_hash_identically(self):
        a = ScenarioSpec("x", {"loads": [0.1, 0.2]})
        b = ScenarioSpec("x", {"loads": (0.1, 0.2)})
        assert a.content_hash == b.content_hash

    def test_nested_dicts_are_canonicalized(self):
        a = ScenarioSpec("x", {"cfg": {"b": 2, "a": 1}})
        b = ScenarioSpec("x", {"cfg": {"a": 1, "b": 2}})
        assert a.content_hash == b.content_hash

    def test_name_params_seed_all_change_hash(self):
        base = ScenarioSpec("x", {"alpha": 1}, seed=0)
        assert ScenarioSpec("y", {"alpha": 1}).content_hash != base.content_hash
        assert base.with_params(alpha=2).content_hash != base.content_hash
        assert base.with_seed(1).content_hash != base.content_hash

    def test_tags_do_not_change_hash(self):
        a = ScenarioSpec("x", {"alpha": 1}, tags={"one"})
        b = ScenarioSpec("x", {"alpha": 1}, tags={"two", "three"})
        assert a.content_hash == b.content_hash

    def test_known_hash_pinned(self):
        # Canary: if canonicalization ever changes, caches silently
        # re-key — fail loudly instead.
        spec = ScenarioSpec("E0", {"alpha": 1, "loads": (0.5, 1.0)}, seed=7)
        assert spec.canonical_json() == (
            '{"name":"E0","params":{"alpha":1,"loads":[0.5,1.0]},"seed":7}'
        )

    def test_pair_list_does_not_collide_with_dict(self):
        pairs = ScenarioSpec("x", {"v": [("a", 1), ("b", 2)]})
        mapping = ScenarioSpec("x", {"v": {"a": 1, "b": 2}})
        assert pairs.params_dict()["v"] == (("a", 1), ("b", 2))
        assert mapping.params_dict()["v"] == {"a": 1, "b": 2}
        assert pairs.content_hash != mapping.content_hash

    def test_non_jsonable_params_rejected(self):
        with pytest.raises(TypeError):
            ScenarioSpec("x", {"fn": object()})


class TestSpecBehavior:
    def test_spec_is_hashable_and_frozen(self):
        spec = ScenarioSpec("x", {"alpha": 1})
        assert spec in {spec}
        with pytest.raises(AttributeError):
            spec.name = "y"

    def test_params_roundtrip(self):
        params = {"alpha": 1, "nested": {"b": [1, 2]}, "s": "str"}
        spec = ScenarioSpec("x", params)
        out = spec.params_dict()
        assert out["alpha"] == 1
        assert out["nested"] == {"b": (1, 2)}
        assert out["s"] == "str"

    def test_derived_seed_deterministic_and_seed_sensitive(self):
        a = ScenarioSpec("x", {"alpha": 1}, seed=0)
        assert a.derived_seed() == ScenarioSpec("x", {"alpha": 1}).derived_seed()
        assert a.derived_seed() != a.with_seed(99).derived_seed()

    def test_dict_roundtrip(self):
        spec = ScenarioSpec("x", {"alpha": 1}, seed=2, tags={"t1", "t2"})
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_hash == spec.content_hash

    def test_matches_tags(self):
        spec = ScenarioSpec("x", tags={"noc", "smoke"})
        assert spec.matches(None)
        assert spec.matches(["noc", "other"])
        assert not spec.matches(["economics"])
