"""Registry: discovery, tag selection, and the unified namespace."""

import pytest

from repro.engine import registry
from repro.engine.registry import scenario


@pytest.fixture
def temp_scenario():
    @scenario("_tmp_scn", tags=("_tmp_tag",), params={"n": 2})
    def _tmp(n=2):
        return {"rows": [{"n": n}], "verdict": {"ok": True}}

    yield registry.get("_tmp_scn")
    registry.unregister("_tmp_scn")


class TestAutoDiscovery:
    def test_every_scenario_bearing_module_is_discovered(self):
        """A forgotten registry entry can no longer drop scenarios.

        Scans src/repro for the decorator marker independently of the
        registry's own scan: any module applying @scenario must be in
        the discovered set, and importing the discovered set must
        register at least one scenario per module.
        """
        import re
        from pathlib import Path

        import repro

        discovered = set(registry.discover_scenario_modules())
        package_root = Path(repro.__file__).parent
        marker = re.compile(r"^\s*@(?:registry\.)?scenario\(", re.M)
        for path in package_root.rglob("*.py"):
            if not marker.search(path.read_text()):
                continue
            parts = ("repro",) + path.relative_to(
                package_root
            ).with_suffix("").parts
            if parts[-1] == "__init__":
                parts = parts[:-1]
            assert ".".join(parts) in discovered

        modules_with_scenarios = {
            s.module for s in registry.all_scenarios()
        }
        for module in discovered:
            assert module in modules_with_scenarios, (
                f"{module} applies @scenario but registered nothing"
            )

    def test_discovery_is_memoized(self):
        assert registry.discover_scenario_modules() is (
            registry.discover_scenario_modules()
        )


class TestDiscovery:
    def test_all_workloads_registered(self):
        names = {s.name for s in registry.all_scenarios()}
        assert {f"E{i}" for i in range(1, 19)} <= names
        assert {f"A{i}" for i in range(1, 10)} <= names
        assert "DSE" in names

    def test_natural_ordering(self):
        names = [s.name for s in registry.select(tags=["experiments"])]
        assert names == [f"E{i}" for i in range(1, 19)]

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            registry.get("E99")


class TestSelection:
    def test_tag_selection_ablations(self):
        names = [s.name for s in registry.select(tags=["ablation"])]
        assert names == [f"A{i}" for i in range(1, 10)]

    def test_tag_selection_any_match(self):
        noc = {s.name for s in registry.select(tags=["noc"])}
        assert "A1" in noc and "E10" in noc
        union = {s.name for s in registry.select(tags=["noc", "rtos"])}
        assert noc < union and "A7" in union

    def test_name_selection_and_union_with_tags(self):
        picked = {s.name for s in registry.select(tags=["rtos"], names=["E1"])}
        assert picked == {"A7", "E1"}

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError, match="E99"):
            registry.select(names=["E99"])

    def test_smoke_tag_is_fast_subset(self):
        smoke = registry.select(tags=["smoke"])
        assert 10 <= len(smoke) < len(registry.all_scenarios())

    def test_no_filter_returns_everything(self):
        assert registry.select() == registry.all_scenarios()


class TestRegistration:
    def test_decorator_registers_and_returns_fn(self, temp_scenario):
        assert temp_scenario.spec.name == "_tmp_scn"
        assert temp_scenario.fn(n=3) == {
            "rows": [{"n": 3}],
            "verdict": {"ok": True},
        }

    def test_conflicting_reregistration_raises(self, temp_scenario):
        with pytest.raises(ValueError, match="already registered"):
            @scenario("_tmp_scn")
            def _other():
                return {}

    def test_back_compat_views_derive_from_registry(self):
        from repro.analysis.ablations import ALL_ABLATIONS
        from repro.analysis.experiments import ALL_EXPERIMENTS

        assert len(ALL_EXPERIMENTS) == 18
        assert len(ALL_ABLATIONS) == 9
        for name, fn in ALL_EXPERIMENTS.items():
            assert registry.get(name).fn is fn
