"""Result cache: hit/miss behavior and code-version keying."""

from repro.engine.cache import ResultCache, compute_code_version
from repro.engine.executor import execute, run_spec
from repro.engine.registry import get
from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec


def _result_for(spec, **overrides):
    fields = dict(
        name=spec.name,
        spec_hash=spec.content_hash,
        params=spec.params_dict(),
        verdict={"won": True, "metric": 4.2},
        rows=[{"a": 1}],
        elapsed_s=0.5,
    )
    fields.update(overrides)
    return ScenarioResult(**fields)


class TestCacheStore:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        spec = ScenarioSpec("x", {"alpha": 1})
        assert cache.get(spec) is None
        cache.put(_result_for(spec))
        hit = cache.get(spec)
        assert hit is not None
        assert hit.cached and hit.backend == "cache"
        assert hit.verdict == {"won": True, "metric": 4.2}
        assert hit.rows == [{"a": 1}]

    def test_different_params_miss(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        spec = ScenarioSpec("x", {"alpha": 1})
        cache.put(_result_for(spec))
        assert cache.get(spec.with_params(alpha=2)) is None
        assert cache.get(spec.with_seed(9)) is None

    def test_code_version_invalidates(self, tmp_path):
        spec = ScenarioSpec("x", {"alpha": 1})
        old = ResultCache(tmp_path, code_version="v1")
        old.put(_result_for(spec))
        new = ResultCache(tmp_path, code_version="v2")
        assert old.get(spec) is not None
        assert new.get(spec) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        spec = ScenarioSpec("x")
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(spec) is None

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        for alpha in (1, 2, 3):
            spec = ScenarioSpec("x", {"alpha": alpha})
            cache.put(_result_for(spec))
        assert len(cache.entries()) == 3
        assert cache.clear() == 3
        assert cache.entries() == []


class TestCodeVersion:
    def test_tracks_source_contents(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        v1 = compute_code_version(pkg)
        (pkg / "a.py").write_text("x = 2\n")
        v2 = compute_code_version(pkg)
        assert v1 != v2
        (pkg / "a.py").write_text("x = 1\n")
        assert compute_code_version(pkg) == v1

    def test_repro_package_version_is_memoized(self):
        assert compute_code_version() == compute_code_version()


class TestExecutorCacheIntegration:
    def test_second_run_executes_zero_and_matches(self, tmp_path):
        specs = [get("E1").spec, get("E4").spec]
        cache = ResultCache(tmp_path)
        first = execute(specs, cache=cache)
        assert len(first.executed) == 2 and not first.from_cache
        second = execute(specs, cache=cache)
        assert not second.executed
        assert len(second.from_cache) == 2
        for a, b in zip(first, second):
            assert a.comparable_payload() == b.comparable_payload()

    def test_failed_results_are_not_cached(self, tmp_path):
        from repro.engine.registry import scenario, unregister

        @scenario("_boom")
        def _boom():
            raise RuntimeError("no")

        try:
            spec = ScenarioSpec("_boom")
            cache = ResultCache(tmp_path)
            report = execute([spec], cache=cache)
            assert report.results[0].status == "error"
            assert "RuntimeError" in report.results[0].error
            assert cache.get(spec) is None
        finally:
            unregister("_boom")

    def test_error_result_survives_run_spec(self):
        from repro.engine.registry import scenario, unregister

        @scenario("_boom2")
        def _boom2():
            raise ValueError("bad input")

        try:
            result = run_spec(ScenarioSpec("_boom2"))
            assert not result.ok
            assert result.reproduced is None
            assert "bad input" in result.error
        finally:
            unregister("_boom2")


class TestPrune:
    def _fill(self, tmp_path, count, version="vvvvvvvvvvvv"):
        import os
        import time

        cache = ResultCache(tmp_path / "cache", code_version=version)
        specs = [ScenarioSpec("_p", {"i": i}) for i in range(count)]
        base = time.time() - count
        for offset, spec in enumerate(specs):
            path = cache.put(_result_for(spec))
            # deterministic, strictly increasing recency
            os.utime(path, (base + offset, base + offset))
        return cache, specs

    def test_prune_keeps_the_newest_entries(self, tmp_path):
        cache, specs = self._fill(tmp_path, 6)
        removed = cache.prune(2)
        assert removed == 4
        # the two most recently written entries survive
        assert cache.get(specs[-1]) is not None
        assert cache.get(specs[-2]) is not None
        assert all(cache.get(s) is None for s in specs[:-2])

    def test_prune_spans_code_versions_and_drops_empty_dirs(self, tmp_path):
        old = ResultCache(tmp_path / "cache", code_version="oldversion01")
        spec = ScenarioSpec("_old", {"i": 99})
        path = old.put(_result_for(spec))
        import os
        os.utime(path, (1.0, 1.0))  # ancient
        cache, specs = self._fill(tmp_path, 3)
        assert cache.prune(3) == 1  # the stale-version entry goes first
        assert not (tmp_path / "cache" / "oldversion01").exists()
        assert all(cache.get(s) is not None for s in specs)

    def test_prune_within_budget_is_a_noop(self, tmp_path):
        cache, specs = self._fill(tmp_path, 3)
        assert cache.prune(10) == 0
        assert cache.prune(3) == 0
        assert all(cache.get(s) is not None for s in specs)

    def test_negative_cap_is_a_noop(self, tmp_path):
        cache, specs = self._fill(tmp_path, 2)
        assert cache.prune(-1) == 0
        assert all(cache.get(s) is not None for s in specs)

    def test_stats_split_current_and_stale(self, tmp_path):
        cache, _specs = self._fill(tmp_path, 3)
        other = ResultCache(tmp_path / "cache", code_version="oldversion01")
        other.put(_result_for(ScenarioSpec("_old")))
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["current_version"] == 3
        assert stats["stale"] == 1
        assert stats["bytes"] > 0


class TestLocalBackendPrune:
    def test_local_backend_honours_max_cache_entries(self, tmp_path):
        from repro.service.backend import LocalBackend

        backend = LocalBackend(
            backend="serial", cache=tmp_path / "cache", max_cache_entries=2
        )
        specs = [get(n).spec for n in ("E1", "E5", "E7")]
        backend.run(specs)
        assert len(backend.cache.entries()) <= 2
