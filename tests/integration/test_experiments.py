"""Integration tests: every experiment regenerates the paper's shape.

These are the top-level acceptance tests of the reproduction — each one
runs the full experiment function from :mod:`repro.analysis.experiments`
and asserts the paper-claimed shape holds (who wins, crossovers, bands).
"""

import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    e01_mask_nre,
    e02_mask_breakeven,
    e03_design_breakeven,
    e04_risc_equivalents,
    e05_alternatives,
    e06_productivity,
    e07_hw_sw_growth,
    e08_figure1,
    e09_wire_delay,
    e11_multithreading,
    e12_efpga_share,
    e13_fppa_composition,
    e15_mapping,
    e16_low_power,
    e17_memory_tradeoff,
    e18_npse_vs_cam,
)
from repro.analysis.report import format_table, render_experiment


class TestRegistry:
    def test_all_18_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 18
        assert sorted(ALL_EXPERIMENTS) == sorted(
            f"E{i}" for i in range(1, 19)
        )

    def test_result_contract(self):
        result = e01_mask_nre()
        assert {"claim", "rows", "verdict"} <= set(result)
        assert result["rows"]


class TestEconomicExperiments:
    def test_e1_mask_nre(self):
        verdict = e01_mask_nre()["verdict"]
        assert verdict["exceeds_1M_at_90nm"]
        assert 8.0 < verdict["growth_over_3_generations"] < 13.0

    def test_e2_mask_breakeven(self):
        assert e02_mask_breakeven()["verdict"]["exceeds_1M"]

    def test_e3_design_breakeven(self):
        verdict = e03_design_breakeven()["verdict"]
        assert verdict["nre_in_10M_100M_band"]
        assert verdict["volume_in_10M_100M_band"]

    def test_e4_risc_equivalents(self):
        assert e04_risc_equivalents()["verdict"]["exceeds_1000"]

    def test_e5_alternatives_three_regions(self):
        verdict = e05_alternatives()["verdict"]
        assert verdict["fpga_wins_low"]
        assert verdict["asic_wins_high"]
        assert verdict["distinct_regions"] >= 3

    def test_e6_productivity_decline(self):
        verdict = e06_productivity()["verdict"]
        assert verdict["peak_node"] == "130nm"
        assert verdict["declines_after_peak"]

    def test_e7_sw_overtakes_hw(self):
        assert e07_hw_sw_growth()["verdict"]["before_paper"]


class TestArchitectureExperiments:
    def test_e8_figure1_tradeoff(self):
        verdict = e08_figure1()["verdict"]
        assert verdict["all_on_front"]

    def test_e9_wire_delay_band(self):
        verdict = e09_wire_delay()["verdict"]
        assert verdict["in_6_10_band"]
        assert verdict["noc_many_times_larger"]

    def test_e11_multithreading(self):
        verdict = e11_multithreading(
            thread_counts=(1, 4, 8), latencies=(100,)
        )["verdict"]
        assert verdict["recovers_90pct"]
        assert verdict["util_1_thread_at_100cyc"] < 0.25

    def test_e12_efpga_share(self):
        verdict = e12_efpga_share()["verdict"]
        assert verdict["acceptable_below_5pct"]
        assert verdict["prohibitive_at_30pct"]

    def test_e13_fppa(self):
        verdict = e13_fppa_composition()["verdict"]
        assert verdict["has_all_component_classes"]
        assert verdict["scales_to_64_pes"]

    def test_e15_mapping(self):
        verdict = e15_mapping(tasks=40, num_pes=8)["verdict"]
        assert verdict["auto_beats_naive"]
        assert verdict["speedup_vs_random"] > 1.2

    def test_e16_low_power(self):
        verdict = e16_low_power()["verdict"]
        assert verdict["multi_vt_saves_over_half_leakage"]
        assert verdict["back_bias_cuts_leakage"]
        assert verdict["dvs_quadratic_energy"]

    def test_e17_memory(self):
        verdict = e17_memory_tradeoff()["verdict"]
        assert verdict["esram_wins_small"]
        assert verdict["external_wins_large"]
        assert verdict["regime_changes"] >= 2

    def test_e18_npse(self):
        verdict = e18_npse_vs_cam(table_sizes=(1_000, 20_000))["verdict"]
        assert verdict["trie_wins_energy_at_scale"]


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy", "c": 3.5}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0] and "c" in lines[0]

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_render_experiment(self):
        text = render_experiment("E1", e01_mask_nre())
        assert "=== E1 ===" in text
        assert "claim:" in text
        assert "verdict:" in text
