"""Keep the examples runnable: execute each example's main().

The NoC topology explorer is exercised with a reduced sweep (its full
saturation search takes tens of seconds); everything else runs as
shipped.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "ipv4_stepnp",
        "platform_economics",
        "multimedia_mapping",
        "wireless_lowpower",
        "codesign_tools",
    ],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100, f"example {name} produced no meaningful output"


def test_noc_explorer_reduced():
    from repro.noc.traffic import TrafficPattern

    module = load_example("noc_topology_explorer")
    rows = module.explore(
        terminals=8,
        saturation_loads=[0.1, 0.4],
        patterns=[TrafficPattern.UNIFORM],
    )
    assert rows
    assert any(row["topology"].startswith("bus") for row in rows)
