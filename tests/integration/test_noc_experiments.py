"""Slower integration tests: NoC topology characterization (E10) and the
StepNP IPv4 headline (E14) through the experiment interface."""

import pytest

from repro.analysis.experiments import e10_noc_topologies, e14_ipv4_stepnp


@pytest.fixture(scope="module")
def e10():
    return e10_noc_topologies(terminals=16, loads=(0.05, 0.3), duration=3000.0)


@pytest.fixture(scope="module")
def e14():
    # The full 1200-packet window: shorter runs understate utilization
    # because the fixed pipeline ramp-up is a larger share of the window.
    return e14_ipv4_stepnp(thread_counts=(1, 8), packets=1200)


class TestE10Topologies:
    def test_bus_saturates_first(self, e10):
        assert e10["verdict"]["bus_saturates_first"]

    def test_crossbar_wins_latency_loses_cost(self, e10):
        assert e10["verdict"]["crossbar_lowest_latency"]
        assert e10["verdict"]["crossbar_highest_cost"]

    def test_all_topologies_represented(self, e10):
        names = {row["topology"].split("-")[0] for row in e10["rows"]}
        assert {"bus", "ring", "tree", "mesh", "torus", "fat", "crossbar"} <= {
            n.split("-")[0] for n in names
        } | {"fat"}

    def test_scalable_topologies_unsaturated_at_low_load(self, e10):
        for row in e10["rows"]:
            if row["offered"] == 0.05 and not row["topology"].startswith("bus"):
                assert not row["saturated"], row


class TestE14Headline:
    def test_paper_shape(self, e14):
        verdict = e14["verdict"]
        assert verdict["near_full_utilization"]
        assert verdict["line_rate_with_mt"]
        assert not verdict["line_rate_without_mt"]

    def test_rows_cover_sweep(self, e14):
        assert [row["threads"] for row in e14["rows"]] == [1, 8]

    def test_throughput_monotone_in_threads(self, e14):
        rates = [row["sustained_gbps"] for row in e14["rows"]]
        assert rates == sorted(rates)
