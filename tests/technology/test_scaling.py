"""Unit tests for Moore's-law scaling helpers."""

import pytest

from repro.technology.scaling import (
    MOORE_TRANSISTOR_GROWTH,
    SOFTWARE_COMPLEXITY_GROWTH,
    density_at,
    density_scaling_per_generation,
    frequency_at,
    project_transistors,
    transistor_budget,
    years_to_double,
)


class TestGrowthConstants:
    def test_paper_growth_rates(self):
        """Section 6 quotes 56%/yr HW and 140%/yr SW."""
        assert MOORE_TRANSISTOR_GROWTH == 0.56
        assert SOFTWARE_COMPLEXITY_GROWTH == 1.40


class TestProjection:
    def test_zero_years_identity(self):
        assert project_transistors(1e6, 2000, 2000) == 1e6

    def test_forward_projection_compounds(self):
        value = project_transistors(1e6, 2000, 2002)
        assert value == pytest.approx(1e6 * 1.56 ** 2)

    def test_backward_projection(self):
        value = project_transistors(1e6, 2000, 1999)
        assert value == pytest.approx(1e6 / 1.56)

    def test_moores_law_doubles_in_about_18_months(self):
        assert years_to_double(MOORE_TRANSISTOR_GROWTH) == pytest.approx(
            1.56, abs=0.05
        )

    def test_years_to_double_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            years_to_double(0.0)


class TestDensity:
    def test_density_at_90nm(self):
        assert density_at("90nm") == pytest.approx(1.45e6)

    def test_density_scaling_near_2x(self):
        assert 1.5 < density_scaling_per_generation() < 2.3

    def test_transistor_budget_100mm2_130nm(self):
        """A 140 mm^2 0.13um die exceeds the paper's 100M transistors."""
        assert transistor_budget("130nm", 140.0) > 100e6

    def test_frequency_at(self):
        assert frequency_at("130nm") == 1.0
