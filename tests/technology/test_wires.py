"""Unit tests for the wire-delay models (experiment E9 foundations)."""

import pytest

from repro.technology.node import node, node_names
from repro.technology.wires import (
    WireModel,
    corner_to_corner_cycles,
    critical_length_mm,
    cross_chip_cycles,
    repeated_wire_delay_ps_per_mm,
    repeater_count,
    unrepeated_wire_delay_ps,
    wire_bandwidth_gbps,
)


class TestRepeatedWireDelay:
    def test_reference_value_at_180nm(self):
        assert repeated_wire_delay_ps_per_mm(node("180nm")) == pytest.approx(55.0)

    def test_delay_per_mm_worsens_with_scaling(self):
        values = [
            repeated_wire_delay_ps_per_mm(node(n)) for n in node_names()
        ]
        assert values == sorted(values)

    def test_paper_claim_6_to_10_cycles_at_50nm(self):
        """Section 6.1: 6-10 clock cycles across a 50nm die."""
        cycles = cross_chip_cycles(node("50nm"), die_edge_mm=15.0)
        assert 6.0 <= cycles <= 10.0

    def test_sub_cycle_at_180nm(self):
        """Wires were not the problem at 180nm."""
        assert cross_chip_cycles(node("180nm"), die_edge_mm=15.0) < 1.0

    def test_cycles_increase_monotonically_with_scaling(self):
        values = [
            cross_chip_cycles(node(n), die_edge_mm=15.0) for n in node_names()
        ]
        assert values == sorted(values)

    def test_corner_to_corner_doubles_edge(self):
        p = node("90nm")
        assert corner_to_corner_cycles(p, 10.0) == pytest.approx(
            2 * cross_chip_cycles(p, 10.0)
        )

    def test_die_edge_validation(self):
        with pytest.raises(ValueError):
            cross_chip_cycles(node("90nm"), die_edge_mm=0.0)

    def test_clock_override(self):
        p = node("90nm")
        slow = cross_chip_cycles(p, 15.0, clock_ghz=0.5)
        fast = cross_chip_cycles(p, 15.0, clock_ghz=5.0)
        assert fast == pytest.approx(10 * slow)


class TestUnrepeatedWire:
    def test_quadratic_in_length(self):
        p = node("130nm")
        d1 = unrepeated_wire_delay_ps(p, 1.0)
        d2 = unrepeated_wire_delay_ps(p, 2.0)
        assert d2 == pytest.approx(4 * d1)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            unrepeated_wire_delay_ps(node("130nm"), -1.0)

    def test_repeaters_win_beyond_critical_length(self):
        p = node("90nm")
        crit = critical_length_mm(p)
        long = 3 * crit
        assert unrepeated_wire_delay_ps(p, long) > (
            repeated_wire_delay_ps_per_mm(p) * long
        )


class TestWireModel:
    def test_for_node_consistency(self):
        model = WireModel.for_node("65nm", die_edge_mm=12.0)
        assert model.cross_chip_ps == pytest.approx(
            model.repeated_ps_per_mm * 12.0
        )
        assert model.cross_chip_cycles == pytest.approx(
            model.cross_chip_ps * node("65nm").clock_ghz / 1000.0
        )

    def test_noc_hop_budget_exceeds_raw_wire(self):
        """Section 6.1: a complex NoC exhibits latencies many times the
        raw propagation delay."""
        model = WireModel.for_node("50nm")
        assert model.noc_hop_budget(8) > 2 * model.cross_chip_cycles

    def test_noc_hop_budget_validation(self):
        with pytest.raises(ValueError):
            WireModel.for_node("50nm").noc_hop_budget(0)


class TestAncillary:
    def test_repeater_count_increases_with_length(self):
        p = node("65nm")
        assert repeater_count(p, 20.0) > repeater_count(p, 5.0)

    def test_bandwidth_positive_and_scales_with_clock(self):
        slow = wire_bandwidth_gbps(node("180nm"))
        fast = wire_bandwidth_gbps(node("45nm"))
        assert fast > slow > 0

    def test_bandwidth_denser_pitch_gives_more(self):
        p = node("90nm")
        dense = wire_bandwidth_gbps(p, wire_pitch_um=0.5)
        sparse = wire_bandwidth_gbps(p, wire_pitch_um=2.0)
        assert dense == pytest.approx(4 * sparse)
