"""Unit tests for the power models (experiment E16 foundations)."""

import pytest

from repro.technology.node import node, node_names
from repro.technology.power import (
    PowerModel,
    VtClass,
    back_bias_vt_shift,
    dvs_energy_delay,
    dynamic_power,
    gate_delay_factor,
    leakage_current_per_um,
    leakage_fraction_trend,
    multi_vt_optimize,
)


class TestDynamicPower:
    def test_quadratic_in_vdd(self):
        p1 = dynamic_power(1e-9, 1.0, 1e9)
        p2 = dynamic_power(1e-9, 2.0, 1e9)
        assert p2 == pytest.approx(4 * p1)

    def test_linear_in_frequency(self):
        p1 = dynamic_power(1e-9, 1.0, 1e9)
        p2 = dynamic_power(1e-9, 1.0, 2e9)
        assert p2 == pytest.approx(2 * p1)

    def test_activity_validation(self):
        with pytest.raises(ValueError):
            dynamic_power(1e-9, 1.0, 1e9, activity=1.5)


class TestLeakage:
    def test_high_vt_leaks_less(self):
        p = node("90nm")
        assert leakage_current_per_um(p, VtClass.HIGH) < leakage_current_per_um(
            p, VtClass.NOMINAL
        )

    def test_low_vt_leaks_more(self):
        p = node("90nm")
        assert leakage_current_per_um(p, VtClass.LOW) > leakage_current_per_um(
            p, VtClass.NOMINAL
        )

    def test_high_vt_order_of_magnitude(self):
        """+100mV at ~85mV/decade cuts leakage >10x."""
        p = node("90nm")
        ratio = leakage_current_per_um(p, VtClass.HIGH) / leakage_current_per_um(
            p, VtClass.NOMINAL
        )
        assert ratio < 0.1

    def test_back_bias_reduces_leakage(self):
        """The paper's 'back-bias to master leakage'."""
        p = node("90nm")
        biased = leakage_current_per_um(p, body_bias_v=1.0)
        unbiased = leakage_current_per_um(p)
        assert biased < unbiased / 5

    def test_forward_bias_rejected(self):
        with pytest.raises(ValueError):
            back_bias_vt_shift(-0.5)


class TestDelay:
    def test_high_vt_is_slower(self):
        p = node("90nm")
        assert gate_delay_factor(p, VtClass.HIGH) > 1.0

    def test_low_vt_is_faster(self):
        p = node("90nm")
        assert gate_delay_factor(p, VtClass.LOW) < 1.0

    def test_lower_vdd_is_slower(self):
        p = node("90nm")
        assert gate_delay_factor(p, vdd=0.8 * p.vdd) > 1.0

    def test_supply_below_vt_rejected(self):
        p = node("90nm")
        with pytest.raises(ValueError):
            gate_delay_factor(p, vdd=0.2)


class TestPowerModel:
    def test_leakage_fraction_grows_with_scaling(self):
        """Section 4's motivation: leakage becomes dominant."""
        trend = leakage_fraction_trend([node(n) for n in node_names()])
        fractions = [f for _n, f in trend]
        assert fractions[-1] > 10 * fractions[0]

    def test_total_is_dynamic_plus_leakage(self):
        model = PowerModel.for_block(node("90nm"), 10e6)
        assert model.total_w() == pytest.approx(
            model.dynamic_w() + model.leakage_w()
        )

    def test_for_block_defaults_to_node_clock(self):
        model = PowerModel.for_block(node("130nm"), 1e6)
        assert model.frequency_ghz == node("130nm").clock_ghz


class TestMultiVt:
    def test_saves_leakage_without_touching_dynamic(self):
        model = PowerModel.for_block(node("90nm"), 50e6)
        result = multi_vt_optimize(model, critical_fraction=0.2)
        assert result["optimized_leakage_w"] < result["baseline_leakage_w"]
        assert result["dynamic_w"] == pytest.approx(model.dynamic_w())

    def test_saving_grows_as_critical_fraction_shrinks(self):
        model = PowerModel.for_block(node("90nm"), 50e6)
        tight = multi_vt_optimize(model, critical_fraction=0.1)
        loose = multi_vt_optimize(model, critical_fraction=0.5)
        assert tight["leakage_saving"] > loose["leakage_saving"]

    def test_all_critical_saves_nothing(self):
        model = PowerModel.for_block(node("90nm"), 1e6)
        result = multi_vt_optimize(model, critical_fraction=1.0)
        assert result["leakage_saving"] == pytest.approx(0.0)

    def test_fraction_validation(self):
        model = PowerModel.for_block(node("90nm"), 1e6)
        with pytest.raises(ValueError):
            multi_vt_optimize(model, critical_fraction=1.5)


class TestDvs:
    def test_energy_quadratic(self):
        model = PowerModel.for_block(node("90nm"), 1e6)
        result = dvs_energy_delay(model, 0.5)
        assert result["energy_factor"] == pytest.approx(0.25)

    def test_delay_rises_at_lower_vdd(self):
        model = PowerModel.for_block(node("90nm"), 1e6)
        assert dvs_energy_delay(model, 0.7)["delay_factor"] > 1.0

    def test_nominal_is_identity(self):
        model = PowerModel.for_block(node("90nm"), 1e6)
        result = dvs_energy_delay(model, 1.0)
        assert result["energy_factor"] == pytest.approx(1.0)
        assert result["delay_factor"] == pytest.approx(1.0)

    def test_scale_validation(self):
        model = PowerModel.for_block(node("90nm"), 1e6)
        with pytest.raises(ValueError):
            dvs_energy_delay(model, 0.0)
