"""Unit tests for the process-node database."""

import pytest

from repro.technology.node import NODES, ProcessNode, node, node_names, nodes_between


class TestLookup:
    def test_known_node(self):
        assert node("90nm").feature_nm == 90

    def test_unknown_node_lists_options(self):
        with pytest.raises(KeyError, match="90nm"):
            node("1nm")

    def test_node_names_ordered_old_to_new(self):
        names = node_names()
        features = [NODES[n].feature_nm for n in names]
        assert features == sorted(features, reverse=True)
        assert names[0] == "350nm"
        assert names[-1] == "45nm"

    def test_nodes_between_inclusive(self):
        chain = nodes_between("180nm", "90nm")
        assert [n.name for n in chain] == ["180nm", "130nm", "90nm"]

    def test_nodes_between_inverted_raises(self):
        with pytest.raises(ValueError):
            nodes_between("90nm", "180nm")


class TestDatabaseTrends:
    """The database must encode the trends the paper cites."""

    def test_density_increases_with_scaling(self):
        ordered = [NODES[n] for n in node_names()]
        densities = [p.density_mtx_per_mm2 for p in ordered]
        assert densities == sorted(densities)

    def test_mask_cost_increases_with_scaling(self):
        ordered = [NODES[n] for n in node_names()]
        costs = [p.mask_set_cost_usd for p in ordered]
        assert costs == sorted(costs)

    def test_vdd_decreases_with_scaling(self):
        ordered = [NODES[n] for n in node_names()]
        vdds = [p.vdd for p in ordered]
        assert vdds == sorted(vdds, reverse=True)

    def test_leakage_explodes_with_scaling(self):
        assert NODES["45nm"].leakage_na_per_um > 100 * NODES["250nm"].leakage_na_per_um

    def test_mask_exceeds_1M_at_90nm(self):
        assert node("90nm").mask_set_cost_usd > 1_000_000

    def test_mask_below_1M_at_130nm(self):
        assert node("130nm").mask_set_cost_usd < 1_000_000

    def test_years_monotone(self):
        ordered = [NODES[n] for n in node_names()]
        years = [p.year for p in ordered]
        assert years == sorted(years)

    def test_density_roughly_doubles_per_node(self):
        ordered = [NODES[n] for n in node_names()]
        for older, newer in zip(ordered, ordered[1:]):
            ratio = newer.density_mtx_per_mm2 / older.density_mtx_per_mm2
            assert 1.1 < ratio < 2.6


class TestProcessNodeMethods:
    def test_transistors_for_area(self):
        p = node("130nm")
        assert p.transistors_for_area(100.0) == pytest.approx(
            p.density_mtx_per_mm2 * 1e8
        )

    def test_area_transistors_roundtrip(self):
        p = node("90nm")
        area = p.area_for_transistors(p.transistors_for_area(123.0))
        assert area == pytest.approx(123.0)

    def test_clock_period(self):
        p = node("130nm")
        assert p.clock_period_ps == pytest.approx(1000.0)

    def test_feature_um(self):
        assert node("130nm").feature_um == pytest.approx(0.13)

    def test_100M_transistors_fit_130nm_die(self):
        """The paper's '100 million transistor' 0.13um SoC is feasible."""
        p = node("130nm")
        assert p.area_for_transistors(100e6) < 200.0  # mm^2, buildable die
