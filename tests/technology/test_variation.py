"""Unit tests for variation and statistical timing."""

import pytest

from repro.technology.node import node
from repro.technology.variation import (
    VariationModel,
    electromigration_mttf_years,
    gate_sigma_fraction,
    required_derate_for_yield,
    statistical_path_delay,
    timing_yield,
    voltage_drop_derate,
)


class TestGateSigma:
    def test_grows_with_scaling(self):
        assert gate_sigma_fraction(node("45nm")) > gate_sigma_fraction(
            node("180nm")
        )

    def test_capped(self):
        assert gate_sigma_fraction(node("45nm")) <= 0.20


class TestPathDelay:
    def test_mean_is_stage_sum(self):
        mean, _sigma = statistical_path_delay(node("90nm"), 10, 50.0)
        assert mean == pytest.approx(500.0)

    def test_correlation_increases_sigma(self):
        _m, s_low = statistical_path_delay(node("90nm"), 10, 50.0, corr=0.0)
        _m, s_high = statistical_path_delay(node("90nm"), 10, 50.0, corr=0.9)
        assert s_high > s_low

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            statistical_path_delay(node("90nm"), 0, 50.0)

    def test_correlation_validation(self):
        with pytest.raises(ValueError):
            statistical_path_delay(node("90nm"), 5, 50.0, corr=1.5)


class TestTimingYield:
    def test_generous_period_yields_high(self):
        p = node("130nm")
        assert timing_yield(p, p.clock_period_ps * 2.0) > 0.99

    def test_tight_period_yields_low(self):
        p = node("45nm")
        assert timing_yield(p, p.clock_period_ps * 0.8) < 0.5

    def test_yield_monotone_in_period(self):
        p = node("65nm")
        periods = [p.clock_period_ps * f for f in (0.9, 1.0, 1.2, 1.5)]
        yields = [timing_yield(p, period) for period in periods]
        assert yields == sorted(yields)

    def test_more_paths_lower_yield(self):
        p = node("65nm")
        few = timing_yield(p, p.clock_period_ps, critical_paths=10)
        many = timing_yield(p, p.clock_period_ps, critical_paths=10_000)
        assert many <= few

    def test_period_validation(self):
        with pytest.raises(ValueError):
            timing_yield(node("90nm"), 0.0)


class TestDerate:
    def test_derate_at_least_one(self):
        for name in ("180nm", "90nm", "45nm"):
            assert required_derate_for_yield(node(name)) >= 1.0

    def test_derate_grows_with_scaling(self):
        """More variation at smaller nodes forces more margin — one
        mechanism of the paper's productivity-decline argument."""
        assert required_derate_for_yield(node("45nm")) >= required_derate_for_yield(
            node("180nm")
        )

    def test_target_validation(self):
        with pytest.raises(ValueError):
            required_derate_for_yield(node("90nm"), target_yield=1.0)

    def test_variation_model_bundle(self):
        model = VariationModel.for_node(node("65nm"))
        assert model.gate_sigma_fraction > 0
        assert model.derate_for_95pct >= 1.0


class TestSupplyAndEm:
    def test_ir_drop_derate_above_one(self):
        assert voltage_drop_derate(10.0, 5.0, 1.0) > 1.0

    def test_ir_drop_exceeding_rail_rejected(self):
        with pytest.raises(ValueError):
            voltage_drop_derate(1000.0, 2000.0, 1.0)

    def test_em_reference_point(self):
        assert electromigration_mttf_years(1.0, 105.0) == pytest.approx(10.0)

    def test_em_worse_at_higher_current(self):
        assert electromigration_mttf_years(2.0) < electromigration_mttf_years(1.0)

    def test_em_worse_at_higher_temperature(self):
        assert electromigration_mttf_years(1.0, 125.0) < electromigration_mttf_years(
            1.0, 85.0
        )

    def test_em_current_validation(self):
        with pytest.raises(ValueError):
            electromigration_mttf_years(0.0)
