"""Unit tests for yield and die-cost models."""

import pytest

from repro.technology.node import node
from repro.technology.yieldmodel import (
    YieldModel,
    dice_per_wafer,
    die_cost_usd,
    negative_binomial_yield,
    repaired_yield,
)


class TestNegativeBinomialYield:
    def test_zero_defects_perfect_yield(self):
        assert negative_binomial_yield(100.0, 0.0) == pytest.approx(1.0)

    def test_yield_decreases_with_area(self):
        small = negative_binomial_yield(50.0, 0.5)
        large = negative_binomial_yield(200.0, 0.5)
        assert large < small

    def test_yield_decreases_with_defects(self):
        clean = negative_binomial_yield(100.0, 0.1)
        dirty = negative_binomial_yield(100.0, 1.0)
        assert dirty < clean

    def test_yield_in_unit_interval(self):
        y = negative_binomial_yield(300.0, 0.8)
        assert 0.0 < y < 1.0

    def test_area_validation(self):
        with pytest.raises(ValueError):
            negative_binomial_yield(0.0, 0.5)

    def test_defect_validation(self):
        with pytest.raises(ValueError):
            negative_binomial_yield(100.0, -0.1)


class TestDicePerWafer:
    def test_smaller_die_more_dice(self):
        assert dice_per_wafer(50.0, 300) > dice_per_wafer(200.0, 300)

    def test_bigger_wafer_more_dice(self):
        assert dice_per_wafer(100.0, 300) > dice_per_wafer(100.0, 200)

    def test_sane_count_for_typical_die(self):
        count = dice_per_wafer(100.0, 300)
        assert 400 < count < 707  # below the zero-edge-loss bound


class TestDieCost:
    def test_cost_positive(self):
        assert die_cost_usd(node("130nm"), 80.0) > 0

    def test_larger_die_costs_superlinearly_more(self):
        p = node("90nm")
        small = die_cost_usd(p, 50.0)
        large = die_cost_usd(p, 200.0)
        assert large > 4 * small  # 4x area, worse yield

    def test_oversized_die_rejected(self):
        with pytest.raises(ValueError):
            die_cost_usd(node("90nm"), 90_000.0)


class TestRepair:
    def test_repair_improves_yield(self):
        assert repaired_yield(0.5, 0.6) > 0.5

    def test_no_repairable_area_no_change(self):
        assert repaired_yield(0.7, 0.0) == pytest.approx(0.7)

    def test_bounded_by_one(self):
        assert repaired_yield(0.9, 1.0, 1.0) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            repaired_yield(1.5, 0.5)


class TestYieldModel:
    def test_for_die_consistency(self):
        model = YieldModel.for_die(node("90nm"), 100.0)
        assert model.good_dice == pytest.approx(
            model.gross_dice * model.yield_fraction
        )
        assert model.die_cost == pytest.approx(
            node("90nm").wafer_cost_usd / model.good_dice
        )

    def test_memory_redundancy_helps(self):
        plain = YieldModel.for_die(node("65nm"), 150.0, memory_fraction=0.0)
        repaired = YieldModel.for_die(node("65nm"), 150.0, memory_fraction=0.5)
        assert repaired.yield_fraction > plain.yield_fraction
        assert repaired.die_cost < plain.die_cost
