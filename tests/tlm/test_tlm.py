"""Unit tests for the TLM layer."""

import pytest

from repro.sim.core import Simulator
from repro.tlm.bus import AddressMap, TlmBus, TlmMemory
from repro.tlm.compare import compare_abstractions, quantum_sweep
from repro.tlm.payload import GenericPayload, ResponseStatus, TlmCommand
from repro.tlm.quantum import QuantumKeeper


class TestPayload:
    def test_validation(self):
        with pytest.raises(ValueError):
            GenericPayload(TlmCommand.READ, address=-1)
        with pytest.raises(ValueError):
            GenericPayload(TlmCommand.READ, address=0, length=0)
        with pytest.raises(ValueError):
            GenericPayload(TlmCommand.WRITE, address=0, data=b"xy", length=4)

    def test_starts_incomplete(self):
        payload = GenericPayload(TlmCommand.READ, address=0)
        assert payload.status is ResponseStatus.INCOMPLETE
        assert not payload.is_ok


class TestMemoryTarget:
    def test_write_read_roundtrip(self):
        memory = TlmMemory("m", size=256)
        address_map = AddressMap()
        address_map.add(0, 256, memory)
        bus = TlmBus(address_map)
        write = GenericPayload(TlmCommand.WRITE, 16, data=b"\xde\xad\xbe\xef")
        bus.b_transport(write)
        assert write.is_ok
        read = GenericPayload(TlmCommand.READ, 16, length=4)
        bus.b_transport(read)
        assert read.data == b"\xde\xad\xbe\xef"

    def test_unwritten_reads_zero(self):
        memory = TlmMemory("m", size=64)
        assert memory._read(0, 4) == b"\x00\x00\x00\x00"

    def test_transaction_counter(self):
        memory = TlmMemory("m", size=64)
        memory.b_transport(GenericPayload(TlmCommand.READ, 0), 0)
        assert memory.transactions == 1


class TestAddressMap:
    def test_decode_offsets(self):
        a = TlmMemory("a", 0x100)
        b = TlmMemory("b", 0x100)
        address_map = AddressMap()
        address_map.add(0x000, 0x100, a)
        address_map.add(0x100, 0x100, b)
        target, offset = address_map.decode(0x180)
        assert target is b
        assert offset == 0x80

    def test_unmapped_returns_none(self):
        address_map = AddressMap()
        address_map.add(0x100, 0x100, TlmMemory("a", 0x100))
        assert address_map.decode(0x50) is None

    def test_overlap_rejected(self):
        address_map = AddressMap()
        address_map.add(0x000, 0x200, TlmMemory("a", 0x200))
        with pytest.raises(ValueError, match="overlaps"):
            address_map.add(0x100, 0x100, TlmMemory("b", 0x100))

    def test_address_error_status(self):
        address_map = AddressMap()
        bus = TlmBus(address_map)
        payload = GenericPayload(TlmCommand.READ, 0x9999)
        bus.b_transport(payload)
        assert payload.status is ResponseStatus.ADDRESS_ERROR


class TestTimingAnnotation:
    def test_delay_components(self):
        memory = TlmMemory("m", 256, access_delay=10.0)
        address_map = AddressMap()
        address_map.add(0, 256, memory)
        bus = TlmBus(address_map, arbitration_delay=2.0, bytes_per_cycle=8.0)
        payload = GenericPayload(TlmCommand.READ, 0, length=16)
        delay = bus.b_transport(payload)
        assert delay == pytest.approx(2.0 + 16 / 8.0 + 10.0)

    def test_longer_transfers_cost_more(self):
        memory = TlmMemory("m", 256)
        address_map = AddressMap()
        address_map.add(0, 256, memory)
        bus = TlmBus(address_map)
        short = bus.b_transport(GenericPayload(TlmCommand.READ, 0, length=4))
        long = bus.b_transport(GenericPayload(TlmCommand.READ, 0, length=64))
        assert long > short


class TestQuantumKeeper:
    def test_quantum_validation(self):
        with pytest.raises(ValueError):
            QuantumKeeper(Simulator(), 0.0)

    def test_accumulates_locally_without_kernel(self):
        sim = Simulator()
        keeper = QuantumKeeper(sim, quantum=100.0)
        keeper.add(30.0)
        keeper.add(30.0)
        assert sim.now == 0.0
        assert keeper.local_time_offset == 60.0
        assert keeper.current_time == 60.0
        assert not keeper.need_sync()

    def test_sync_reconciles_kernel_time(self):
        sim = Simulator()
        keeper = QuantumKeeper(sim, quantum=50.0)

        def proc():
            keeper.add(75.0)
            yield from keeper.maybe_sync()

        sim.spawn(proc())
        sim.run()
        assert sim.now == 75.0
        assert keeper.local_time_offset == 0.0
        assert keeper.sync_count == 1

    def test_flush_handles_remainder(self):
        sim = Simulator()
        keeper = QuantumKeeper(sim, quantum=1000.0)

        def proc():
            keeper.add(10.0)
            yield from keeper.flush()

        sim.spawn(proc())
        sim.run()
        assert sim.now == 10.0

    def test_bigger_quantum_fewer_syncs(self):
        def syncs(quantum):
            sim = Simulator()
            keeper = QuantumKeeper(sim, quantum)

            def proc():
                for _ in range(100):
                    keeper.add(10.0)
                    yield from keeper.maybe_sync()
                yield from keeper.flush()

            sim.spawn(proc())
            sim.run()
            return keeper.sync_count

        assert syncs(10.0) > syncs(1000.0)


class TestCompare:
    def test_tlm_uses_far_fewer_events(self):
        """The paper's [10] claim: TLM 'increases the simulation speed'."""
        comparison = compare_abstractions(transactions=100, quantum=1000.0)
        assert comparison.event_ratio > 10.0

    def test_timing_error_bounded(self):
        """LT annotation tracks the cycle model within ~50% end to end
        (the abstractions count different mechanisms, but the totals
        must be the same order)."""
        comparison = compare_abstractions(transactions=100, quantum=1000.0)
        assert comparison.timing_error < 0.5

    def test_quantum_sweep_monotone_events(self):
        rows = quantum_sweep(quanta=(10.0, 1000.0), transactions=50)
        assert rows[0]["tlm_events"] > rows[1]["tlm_events"]
        # Final-time error does not depend on quantum (LT is conservative
        # about total accumulated delay).
        assert rows[0]["timing_error"] == pytest.approx(
            rows[1]["timing_error"], abs=0.01
        )

    def test_transaction_validation(self):
        with pytest.raises(ValueError):
            compare_abstractions(transactions=0)
