"""Coordinator + workers end-to-end: parity, stealing, faults, auth.

Every test runs a real coordinator on an ephemeral port with real
worker connections.  The scenarios registered here are deliberately
RNG-free: in-process workers share the process-global RNGs, so only
deterministic arithmetic keeps "identical to the serial run"
assertions honest regardless of interleaving.
"""

import contextlib
import json
import socket
import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.worker import BackgroundWorker, ClusterWorker, WorkerError
from repro.engine.executor import execute
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import BackgroundServer
from repro.service.shard import expand_sweep

SLOW_S = 0.35
LEASE_TIMEOUT_S = 3.0


@pytest.fixture(scope="module", autouse=True)
def cluster_scenarios():
    @scenario("_cl_fast", params={"n": 2})
    def _fast(n=2):
        return {"rows": [{"i": i, "sq": i * i} for i in range(n)],
                "verdict": {"ok": True}}

    @scenario("_cl_slow", params={"k": 1, "delay": SLOW_S})
    def _slow(k=1, delay=SLOW_S):
        time.sleep(delay)
        return {"rows": [{"k": k, "cube": k ** 3}],
                "verdict": {"ok": True}}

    yield
    for name in ("_cl_fast", "_cl_slow"):
        unregister(name)


@contextlib.contextmanager
def cluster(workers=1, journal_path=None, **coordinator_kwargs):
    coordinator_kwargs.setdefault("lease_timeout_s", LEASE_TIMEOUT_S)
    coordinator = ClusterCoordinator(
        port=0, journal_path=journal_path, **coordinator_kwargs
    )
    with BackgroundServer(server=coordinator) as bg:
        pool = []
        try:
            for index in range(workers):
                pool.append(
                    BackgroundWorker(
                        bg.host, bg.port, name=f"tw{index}",
                        auth_token=coordinator_kwargs.get("auth_token"),
                    ).start()
                )
            yield bg, coordinator, pool
        finally:
            for worker in pool:
                worker.stop()


def payloads(results):
    return sorted(
        json.dumps(r.comparable_payload(), sort_keys=True) for r in results
    )


class TestClusterExecution:
    AXES = {"k": [1, 2, 3, 4, 5, 6]}
    BASE = ScenarioSpec("_cl_slow", {"k": 1, "delay": 0.05})

    def test_single_worker_matches_local_run(self):
        specs = [ScenarioSpec("_cl_fast", {"n": n}) for n in (2, 3, 4)]
        serial = execute(specs, backend="serial")
        with cluster(workers=1) as (bg, _coord, _pool):
            with ServiceClient(bg.host, bg.port, timeout=30) as client:
                results = client.submit(specs)
                assert client.last_done["failed"] == 0
        assert payloads(results) == payloads(serial)

    def test_sweep_is_shared_across_workers_and_matches_serial(self):
        serial = execute(expand_sweep(self.BASE, self.AXES),
                         backend="serial")
        with cluster(workers=2) as (bg, _coord, pool):
            with ServiceClient(bg.host, bg.port, timeout=30) as client:
                results = client.submit([self.BASE], sweep=self.AXES)
        assert payloads(results) == payloads(serial)
        # spec-granular leasing: nobody drew a fixed i/N shard, yet
        # both workers contributed
        executed = [w.worker.executed for w in pool]
        assert sum(executed) == 6
        assert all(count > 0 for count in executed)

    def test_jobs_queue_until_a_worker_registers(self):
        spec = ScenarioSpec("_cl_fast", {"n": 5})
        with cluster(workers=0) as (bg, coordinator, _pool):
            with ServiceClient(bg.host, bg.port, timeout=30) as client:
                client.send(protocol.make_submit([spec.to_dict()]))
                ack = client._recv_checked()
                assert ack["type"] == "ack"
                # the job is accepted and queued, with nobody to run it
                deadline = time.monotonic() + 5
                while (coordinator.pool.queue.pending() < 1
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                assert coordinator.pool.queue.pending() == 1
                late = BackgroundWorker(bg.host, bg.port,
                                        name="late").start()
                try:
                    results = []
                    while True:
                        frame = client._recv_checked()
                        if frame["type"] == "done":
                            break
                        results.append(frame["result"])
                finally:
                    late.stop()
        assert len(results) == 1 and results[0]["status"] == "ok"

    def test_worker_cache_replays_on_resubmit(self, tmp_path):
        spec = ScenarioSpec("_cl_fast", {"n": 7})
        coordinator = ClusterCoordinator(port=0,
                                         lease_timeout_s=LEASE_TIMEOUT_S)
        with BackgroundServer(server=coordinator) as bg:
            worker = BackgroundWorker(bg.host, bg.port, name="cw",
                                      cache=tmp_path / "cache").start()
            try:
                with ServiceClient(bg.host, bg.port, timeout=30) as client:
                    client.submit([spec])
                    assert client.last_done["cached"] == 0
                    again = client.submit([spec])
                    assert client.last_done["cached"] == 1
                    assert again[0].cached
            finally:
                worker.stop()

    def test_cancel_stops_leasing_mid_sweep(self):
        specs = [
            ScenarioSpec("_cl_slow", {"k": k, "delay": 0.3})
            for k in range(1, 7)
        ]
        with cluster(workers=1) as (bg, _coord, _pool):
            with ServiceClient(bg.host, bg.port, timeout=30) as client:
                results = []
                for result in client.submit_iter(specs):
                    results.append(result)
                    if len(results) == 1:
                        client.send(protocol.make_cancel(client.last_job))
                assert client.last_done["cancelled"]
                assert len(results) < 6

    def test_status_counts_workers_and_queue(self):
        with cluster(workers=2) as (_bg, coordinator, _pool):
            deadline = time.monotonic() + 5
            while (len(coordinator.pool.workers) < 2
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            status = coordinator.cluster_status()
            assert len(status["workers"]) == 2
            assert status["queued"] == 0


class TestWorkerFailure:
    AXES = {"k": [1, 2, 3, 4, 5, 6]}
    BASE = ScenarioSpec("_cl_slow", {"k": 1, "delay": SLOW_S})

    def test_killed_worker_mid_sweep_requeues_and_completes(self):
        serial = execute(expand_sweep(self.BASE, self.AXES),
                         backend="serial")
        with cluster(workers=2) as (bg, coordinator, pool):
            victim, survivor = pool
            with ServiceClient(bg.host, bg.port, timeout=60) as client:
                results = []
                for result in client.submit_iter([self.BASE],
                                                 sweep=self.AXES):
                    results.append(result)
                    if len(results) == 1:
                        victim.kill()  # takes its leases down with it
                assert client.last_done["failed"] == 0
                assert not client.last_done["cancelled"]
        assert payloads(results) == payloads(serial)
        assert not victim.alive
        # the survivor picked up the victim's requeued share
        assert survivor.worker.executed >= 3

    def test_silent_worker_leases_expire_and_requeue(self):
        # a worker that registers, leases, then never answers: its
        # leases must come back after the (short) lease timeout
        coordinator = ClusterCoordinator(port=0, lease_timeout_s=1.0)
        with BackgroundServer(server=coordinator) as bg:
            zombie = socket.create_connection((bg.host, bg.port),
                                              timeout=10)
            zombie.sendall(protocol.encode_frame(
                protocol.make_register("zombie", capacity=2)
            ))
            zombie.makefile("rb").readline()  # wait for `registered`
            live = BackgroundWorker(bg.host, bg.port, name="live").start()
            try:
                specs = [
                    ScenarioSpec("_cl_fast", {"n": n})
                    for n in range(2, 8)
                ]
                with ServiceClient(bg.host, bg.port, timeout=60) as client:
                    results = client.submit(specs)
                assert len(results) == 6
                assert client.last_done["failed"] == 0
                assert coordinator.pool.total_requeued >= 1
            finally:
                live.stop()
                zombie.close()

    def test_undecodable_lease_result_requeues_instead_of_orphaning(self):
        # a worker answering a lease with a result dict that does not
        # deserialize must not strand the spec: it goes back on the
        # queue and a healthy worker (re-pumped by its heartbeat)
        # finishes the job
        coordinator = ClusterCoordinator(port=0, lease_timeout_s=1.0)
        with BackgroundServer(server=coordinator) as bg:
            buggy = socket.create_connection((bg.host, bg.port),
                                             timeout=10)
            reader = buggy.makefile("rb")
            buggy.sendall(protocol.encode_frame(
                protocol.make_register("buggy", capacity=1)
            ))
            reader.readline()  # registered
            with ServiceClient(bg.host, bg.port, timeout=60) as client:
                client.send(protocol.make_submit(
                    [ScenarioSpec("_cl_fast", {"n": 3}).to_dict()]
                ))
                assert client._recv_checked()["type"] == "ack"
                lease = json.loads(reader.readline())
                assert lease["type"] == "lease"
                buggy.sendall(protocol.encode_frame(
                    protocol.make_lease_result(lease["lease"], {})
                ))
                error = json.loads(reader.readline())
                assert error["type"] == "error"
                assert error["code"] == "bad-message"
                live = BackgroundWorker(bg.host, bg.port,
                                        name="healthy").start()
                try:
                    frames = []
                    while True:
                        frame = client._recv_checked()
                        if frame["type"] == "done":
                            break
                        frames.append(frame)
                    assert len(frames) == 1
                    assert frames[0]["result"]["status"] == "ok"
                finally:
                    live.stop()
            buggy.close()

    def test_late_result_from_an_evicted_worker_is_dropped(self):
        # regression guard on the stale-lease path: complete() for a
        # lease the pool no longer tracks must be a silent no-op
        coordinator = ClusterCoordinator(port=0, lease_timeout_s=1.0)
        with BackgroundServer(server=coordinator) as bg:
            zombie = socket.create_connection((bg.host, bg.port),
                                              timeout=10)
            reader = zombie.makefile("rb")
            zombie.sendall(protocol.encode_frame(
                protocol.make_register("zombie", capacity=1)
            ))
            reader.readline()
            live = BackgroundWorker(bg.host, bg.port, name="live").start()
            try:
                spec = ScenarioSpec("_cl_fast", {"n": 9})
                with ServiceClient(bg.host, bg.port, timeout=60) as client:
                    results = client.submit([spec])
                    assert len(results) == 1
                    # the zombie held the first lease; answer it now,
                    # long after eviction — nothing should blow up and
                    # the job must not double-deliver
                    lease = json.loads(reader.readline())
                    with contextlib.suppress(OSError):
                        zombie.sendall(protocol.encode_frame(
                            protocol.make_lease_result(
                                lease["lease"], results[0].to_dict()
                            )
                        ))
                    time.sleep(0.2)
                    assert client.ping()  # coordinator still healthy
            finally:
                live.stop()
                zombie.close()


class TestListenerHardening:
    def test_plain_server_rejects_worker_frames_structurally(self):
        from repro.service.backend import LocalBackend

        with BackgroundServer(LocalBackend(backend="serial")) as bg:
            with socket.create_connection((bg.host, bg.port),
                                          timeout=10) as sock:
                sock.sendall(protocol.encode_frame(
                    protocol.make_register("w", capacity=1)
                ))
                reply = json.loads(sock.makefile("rb").readline())
        assert reply["type"] == "error"
        assert reply["code"] == "unsupported"

    def test_guarded_coordinator_refuses_tokenless_worker(self):
        with cluster(workers=0, auth_token="hunter2") as (bg, _c, _p):
            worker = ClusterWorker(bg.host, bg.port, name="anon",
                                   connect_retries=5, reconnects=0)
            with pytest.raises(WorkerError) as info:
                worker._serve_one_connection()
            assert "unauthorized" in str(info.value)

    def test_guarded_coordinator_accepts_token_carrying_fleet(self):
        spec = ScenarioSpec("_cl_fast", {"n": 4})
        with cluster(workers=1, auth_token="hunter2") as (bg, _c, _p):
            with ServiceClient(bg.host, bg.port, timeout=30,
                               auth_token="hunter2") as client:
                results = client.submit([spec])
            assert results[0].ok

    def test_unknown_worker_heartbeat_is_a_structured_error(self):
        with cluster(workers=0) as (bg, _c, _p):
            with socket.create_connection((bg.host, bg.port),
                                          timeout=10) as sock:
                sock.sendall(protocol.encode_frame(
                    protocol.make_heartbeat("w99")
                ))
                reply = json.loads(sock.makefile("rb").readline())
        assert reply["code"] == "unknown-worker"
