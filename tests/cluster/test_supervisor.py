"""Worker supervision: autoscaling, backoff restarts, crash-loop cutoff.

The policy tests drive :meth:`WorkerSupervisor.tick` with a fake
clock and fake process handles — no sleeps, no subprocesses — so
every timing rule (backoff delay, crash window, idle grace) is
asserted against explicit instants.  One end-to-end test then wires a
supervisor to a real coordinator with thread-backed workers to prove
a crash-looping slot cannot wedge a sweep.
"""

import random
import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.supervisor import (
    BACKOFF,
    CRASH_LOOPED,
    LIVE,
    WorkerSupervisor,
)
from repro.cluster.worker import BackgroundWorker
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service.backoff import Backoff
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer


class FakeHandle:
    """A controllable stand-in for a worker process."""

    def __init__(self):
        self._alive = True
        self.terminated = False
        self.killed = False

    def alive(self):
        return self._alive

    def die(self):
        self._alive = False

    def terminate(self):
        self.terminated = True
        self._alive = False

    def kill(self):
        self.killed = True
        self._alive = False

    def wait(self, timeout=None):
        pass


class FakePool:
    def __init__(self, backlog=0):
        self._backlog = backlog

    def backlog(self):
        return self._backlog


def make_supervisor(min_workers=1, max_workers=4, backlog=0, **kwargs):
    handles = []

    def spawn(_slot):
        handle = FakeHandle()
        handles.append(handle)
        return handle

    kwargs.setdefault("backoff",
                      Backoff(base_s=1.0, max_s=8.0, jitter=0.0))
    kwargs.setdefault("idle_grace_s", 5.0)
    supervisor = WorkerSupervisor(
        spawn, min_workers, max_workers,
        clock=lambda: 0.0, rng=random.Random(0), **kwargs
    )
    supervisor.pool = FakePool(backlog)
    return supervisor, handles


class TestAutoscaling:
    def test_first_tick_spawns_the_floor(self):
        supervisor, handles = make_supervisor(min_workers=2)
        supervisor.tick(0.0)
        assert len(handles) == 2
        assert supervisor.status()["live"] == 2

    def test_backlog_scales_up_to_the_ceiling(self):
        supervisor, handles = make_supervisor(
            min_workers=1, max_workers=3, backlog=100,
            specs_per_worker=4,
        )
        supervisor.tick(0.0)
        # ceil(100/4) = 25, clamped to max_workers
        assert len(handles) == 3
        assert supervisor.desired_workers(100) == 3

    def test_desired_tracks_backlog_proportionally(self):
        supervisor, _handles = make_supervisor(
            min_workers=1, max_workers=8, specs_per_worker=4
        )
        assert supervisor.desired_workers(0) == 1
        assert supervisor.desired_workers(5) == 2
        assert supervisor.desired_workers(17) == 5
        assert supervisor.desired_workers(10_000) == 8

    def test_scale_down_waits_out_the_idle_grace(self):
        supervisor, handles = make_supervisor(
            min_workers=1, max_workers=4, backlog=16, idle_grace_s=5.0
        )
        supervisor.tick(0.0)
        assert supervisor.status()["live"] == 4
        supervisor.pool._backlog = 0      # demand collapses
        supervisor.tick(1.0)              # starts the grace clock
        assert supervisor.status()["live"] == 4
        supervisor.tick(3.0)              # still inside the grace
        assert supervisor.status()["live"] == 4
        supervisor.tick(7.0)              # grace expired: retire
        assert supervisor.status()["live"] == 1
        # retirement is graceful (terminate → drain), never a kill
        assert any(h.terminated for h in handles)
        assert not any(h.killed for h in handles)

    def test_demand_spike_during_grace_cancels_the_scale_down(self):
        supervisor, _handles = make_supervisor(
            min_workers=1, max_workers=4, backlog=16, idle_grace_s=5.0
        )
        supervisor.tick(0.0)
        supervisor.pool._backlog = 0
        supervisor.tick(1.0)
        supervisor.pool._backlog = 16     # demand returns mid-grace
        supervisor.tick(2.0)
        supervisor.tick(100.0)
        assert supervisor.status()["live"] == 4


class TestRestartBackoff:
    def test_death_schedules_a_restart_after_the_backoff_delay(self):
        supervisor, handles = make_supervisor(min_workers=1)
        supervisor.tick(0.0)
        handles[0].die()
        supervisor.tick(10.0)             # reap: first death, attempt 0
        slot = supervisor.slots[0]
        assert slot.state == BACKOFF
        assert slot.restart_at == pytest.approx(11.0)  # base_s=1, no jitter
        supervisor.tick(10.5)             # before restart_at: no spawn
        assert len(handles) == 1
        supervisor.tick(11.0)             # due: respawn
        assert len(handles) == 2
        assert slot.state == LIVE
        assert supervisor.restarts_total == 1

    def test_repeated_deaths_ramp_the_delay_exponentially(self):
        supervisor, handles = make_supervisor(
            min_workers=1, crash_threshold=10, crash_window_s=1000.0
        )
        supervisor.tick(0.0)
        gaps = []
        now = 0.0
        for _death in range(4):
            handles[-1].die()
            now += 0.001
            supervisor.tick(now)
            slot = supervisor.slots[0]
            gaps.append(slot.restart_at - now)
            now = slot.restart_at
            supervisor.tick(now)          # respawn exactly on schedule
        assert gaps == pytest.approx([1.0, 2.0, 4.0, 8.0])

    def test_deaths_outside_the_window_are_forgiven(self):
        supervisor, handles = make_supervisor(
            min_workers=1, crash_threshold=3, crash_window_s=60.0
        )
        supervisor.tick(0.0)
        # two deaths long ago, then one far outside the window: the
        # pruned history restarts at attempt 0 again
        for now in (0.0, 2.0):
            handles[-1].die()
            supervisor.tick(now)
            supervisor.tick(supervisor.slots[0].restart_at)
        handles[-1].die()
        supervisor.tick(500.0)
        slot = supervisor.slots[0]
        assert slot.state == BACKOFF
        assert slot.restart_at - 500.0 == pytest.approx(1.0)


class TestCrashLoop:
    def test_threshold_deaths_in_window_stop_the_restarts(self):
        supervisor, handles = make_supervisor(
            min_workers=1, crash_threshold=3, crash_window_s=60.0
        )
        now = 0.0
        supervisor.tick(now)
        for _death in range(3):
            handles[-1].die()
            now += 0.1
            supervisor.tick(now)
            if supervisor.slots[0].state == BACKOFF:
                now = supervisor.slots[0].restart_at
                supervisor.tick(now)
        slot = supervisor.slots[0]
        assert slot.state == CRASH_LOOPED
        spawned = len(handles)
        supervisor.tick(now + 1000.0)     # no resurrection, ever
        assert len(handles) == spawned
        assert supervisor.status()["crash_looped"] == 1

    def test_crash_looped_slot_occupies_its_position(self):
        # the cut-off slot must not be replaced by a fresh slot, or
        # the loop would just migrate to a new pid forever
        supervisor, handles = make_supervisor(
            min_workers=2, max_workers=2, crash_threshold=2,
            crash_window_s=60.0,
        )
        now = 0.0
        supervisor.tick(now)
        for _death in range(2):
            supervisor.slots[0].handle.die()
            now += 0.1
            supervisor.tick(now)
            if supervisor.slots[0].state == BACKOFF:
                now = supervisor.slots[0].restart_at
                supervisor.tick(now)
        assert supervisor.slots[0].state == CRASH_LOOPED
        supervisor.tick(now + 100.0)
        status = supervisor.status()
        assert status["crash_looped"] == 1
        assert status["live"] == 1        # the healthy slot, untouched
        assert len(supervisor.slots) == 2

    def test_spawn_failure_counts_as_a_death(self):
        attempts = []

        def bad_spawn(slot):
            attempts.append(slot)
            raise OSError("no such binary")

        supervisor = WorkerSupervisor(
            bad_spawn, 1, 1, crash_threshold=3,
            backoff=Backoff(base_s=1.0, max_s=8.0, jitter=0.0),
            clock=lambda: 0.0,
        )
        supervisor.pool = FakePool()
        now = 0.0
        for _ in range(10):
            supervisor.tick(now)
            now = max(now + 0.1, supervisor.slots[0].restart_at)
        assert supervisor.slots[0].state == CRASH_LOOPED
        assert len(attempts) == 3


class TestStatusBlock:
    def test_status_reports_the_full_roster_shape(self):
        supervisor, handles = make_supervisor(
            min_workers=2, max_workers=4
        )
        supervisor.tick(0.0)
        handles[0].die()
        supervisor.tick(1.0)
        status = supervisor.status()
        assert status == {
            "min": 2, "max": 4, "desired": 2,
            "live": 1, "restarting": 1, "crash_looped": 0,
            "retiring": 0, "spawned_total": 2, "restarts_total": 0,
            "retired_total": 0,
        }

    def test_shutdown_terminates_every_live_child(self):
        supervisor, handles = make_supervisor(min_workers=3)
        supervisor.tick(0.0)
        supervisor.shutdown()
        assert all(h.terminated for h in handles)
        supervisor.tick(1.0)              # closed: a no-op
        assert len(handles) == 3


@pytest.fixture(scope="module", autouse=True)
def supervisor_scenarios():
    @scenario("_sup_sq", params={"n": 2})
    def _sq(n=2):
        return {"rows": [{"n": n, "sq": n * n}],
                "verdict": {"ok": True}}

    yield
    unregister("_sup_sq")


class ThreadHandle:
    """A supervised 'process' backed by an in-process worker thread."""

    def __init__(self, host, port, name):
        self.bw = BackgroundWorker(host, port, name=name).start()

    def alive(self):
        return self.bw.alive

    def terminate(self):
        self.bw.worker.drain()

    def kill(self):
        self.bw.worker.kill()

    def wait(self, timeout=None):
        self.bw._thread.join(timeout=timeout)


class DeadOnArrival:
    """A child that dies the instant it is spawned (crash-loop fuel)."""

    def alive(self):
        return False

    def terminate(self):
        pass

    kill = terminate

    def wait(self, timeout=None):
        pass


class TestSupervisedClusterEndToEnd:
    def test_crash_looping_slot_does_not_wedge_the_sweep(self):
        """Acceptance: slot 1 dies on every spawn and is cut off after
        the crash budget; the sweep still completes on slot 0's healthy
        worker, and the cut-off is visible in the status frame."""
        coordinator = ClusterCoordinator(port=0, lease_timeout_s=5.0)
        threads = []

        def spawn(slot):
            if slot == 1:
                return DeadOnArrival()
            handle = ThreadHandle(coordinator.host, coordinator.port,
                                  f"sup-{slot}")
            threads.append(handle)
            return handle

        supervisor = WorkerSupervisor(
            spawn, min_workers=2, max_workers=2,
            crash_threshold=3, crash_window_s=60.0,
            backoff=Backoff(base_s=0.01, max_s=0.05, jitter=0.0),
            tick_s=0.02,
        )
        coordinator.supervisor = supervisor
        with BackgroundServer(server=coordinator) as bg:
            try:
                specs = [
                    ScenarioSpec("_sup_sq", {"n": n}) for n in range(6)
                ]
                with ServiceClient(bg.host, bg.port,
                                   timeout=30) as client:
                    results = client.submit(specs)
                    assert len(results) == 6
                    assert client.last_done["failed"] == 0
                    deadline = time.monotonic() + 10
                    while (supervisor.status()["crash_looped"] < 1
                           and time.monotonic() < deadline):
                        time.sleep(0.02)
                    status = client.status_full()
                sup = status["cluster"]["supervisor"]
                assert sup["crash_looped"] == 1
                assert sup["live"] >= 1
                assert sup["restarts_total"] >= 2
            finally:
                for handle in threads:
                    handle.kill()
        assert supervisor.closed  # coordinator stop tears it down
