"""Crash-resume: kill a worker, kill the coordinator, lose nothing.

The acceptance bar from the issue: a sweep run on a coordinator with
workers — including a worker killed mid-run and a coordinator
``--resume`` after restart — produces a merged report identical to the
serial ``repro run --sweep``, with zero re-executions of
journal-completed specs.  The journal's lease trail is the proof: no
spec hash completed before the crash may appear in a lease event after
the ``resume`` marker.
"""

import json
import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.journal import JobJournal
from repro.cluster.worker import BackgroundWorker
from repro.engine.executor import execute
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer
from repro.service.shard import expand_sweep

AXES = {"k": [1, 2, 3, 4, 5, 6]}
BASE_PARAMS = {"k": 1, "delay": 0.25}
LEASE_TIMEOUT_S = 3.0


@pytest.fixture(scope="module", autouse=True)
def resume_scenarios():
    @scenario("_rs_slow", params=dict(BASE_PARAMS))
    def _slow(k=1, delay=0.25):
        time.sleep(delay)
        return {"rows": [{"k": k, "sq": k * k}], "verdict": {"ok": True}}

    yield
    unregister("_rs_slow")


@pytest.fixture(scope="module")
def base_spec():
    return ScenarioSpec("_rs_slow", BASE_PARAMS)


@pytest.fixture(scope="module")
def serial_payloads(base_spec):
    report = execute(expand_sweep(base_spec, AXES), backend="serial")
    return sorted(
        json.dumps(r.comparable_payload(), sort_keys=True) for r in report
    )


def payloads(results):
    return sorted(
        json.dumps(r.comparable_payload(), sort_keys=True) for r in results
    )


class TestCoordinatorResume:
    def test_worker_and_coordinator_crash_then_resume_to_parity(
        self, tmp_path, base_spec, serial_payloads
    ):
        journal_path = tmp_path / "journal.jsonl"

        # -- phase 1: run with two workers, SIGKILL one, then "crash"
        #    the coordinator itself after a couple of completions
        coordinator = ClusterCoordinator(
            port=0, journal_path=str(journal_path),
            lease_timeout_s=LEASE_TIMEOUT_S,
        )
        crash_server = BackgroundServer(server=coordinator).start()
        victim = BackgroundWorker(crash_server.host, crash_server.port,
                                  name="victim").start()
        plodder = BackgroundWorker(crash_server.host, crash_server.port,
                                   name="plodder").start()
        client = ServiceClient(crash_server.host, crash_server.port,
                               timeout=60)
        pre_crash = []
        for result in client.submit_iter([base_spec], sweep=AXES):
            pre_crash.append(result)
            if len(pre_crash) == 1:
                victim.kill()          # worker death mid-sweep...
            if len(pre_crash) == 2:
                break                  # ...then coordinator death
        job_id = client.last_job
        crash_server.stop()            # pool aborts; no job-done record
        client.close()
        plodder.stop()

        state = JobJournal.replay(journal_path)
        job = state.jobs[job_id]
        assert not job.finished        # the crash left it running
        assert len(job.results) >= 2
        completed_hashes = job.completed_hashes()
        pending = job.pending_specs()
        assert pending                 # there is work left to resume
        leases_before_resume = len(state.leases)

        # -- phase 2: restart with --resume semantics and a fresh worker
        resumed = ClusterCoordinator(
            port=0, journal_path=str(journal_path), resume=True,
            lease_timeout_s=LEASE_TIMEOUT_S,
        )
        with BackgroundServer(server=resumed) as bg:
            worker = BackgroundWorker(bg.host, bg.port,
                                      name="finisher").start()
            try:
                with ServiceClient(bg.host, bg.port, timeout=60) as c2:
                    merged = list(c2.stream_job(job_id))
                    assert c2.last_done["total"] == 6
                    assert c2.last_done["failed"] == 0
                # zero re-executions: the fresh worker ran exactly the
                # journal-pending specs, nothing more
                assert worker.worker.executed == len(pending)
            finally:
                worker.stop()

        # merged report identical to the uninterrupted serial sweep
        assert payloads(merged) == serial_payloads

        # and the journal agrees: after the resume marker, no lease
        # ever named a spec that was completed before the crash
        final = JobJournal.replay(journal_path)
        assert final.resumes == 1
        assert final.jobs[job_id].finished
        post_resume_leases = final.leases[leases_before_resume:]
        assert post_resume_leases     # the resumed work was leased
        assert not [
            spec_hash
            for (_job, spec_hash, _worker) in post_resume_leases
            if spec_hash in completed_hashes
        ]

    def test_resume_with_nothing_pending_just_closes_the_job(
        self, tmp_path, base_spec
    ):
        # every spec completed before the crash; only job-done was lost
        journal_path = tmp_path / "journal.jsonl"
        specs = expand_sweep(base_spec, {"k": [1, 2]})
        journal = JobJournal(journal_path)
        journal.record_submit("job-1", specs)
        for spec in specs:
            from repro.engine.executor import run_spec

            journal.record_complete("job-1", run_spec(spec))
        journal.close()

        resumed = ClusterCoordinator(
            port=0, journal_path=str(journal_path), resume=True,
            lease_timeout_s=LEASE_TIMEOUT_S,
        )
        with BackgroundServer(server=resumed) as bg:
            # no workers at all: nothing needs executing
            with ServiceClient(bg.host, bg.port, timeout=30) as client:
                merged = list(client.stream_job("job-1"))
                assert len(merged) == 2
                assert client.last_done["failed"] == 0
        final = JobJournal.replay(journal_path)
        assert final.jobs["job-1"].finished
        assert final.leases == []  # nothing was ever re-leased

    def test_finished_jobs_survive_restart_for_late_streams(
        self, tmp_path, base_spec
    ):
        journal_path = tmp_path / "journal.jsonl"
        first = ClusterCoordinator(
            port=0, journal_path=str(journal_path),
            lease_timeout_s=LEASE_TIMEOUT_S,
        )
        with BackgroundServer(server=first) as bg:
            worker = BackgroundWorker(bg.host, bg.port, name="w").start()
            try:
                with ServiceClient(bg.host, bg.port, timeout=60) as client:
                    done = client.submit(
                        [base_spec], sweep={"k": [1, 2, 3]}
                    )
                    job_id = client.last_job
            finally:
                worker.stop()

        resumed = ClusterCoordinator(
            port=0, journal_path=str(journal_path), resume=True,
            lease_timeout_s=LEASE_TIMEOUT_S,
        )
        with BackgroundServer(server=resumed) as bg:
            with ServiceClient(bg.host, bg.port, timeout=30) as client:
                replayed = list(client.stream_job(job_id))
                status = client.status(job_id)
        assert payloads(replayed) == payloads(done)
        assert status[job_id]["state"] == "done"

    def test_duplicate_specs_keep_their_multiplicity_across_resume(
        self, tmp_path, base_spec
    ):
        # a sweep may legitimately submit the same spec twice (e.g.
        # --sweep seed=1,1): after a crash with one copy completed, the
        # resume still owes exactly one more execution — not zero
        # (hash-dedup) and not two
        from repro.engine.executor import run_spec

        journal_path = tmp_path / "journal.jsonl"
        spec = base_spec.with_params(k=5)
        journal = JobJournal(journal_path)
        journal.record_submit("job-1", [spec, spec])
        journal.record_complete("job-1", run_spec(spec))
        journal.close()

        state = JobJournal.replay(journal_path)
        assert len(state.jobs["job-1"].pending_specs()) == 1

        resumed = ClusterCoordinator(
            port=0, journal_path=str(journal_path), resume=True,
            lease_timeout_s=LEASE_TIMEOUT_S,
        )
        with BackgroundServer(server=resumed) as bg:
            worker = BackgroundWorker(bg.host, bg.port, name="w").start()
            try:
                with ServiceClient(bg.host, bg.port, timeout=60) as client:
                    merged = list(client.stream_job("job-1"))
                    assert len(merged) == 2
                    assert client.last_done["total"] == 2
                assert worker.worker.executed == 1
            finally:
                worker.stop()

    def test_job_ids_continue_after_resume(self, tmp_path, base_spec):
        journal_path = tmp_path / "journal.jsonl"
        journal = JobJournal(journal_path)
        journal.record_submit("job-3", [base_spec])
        journal.record_job_done("job-3", "done")
        journal.close()

        resumed = ClusterCoordinator(
            port=0, journal_path=str(journal_path), resume=True,
            lease_timeout_s=LEASE_TIMEOUT_S,
        )
        with BackgroundServer(server=resumed) as bg:
            worker = BackgroundWorker(bg.host, bg.port, name="w").start()
            try:
                with ServiceClient(bg.host, bg.port, timeout=60) as client:
                    client.submit([base_spec.with_params(k=9)])
                    # never reuse a journaled id for new work
                    assert client.last_job == "job-4"
            finally:
                worker.stop()
