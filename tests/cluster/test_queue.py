"""Work-stealing queue laws: ownership, balance, stealing, eviction."""

from repro.cluster.queue import WorkStealingQueue


def drain(queue, worker_id):
    items = []
    while True:
        item = queue.pop(worker_id)
        if item is None:
            return items
        items.append(item)


class TestBacklog:
    def test_items_without_workers_go_to_the_backlog(self):
        queue = WorkStealingQueue()
        assert queue.push("a") == ""
        assert queue.push("b") == ""
        assert queue.pending() == 2
        assert queue.depths() == {"": 2}

    def test_backlog_drains_fifo_to_whoever_asks(self):
        queue = WorkStealingQueue()
        for item in "abc":
            queue.push(item)
        queue.add_worker("w1")
        assert [queue.pop("w1") for _ in range(3)] == list("abc")
        assert queue.pop("w1") is None

    def test_push_front_jumps_the_backlog(self):
        queue = WorkStealingQueue()
        queue.push("fresh")
        queue.push_front("requeued")
        queue.add_worker("w1")
        assert queue.pop("w1") == "requeued"
        assert queue.pop("w1") == "fresh"


class TestOwnership:
    def test_owner_pops_its_own_deque_in_order(self):
        queue = WorkStealingQueue()
        queue.add_worker("w1")
        for item in "abc":
            queue.push(item, "w1")
        assert drain(queue, "w1") == list("abc")

    def test_unassigned_pushes_balance_to_the_shortest_deque(self):
        queue = WorkStealingQueue()
        queue.add_worker("w1")
        queue.add_worker("w2")
        landed = [queue.push(i) for i in range(4)]
        # shortest-first with first-registered tiebreak alternates
        assert landed == ["w1", "w2", "w1", "w2"]

    def test_explicit_unknown_worker_falls_back_to_balancing(self):
        queue = WorkStealingQueue()
        queue.add_worker("w1")
        assert queue.push("a", "ghost") == "w1"


class TestStealing:
    def test_idle_worker_steals_from_the_back_of_the_longest(self):
        queue = WorkStealingQueue()
        queue.add_worker("busy")
        queue.add_worker("idle")
        for item in "abcd":
            queue.push(item, "busy")
        assert queue.pop("idle") == "d"      # thief takes the cold tail
        assert queue.pop("busy") == "a"      # owner's front undisturbed
        assert queue.pop("idle") == "c"
        assert queue.pop("busy") == "b"
        assert queue.pop("idle") is None

    def test_steal_victim_is_the_longest_deque(self):
        queue = WorkStealingQueue()
        for worker in ("w1", "w2", "w3"):
            queue.add_worker(worker)
        queue.push("short", "w1")
        for item in ("x", "y", "z"):
            queue.push(item, "w2")
        assert queue.pop("w3") == "z"  # w2 is longest; its back goes first

    def test_own_work_beats_stealing(self):
        queue = WorkStealingQueue()
        queue.add_worker("w1")
        queue.add_worker("w2")
        queue.push("mine", "w1")
        for item in ("x", "y", "z"):
            queue.push(item, "w2")
        assert queue.pop("w1") == "mine"


class TestEviction:
    def test_removed_workers_leftovers_return_to_the_backlog(self):
        queue = WorkStealingQueue()
        queue.add_worker("w1")
        for item in "abc":
            queue.push(item, "w1")
        assert queue.remove_worker("w1") == list("abc")
        assert queue.pending() == 3
        queue.add_worker("w2")
        assert drain(queue, "w2") == list("abc")

    def test_removing_unknown_worker_is_harmless(self):
        queue = WorkStealingQueue()
        assert queue.remove_worker("ghost") == []

    def test_len_counts_backlog_and_deques(self):
        queue = WorkStealingQueue()
        queue.push("backlogged")
        queue.add_worker("w1")
        queue.push("owned", "w1")
        assert len(queue) == 2
