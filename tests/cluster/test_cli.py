"""CLI surface of the cluster subsystem: parsing and the cache command."""

import pytest

from repro.engine.cli import build_parser, main
from repro.engine.cache import ResultCache
from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec


class TestParsing:
    def test_coordinator_defaults(self):
        args = build_parser().parse_args(["coordinator"])
        assert args.port == 7452
        assert args.journal.endswith("coordinator_journal.jsonl")
        assert not args.resume and not args.no_journal
        assert args.lease_timeout == 30.0
        assert args.auth_token is None and args.max_pending is None

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])
        args = build_parser().parse_args(
            ["worker", "--connect", "10.0.0.1:7452", "--capacity", "3"]
        )
        assert args.connect == "10.0.0.1:7452" and args.capacity == 3

    def test_worker_rejects_a_portless_connect(self, capsys):
        assert main(["worker", "--connect", "just-a-host"]) == 2
        assert "host:port" in capsys.readouterr().err

    def test_serve_gained_hardening_flags(self):
        args = build_parser().parse_args(
            ["serve", "--auth-token", "t", "--max-pending", "64"]
        )
        assert args.auth_token == "t" and args.max_pending == 64

    def test_submit_gained_attach(self):
        args = build_parser().parse_args(
            ["submit", "--attach", "job-3", "--auth-token", "t"]
        )
        assert args.attach == "job-3"


class TestCacheCommand:
    def _seed(self, tmp_path, count):
        import os
        import time

        cache = ResultCache(tmp_path, code_version="testversion1")
        base = time.time() - count
        for i in range(count):
            spec = ScenarioSpec("_c", {"i": i})
            path = cache.put(ScenarioResult(
                name="_c", spec_hash=spec.content_hash,
            ))
            os.utime(path, (base + i, base + i))
        return cache

    def test_stats_render(self, tmp_path, capsys):
        self._seed(tmp_path, 3)
        assert main(["cache", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out

    def test_prune_applies_the_lru_cap(self, tmp_path, capsys):
        cache = self._seed(tmp_path, 5)
        assert main([
            "cache", "--dir", str(tmp_path), "--prune",
            "--max-entries", "2",
        ]) == 0
        assert "pruned 3 entries" in capsys.readouterr().out
        assert len(list(tmp_path.rglob("*.json"))) == 2

    def test_prune_without_a_cap_is_a_usage_error(self, tmp_path, capsys):
        assert main(["cache", "--dir", str(tmp_path), "--prune"]) == 2
        assert "--max-entries" in capsys.readouterr().err

    def test_clear_empties_every_version(self, tmp_path, capsys):
        self._seed(tmp_path, 4)
        assert main(["cache", "--dir", str(tmp_path), "--clear"]) == 0
        assert "cleared 4 entries" in capsys.readouterr().out
        assert list(tmp_path.rglob("*.json")) == []
