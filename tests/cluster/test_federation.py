"""Federated coordinators end-to-end: parity, failover, resume.

The acceptance bar from the issue: a sweep sharded across two peer
coordinator pools survives the death of one *entire pool* mid-sweep
(its chunk re-homes to the survivor) and a front crash followed by
``repro federate --resume`` — in both cases producing a merged report
identical to the serial run, with zero re-executions of specs the
front journal had already banked.  Pure-logic pieces (circuit breaker
transitions, re-home budgets, chaos grammar) are tested without
sockets on fake clocks.
"""

import contextlib
import json
import queue as stdlib_queue
import socket
import time

import pytest

from repro.cluster.chaos import ChaosMonkey
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.federation import (
    CircuitBreaker,
    FederatedCoordinator,
    FederationPool,
)
from repro.cluster.journal import JobJournal
from repro.cluster.worker import BackgroundWorker
from repro.engine.executor import execute
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.backoff import Backoff
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import BackgroundServer
from repro.service.shard import expand_sweep

SLOW_S = 0.3
LEASE_TIMEOUT_S = 3.0
AXES = {"k": [1, 2, 3, 4, 5, 6]}

#: snappy failover knobs for in-process tests: probe fast, trip fast
FED_KW = dict(
    probe_interval_s=0.2,
    failure_threshold=2,
    poll_timeout_s=0.2,
    connect_timeout_s=2.0,
)


@pytest.fixture(scope="module", autouse=True)
def federation_scenarios():
    @scenario("_fed_fast", params={"n": 2})
    def _fast(n=2):
        return {"rows": [{"i": i, "sq": i * i} for i in range(n)],
                "verdict": {"ok": True}}

    @scenario("_fed_slow", params={"k": 1, "delay": SLOW_S})
    def _slow(k=1, delay=SLOW_S):
        time.sleep(delay)
        return {"rows": [{"k": k, "cube": k ** 3}],
                "verdict": {"ok": True}}

    yield
    for name in ("_fed_fast", "_fed_slow"):
        unregister(name)


@contextlib.contextmanager
def pool(workers=1):
    """One real coordinator pool (ephemeral port) with its workers."""
    coordinator = ClusterCoordinator(port=0,
                                     lease_timeout_s=LEASE_TIMEOUT_S)
    with BackgroundServer(server=coordinator) as bg:
        fleet = []
        try:
            for index in range(workers):
                fleet.append(
                    BackgroundWorker(bg.host, bg.port,
                                     name=f"pw{index}").start()
                )
            yield bg, coordinator, fleet
        finally:
            for worker in fleet:
                worker.stop()


@contextlib.contextmanager
def federation(pool_addrs, **kwargs):
    for key, value in FED_KW.items():
        kwargs.setdefault(key, value)
    kwargs.setdefault("chunk_specs", 3)
    front = FederatedCoordinator(port=0, pools=pool_addrs, **kwargs)
    with BackgroundServer(server=front) as bg:
        yield bg, front


def payloads(results):
    return sorted(
        json.dumps(r.comparable_payload(), sort_keys=True) for r in results
    )


class TestFederatedExecution:
    BASE = ScenarioSpec("_fed_slow", {"k": 1, "delay": 0.05})

    def test_two_pool_sweep_matches_serial(self):
        serial = execute(expand_sweep(self.BASE, AXES), backend="serial")
        with pool() as (bga, _ca, _wa), pool() as (bgb, _cb, _wb):
            addrs = [(bga.host, bga.port), (bgb.host, bgb.port)]
            with federation(addrs, chunk_specs=2) as (bg, front):
                with ServiceClient(bg.host, bg.port, timeout=60) as client:
                    results = client.submit([self.BASE], sweep=AXES)
                    assert client.last_done["failed"] == 0
                status = front.fed.status()
        assert payloads(results) == payloads(serial)
        # chunked fan-out: both pools contributed, nothing left queued
        assert all(
            p["assigned"] > 0 for p in status["pools"].values()
        )
        assert status["completed"] == 6
        assert status["queued"] == 0 and status["inflight"] == 0

    def test_front_status_carries_federation_topology(self):
        with pool() as (bga, _ca, _wa):
            with federation([(bga.host, bga.port)]) as (bg, _front):
                with ServiceClient(bg.host, bg.port, timeout=30) as client:
                    cluster = client.status_full()["cluster"]
        assert cluster["federation"] is True
        assert len(cluster["pools"]) == 1
        (peer,) = cluster["pools"].values()
        assert peer["breaker"]["state"] == CircuitBreaker.CLOSED


class TestFederationFrames:
    def test_register_health_rehome_round_trip(self):
        with pool() as (bga, _ca, _wa), pool() as (bgb, _cb, _wb):
            with federation([(bga.host, bga.port)]) as (bg, front):
                with ServiceClient(bg.host, bg.port, timeout=30) as client:
                    name = client.register_pool(bgb.host, bgb.port)
                    health = client.pool_health()
                    assert set(health) == {"pool-1", name}
                    assert all(
                        p["breaker"]["state"] == CircuitBreaker.CLOSED
                        for p in health.values()
                    )
                    # drain the new pool; nothing in flight → 0
                    assert client.rehome_pool(name) == 0
                    assert front.fed.peers[name].draining
                    # re-registering the same address re-attaches it
                    assert client.register_pool(bgb.host,
                                               bgb.port) == name
                    assert not front.fed.peers[name].draining

    def test_rehome_of_unknown_pool_is_a_structured_error(self):
        with pool() as (bga, _ca, _wa):
            with federation([(bga.host, bga.port)]) as (bg, _front):
                with ServiceClient(bg.host, bg.port, timeout=30) as client:
                    with pytest.raises(ServiceError) as info:
                        client.rehome_pool("pool-99")
                    assert info.value.code == "unknown-pool"
                    # the connection survives the refusal
                    assert client.ping()

    def test_plain_listener_rejects_fed_frames_structurally(self):
        from repro.service.backend import LocalBackend

        with BackgroundServer(LocalBackend(backend="serial")) as bg:
            with socket.create_connection((bg.host, bg.port),
                                          timeout=10) as sock:
                sock.sendall(protocol.encode_frame(
                    protocol.make_pool_health()
                ))
                reply = json.loads(sock.makefile("rb").readline())
        assert reply["type"] == "error"
        assert reply["code"] == "unsupported"


class TestPoolFailover:
    BASE = ScenarioSpec("_fed_slow", {"k": 1, "delay": SLOW_S})

    def test_killed_pool_mid_sweep_rehomes_to_survivor(self):
        serial = execute(expand_sweep(self.BASE, AXES), backend="serial")
        with pool() as (bga, _ca, wa), pool() as (bgb, _cb, _wb):
            addrs = [(bga.host, bga.port), (bgb.host, bgb.port)]
            with federation(addrs, chunk_specs=3) as (bg, front):
                with ServiceClient(bg.host, bg.port, timeout=120) as client:
                    results = []
                    for result in client.submit_iter([self.BASE],
                                                     sweep=AXES):
                        results.append(result)
                        if len(results) == 1:
                            # the whole pool goes dark: listener and
                            # its worker fleet, mid-chunk
                            wa[0].kill()
                            bga.stop()
                    assert client.last_done["failed"] == 0
                    assert not client.last_done["cancelled"]
                status = front.fed.status()
        assert payloads(results) == payloads(serial)
        # the dead pool's chunk was re-homed, not lost and not failed
        assert status["rehomed"] >= 1
        assert status["quarantined"] == 0
        dark = [
            p for p in status["pools"].values()
            if p["breaker"]["state"] != CircuitBreaker.CLOSED
        ]
        assert len(dark) == 1

    def test_front_crash_then_resume_to_parity(self, tmp_path):
        serial = execute(expand_sweep(self.BASE, AXES), backend="serial")
        journal_path = tmp_path / "federation_journal.jsonl"
        with pool() as (bga, _ca, _wa), pool() as (bgb, _cb, _wb):
            addrs = [(bga.host, bga.port), (bgb.host, bgb.port)]

            # -- phase 1: shard across both pools, then "crash" the
            #    front after a couple of completions
            front = FederatedCoordinator(
                port=0, pools=addrs, journal_path=str(journal_path),
                chunk_specs=2, **FED_KW,
            )
            crash_server = BackgroundServer(server=front).start()
            client = ServiceClient(crash_server.host, crash_server.port,
                                   timeout=60)
            pre_crash = []
            for result in client.submit_iter([self.BASE], sweep=AXES):
                pre_crash.append(result)
                if len(pre_crash) == 2:
                    break
            job_id = client.last_job
            crash_server.stop()    # federation aborts; no job-done
            client.close()

            state = JobJournal.replay(journal_path)
            job = state.jobs[job_id]
            assert not job.finished
            assert len(job.results) >= 2
            completed_hashes = job.completed_hashes()
            assert job.pending_specs()
            # pool grants joined the lease trail as assign events
            assert state.leases
            assert all(
                worker.startswith("pool:")
                for (_j, _s, worker) in state.leases
            )
            assigns_before_resume = len(state.leases)

            # -- phase 2: a fresh front over the *same* pools resumes
            #    the journal and owes only what no pool completed
            resumed = FederatedCoordinator(
                port=0, pools=addrs, journal_path=str(journal_path),
                resume=True, chunk_specs=2, **FED_KW,
            )
            with BackgroundServer(server=resumed) as bg:
                with ServiceClient(bg.host, bg.port, timeout=60) as c2:
                    merged = list(c2.stream_job(job_id))
                    assert c2.last_done["total"] == 6
                    assert c2.last_done["failed"] == 0

        # merged report identical to the uninterrupted serial sweep
        assert payloads(merged) == payloads(serial)

        # zero re-executions of front-journal-completed specs: no
        # post-resume pool grant names a hash banked before the crash
        final = JobJournal.replay(journal_path)
        assert final.resumes == 1
        assert final.jobs[job_id].finished
        post_resume = final.leases[assigns_before_resume:]
        assert post_resume
        assert not [
            spec_hash
            for (_job, spec_hash, _pool) in post_resume
            if spec_hash in completed_hashes
        ]


class TestRehomeBudget:
    """`_rehome` charging semantics, without sockets."""

    def _fed_with_item(self, max_spec_retries):
        fed = FederationPool(max_spec_retries=max_spec_retries,
                             probe_interval_s=60.0)
        peer = fed.add_pool("127.0.0.1", 1, name="px")
        sink = stdlib_queue.Queue()
        fed.submit_batch([ScenarioSpec("_fed_fast", {"n": 3})], sink)
        return fed, peer, sink

    def test_charged_rehomes_burn_the_retry_budget(self):
        fed, peer, sink = self._fed_with_item(max_spec_retries=1)
        item = fed._queue.popleft()
        fed._rehome(peer, [item], charged=True)
        assert item.requeues == 1
        assert list(fed._queue) == [item]    # still schedulable
        fed._queue.clear()
        fed._rehome(peer, [item], charged=True)
        assert not fed._queue                # budget exhausted
        kind, result = sink.get_nowait()
        assert kind == "result"
        assert "quarantined" in (result.error or "")
        assert "pools" in result.error       # names the right suspect
        assert fed.total_quarantined == 1

    def test_uncharged_rehomes_are_free(self):
        fed, peer, sink = self._fed_with_item(max_spec_retries=0)
        item = fed._queue.popleft()
        for _ in range(5):                   # drain/busy, repeatedly
            fed._rehome(peer, [item], charged=False)
            assert fed._queue.popleft() is item
        assert item.requeues == 0
        assert fed.total_quarantined == 0
        assert sink.empty()

    def test_delivered_and_abandoned_items_are_not_requeued(self):
        fed, peer, _sink = self._fed_with_item(max_spec_retries=5)
        item = fed._queue.popleft()
        item.delivered = True
        fed._rehome(peer, [item], charged=True)
        assert not fed._queue and item.requeues == 0


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestCircuitBreaker:
    def _breaker(self, threshold=3):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            backoff=Backoff(base_s=1.0, max_s=8.0, jitter=0.0),
            clock=clock,
        )
        return breaker, clock

    def test_trips_only_after_consecutive_threshold(self):
        breaker, _clock = self._breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_success()             # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_total == 1

    def test_open_grants_one_half_open_trial_after_the_delay(self):
        breaker, clock = self._breaker(threshold=1)
        breaker.record_failure()             # open, retry_at = 1.0
        assert not breaker.allow()
        clock.advance(0.99)
        assert not breaker.allow()
        clock.advance(0.01)
        assert breaker.allow()               # the trial itself
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()           # one trial is already out

    def test_failed_trial_reopens_with_a_longer_delay(self):
        breaker, clock = self._breaker(threshold=1)
        breaker.record_failure()             # attempt 0 → delay 1.0
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()             # half-open → open at once
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_total == 2
        assert breaker.retry_at == pytest.approx(clock.t + 2.0)

    def test_successful_trial_closes_and_resets_the_backoff(self):
        breaker, clock = self._breaker(threshold=1)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failures == 0
        assert breaker.backoff.attempt == 0  # ramp starts over
        # a later trip waits the *base* delay again, not the ramp
        breaker.record_failure()
        assert breaker.retry_at == pytest.approx(clock.t + 1.0)


class TestKillPoolChaos:
    def test_grammar_round_trips(self):
        monkey = ChaosMonkey.parse("seed=7,kill-pool@2")
        assert monkey.pending() == {"kill-pool": [2]}
        assert ChaosMonkey.parse(monkey.describe()).describe() == (
            monkey.describe()
        )

    def test_fires_at_the_nth_granted_lease(self):
        monkey = ChaosMonkey.parse("kill-pool@2")
        assert [monkey.fire("kill-pool") for _ in range(4)] == [
            False, True, False, False
        ]
        assert monkey.fired == [("kill-pool", 2)]

    def test_coordinator_accepts_a_chaos_monkey(self):
        monkey = ChaosMonkey.parse("kill-pool@999")
        coordinator = ClusterCoordinator(
            port=0, lease_timeout_s=LEASE_TIMEOUT_S, chaos=monkey,
        )
        assert coordinator.pool.chaos is monkey
