"""Journal compaction: snapshots, torn-snapshot tolerance, O(live) resume.

The acceptance bar: after a compaction, ``--resume`` replay folds a
number of records proportional to *live* jobs — asserted literally via
``JournalState.replayed_records`` — and a torn or missing snapshot
degrades to folding the tail journal instead of failing.
"""

import json
import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.journal import JobJournal
from repro.cluster.worker import BackgroundWorker
from repro.engine.executor import run_spec
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer


@pytest.fixture(scope="module", autouse=True)
def compaction_scenarios():
    @scenario("_cp_sq", params={"k": 1})
    def _sq(k=1):
        return {"rows": [{"k": k, "sq": k * k}], "verdict": {"ok": True}}

    yield
    unregister("_cp_sq")


def specs_for(ks):
    return [ScenarioSpec("_cp_sq", {"k": k}) for k in ks]


class TestCompaction:
    def test_compact_preserves_pending_and_banked_results(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        specs = specs_for(range(6))
        journal.record_submit("job-1", specs)
        for spec in specs[:4]:
            journal.record_lease("job-1", spec.content_hash, "w1")
            journal.record_complete("job-1", run_spec(spec))
        info = journal.compact()
        journal.close()
        assert info["generation"] == 1
        assert info["live_jobs"] == 1

        state = JobJournal.replay(tmp_path / "j.jsonl")
        assert state.from_snapshot and not state.torn_snapshot
        job = state.jobs["job-1"]
        assert len(job.results) == 4
        assert [s.content_hash for s in job.pending_specs()] == [
            s.content_hash for s in specs[4:]
        ]

    def test_replay_work_is_proportional_to_live_jobs(self, tmp_path):
        """The tentpole number: a long history folds to O(live) records."""
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        # 30 finished jobs of history plus one live job
        for n in range(1, 31):
            spec = ScenarioSpec("_cp_sq", {"k": n})
            journal.record_submit(f"job-{n}", [spec])
            journal.record_lease(f"job-{n}", spec.content_hash, "w1")
            journal.record_complete(f"job-{n}", run_spec(spec))
            journal.record_job_done(f"job-{n}", "done")
        live = specs_for([100, 101, 102])
        journal.record_submit("job-31", live)

        uncompacted = JobJournal.replay(path)
        assert uncompacted.replayed_records == 30 * 4 + 1

        journal.compact()
        journal.close()
        compacted = JobJournal.replay(path)
        # the tail holds exactly one record: the generation marker
        assert compacted.replayed_records == 1
        assert compacted.from_snapshot
        assert len(compacted.jobs["job-31"].pending_specs()) == 3

    def test_appends_after_compaction_fold_on_top_of_the_snapshot(
        self, tmp_path
    ):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        specs = specs_for(range(4))
        journal.record_submit("job-1", specs)
        journal.record_complete("job-1", run_spec(specs[0]))
        journal.compact()
        # post-compaction life continues in the tail
        journal.record_complete("job-1", run_spec(specs[1]))
        journal.record_resume()
        journal.close()

        state = JobJournal.replay(path)
        assert state.from_snapshot
        assert state.replayed_records == 3  # marker + complete + resume
        assert state.resumes == 1
        assert len(state.jobs["job-1"].results) == 2
        assert len(state.jobs["job-1"].pending_specs()) == 2

    def test_auto_compaction_triggers_on_the_record_threshold(
        self, tmp_path
    ):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, compact_every=5)
        specs = specs_for(range(8))
        journal.record_submit("job-1", specs)          # 1 record
        for spec in specs[:6]:                         # 6 more
            journal.record_complete("job-1", run_spec(spec))
        journal.close()
        assert journal.last_compaction is not None
        assert journal.snapshot_path.exists()
        state = JobJournal.replay(path)
        assert state.generation >= 1
        assert len(state.jobs["job-1"].results) == 6

    def test_torn_snapshot_falls_back_to_the_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        specs = specs_for(range(3))
        journal.record_submit("job-1", specs)
        journal.compact()
        journal.record_resume()
        journal.close()
        # corrupt the snapshot: replay must degrade, not die
        journal.snapshot_path.write_text('{"format": 1, "gener')
        state = JobJournal.replay(path)
        assert state.torn_snapshot and not state.from_snapshot
        assert state.resumes == 1          # the tail still folded
        assert state.jobs == {}            # history is gone, flagged

    def test_missing_snapshot_with_a_marker_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        journal.record_submit("job-1", specs_for([1]))
        journal.compact()
        journal.close()
        journal.snapshot_path.unlink()
        state = JobJournal.replay(path)
        assert state.torn_snapshot

    def test_stale_snapshot_generation_is_ignored(self, tmp_path):
        # crash window: snapshot renamed for generation 2 but the
        # journal swap never happened (marker still says 1) — the
        # journal is authoritative, the snapshot is not trusted
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        journal.record_submit("job-1", specs_for([1, 2]))
        journal.compact()
        journal.record_complete(
            "job-1", run_spec(ScenarioSpec("_cp_sq", {"k": 1}))
        )
        journal.close()
        snapshot = json.loads(journal.snapshot_path.read_text())
        snapshot["generation"] = 2
        snapshot["jobs"] = []              # a wrong, newer snapshot
        journal.snapshot_path.write_text(json.dumps(snapshot))
        state = JobJournal.replay(path)
        assert state.torn_snapshot         # mismatch → tail fallback
        assert not state.from_snapshot

    def test_keep_finished_caps_the_snapshot_and_floors_job_numbers(
        self, tmp_path
    ):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, keep_finished=2)
        for n in range(1, 6):
            spec = ScenarioSpec("_cp_sq", {"k": n})
            journal.record_submit(f"job-{n}", [spec])
            journal.record_complete(f"job-{n}", run_spec(spec))
            journal.record_job_done(f"job-{n}", "done")
        info = journal.compact()
        journal.close()
        assert info["dropped_finished_jobs"] == 3
        state = JobJournal.replay(path)
        assert set(state.jobs) == {"job-4", "job-5"}
        # dropping job-1..3 must never let their ids be recycled
        assert state.max_job_number() == 5
        assert state.job_number_floor == 5

    def test_second_compaction_bumps_the_generation(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        journal.record_submit("job-1", specs_for([1, 2]))
        assert journal.compact()["generation"] == 1
        journal.record_complete(
            "job-1", run_spec(ScenarioSpec("_cp_sq", {"k": 1}))
        )
        assert journal.compact()["generation"] == 2
        journal.close()
        state = JobJournal.replay(path)
        assert state.generation == 2
        assert len(state.jobs["job-1"].results) == 1


class TestResumeFromCompactedJournal:
    def test_resume_finishes_the_job_without_reexecution(self, tmp_path):
        """End-to-end acceptance: crash → compact → --resume → parity,
        with replay cost asserted at O(live) and zero re-executions."""
        path = tmp_path / "j.jsonl"
        specs = specs_for(range(6))
        journal = JobJournal(path)
        journal.record_submit("job-1", specs)
        done = []
        for spec in specs[:4]:
            journal.record_lease("job-1", spec.content_hash, "w-old")
            result = run_spec(spec)
            journal.record_complete("job-1", result)
            done.append(result)
        journal.compact()
        journal.close()

        resumed = ClusterCoordinator(
            port=0, journal_path=str(path), resume=True,
            lease_timeout_s=3.0,
        )
        with BackgroundServer(server=resumed) as bg:
            worker = BackgroundWorker(bg.host, bg.port,
                                      name="fresh").start()
            try:
                with ServiceClient(bg.host, bg.port, timeout=60) as client:
                    merged = list(client.stream_job("job-1"))
                    assert client.last_done["total"] == 6
                    assert client.last_done["failed"] == 0
                # zero re-executions of compacted-away completions
                assert worker.worker.executed == 2
            finally:
                worker.stop()

        final = JobJournal.replay(path)
        assert final.from_snapshot
        assert final.jobs["job-1"].finished
        # the audit the chaos CI smoke scripts run: nothing leased
        # after the resume marker was already complete before it
        completed_before = {r.spec_hash for r in done}
        post = final.leases_after_last_resume()
        assert post
        assert not [
            h for (_j, h, _w) in post if h in completed_before
        ]

    def test_resumed_coordinator_keeps_compacting(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        journal.record_submit("job-1", specs_for([1, 2]))
        journal.compact()
        journal.close()

        resumed = ClusterCoordinator(
            port=0, journal_path=str(path), resume=True,
            lease_timeout_s=3.0, compact_every=4,
        )
        with BackgroundServer(server=resumed) as bg:
            worker = BackgroundWorker(bg.host, bg.port, name="w").start()
            try:
                with ServiceClient(bg.host, bg.port, timeout=60) as client:
                    merged = list(client.stream_job("job-1"))
                    assert len(merged) == 2
                deadline = time.monotonic() + 5
                while (resumed.journal.last_compaction is None
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                # resume marker + 2 leases + 2 completes + job-done
                # crossed the threshold: the journal recompacted and
                # the status frame advertises it
                assert resumed.journal.last_compaction is not None
                assert resumed.journal.last_compaction["generation"] == 2
                status = resumed._cluster_status()
                assert status["last_compaction"]["generation"] == 2
            finally:
                worker.stop()
        state = JobJournal.replay(path)
        assert state.generation == 2
        assert state.jobs["job-1"].finished
