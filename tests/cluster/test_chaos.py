"""The deterministic fault-injection harness, unit and end-to-end.

Schedule semantics are pure counter machinery (no sockets), so the
unit half runs instantly.  The end-to-end half arms real in-process
workers with chaos schedules and asserts the cluster heals: a
chaos-killed worker's leases are requeued and finished elsewhere, a
chaos-dropped connection reconnects through the backoff budget.
"""

import time

import pytest

from repro.cluster.chaos import CHAOS_ENV, ChaosError, ChaosMonkey
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.worker import BackgroundWorker
from repro.engine.executor import execute
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer


class TestChaosSpecParsing:
    def test_full_spec_round_trips(self):
        spec = "seed=42,kill-worker@3,drop-conn@5,heartbeat-delay=0.05"
        monkey = ChaosMonkey.parse(spec)
        assert monkey.seed == 42
        assert monkey.pending() == {
            "kill-worker": [3], "drop-conn": [5]
        }
        assert monkey.heartbeat_delay_s == 0.05
        assert ChaosMonkey.parse(monkey.describe()).describe() == (
            monkey.describe()
        )

    def test_repeated_clauses_of_one_kind_compose(self):
        monkey = ChaosMonkey.parse(
            "skip-heartbeat@2,skip-heartbeat@3,skip-heartbeat@4"
        )
        assert monkey.pending() == {"skip-heartbeat": [2, 3, 4]}

    @pytest.mark.parametrize("bad", [
        "explode@1",              # unknown kind
        "kill-worker@0",          # counts are 1-based
        "kill-worker@soon",       # not a number
        "seed=pi",                # malformed value
        "heartbeat-delay=-1",     # negative delay
        "justwords",              # neither kind@N nor key=value
    ])
    def test_malformed_specs_raise_chaos_error(self, bad):
        with pytest.raises(ChaosError):
            ChaosMonkey.parse(bad)

    def test_from_env_reads_the_hook_variable(self):
        assert ChaosMonkey.from_env({}) is None
        monkey = ChaosMonkey.from_env({CHAOS_ENV: "kill-worker@1"})
        assert monkey.pending() == {"kill-worker": [1]}


class TestChaosFiring:
    def test_fires_exactly_once_on_the_nth_trigger(self):
        monkey = ChaosMonkey.parse("kill-worker@3")
        decisions = [monkey.fire("kill-worker") for _ in range(6)]
        assert decisions == [False, False, True, False, False, False]
        assert monkey.fired == [("kill-worker", 3)]

    def test_kinds_count_independently(self):
        monkey = ChaosMonkey.parse("kill-worker@2,drop-conn@1")
        assert monkey.fire("drop-conn") is True
        assert monkey.fire("kill-worker") is False
        assert monkey.fire("kill-worker") is True

    def test_seeded_heartbeat_delays_are_reproducible(self):
        a = ChaosMonkey.parse("seed=9,heartbeat-delay=0.5")
        b = ChaosMonkey.parse("seed=9,heartbeat-delay=0.5")
        assert [a.heartbeat_delay() for _ in range(5)] == [
            b.heartbeat_delay() for _ in range(5)
        ]
        draws = [a.heartbeat_delay() for _ in range(20)]
        assert all(0 <= d < 0.5 for d in draws)

    def test_zero_delay_without_the_clause(self):
        assert ChaosMonkey.parse("kill-worker@1").heartbeat_delay() == 0.0


@pytest.fixture(scope="module", autouse=True)
def chaos_scenarios():
    @scenario("_ch_sq", params={"n": 2})
    def _sq(n=2):
        return {"rows": [{"n": n, "sq": n * n}],
                "verdict": {"ok": True}}

    yield
    unregister("_ch_sq")


def _payloads(results):
    import json

    return sorted(
        json.dumps(r.comparable_payload(), sort_keys=True)
        for r in results
    )


class TestChaosEndToEnd:
    def test_chaos_killed_worker_is_survived_by_the_fleet(self):
        specs = [ScenarioSpec("_ch_sq", {"n": n}) for n in range(8)]
        serial = execute(specs, backend="serial")
        coordinator = ClusterCoordinator(port=0, lease_timeout_s=3.0)
        with BackgroundServer(server=coordinator) as bg:
            doomed = BackgroundWorker(
                bg.host, bg.port, name="doomed",
                chaos=ChaosMonkey.parse("seed=1,kill-worker@2"),
            ).start()
            steady = BackgroundWorker(bg.host, bg.port,
                                      name="steady").start()
            try:
                with ServiceClient(bg.host, bg.port,
                                   timeout=60) as client:
                    results = client.submit(specs)
                assert client.last_done["failed"] == 0
                assert _payloads(results) == _payloads(serial)
                # the chaos schedule actually fired, abruptly: the
                # second executed lease died unsent and was requeued
                assert doomed.worker.chaos.fired == [("kill-worker", 2)]
                deadline = time.monotonic() + 5
                while doomed.alive and time.monotonic() < deadline:
                    time.sleep(0.02)   # heartbeat thread winds down
                assert not doomed.alive
                assert coordinator.pool.total_requeued >= 1
            finally:
                steady.stop()
                doomed.stop()

    def test_chaos_dropped_connection_reconnects_and_finishes(self):
        specs = [ScenarioSpec("_ch_sq", {"n": n}) for n in range(6)]
        serial = execute(specs, backend="serial")
        coordinator = ClusterCoordinator(port=0, lease_timeout_s=3.0)
        with BackgroundServer(server=coordinator) as bg:
            flaky = BackgroundWorker(
                bg.host, bg.port, name="flaky", reconnects=3,
                reconnect_delay_s=0.05,
                chaos=ChaosMonkey.parse("seed=2,drop-conn@2"),
            ).start()
            try:
                with ServiceClient(bg.host, bg.port,
                                   timeout=60) as client:
                    results = client.submit(specs)
                assert client.last_done["failed"] == 0
                assert _payloads(results) == _payloads(serial)
                assert flaky.worker.chaos.fired == [("drop-conn", 2)]
                # same worker identity reconnected: the coordinator
                # saw (at least) two registrations
                assert coordinator.pool._worker_counter >= 2
            finally:
                flaky.stop()

    def test_suppressed_heartbeats_expire_the_leases(self):
        # silence every heartbeat: the monitor must evict the worker
        # and a healthy one must finish the job
        from repro.service import protocol

        coordinator = ClusterCoordinator(port=0, lease_timeout_s=1.0)
        with BackgroundServer(server=coordinator) as bg:
            # capacity 2 keeps one lease buffered (never executed) so
            # the silent worker holds something to expire
            @scenario("_ch_slow")
            def _slow():
                time.sleep(2.5)
                return {"rows": [{"z": 1}], "verdict": {"ok": True}}

            try:
                mute = BackgroundWorker(
                    bg.host, bg.port, name="mute", capacity=2,
                    chaos=ChaosMonkey.parse(
                        ",".join(f"skip-heartbeat@{i}"
                                 for i in range(1, 40))
                    ),
                ).start()
                live = None
                try:
                    slow = ScenarioSpec("_ch_slow")
                    fast = ScenarioSpec("_ch_sq", {"n": 3})
                    with ServiceClient(bg.host, bg.port,
                                       timeout=60) as client:
                        client.send(protocol.make_submit(
                            [slow.to_dict(), fast.to_dict()]
                        ))
                        assert client._recv_checked()["type"] == "ack"
                        # both leases must land on the silent worker
                        # before a healthy one exists to race for them
                        def inflight():
                            return sum(
                                len(w.leases)
                                for w in coordinator.pool.workers.values()
                            )

                        deadline = time.monotonic() + 5
                        while (inflight() < 2
                               and time.monotonic() < deadline):
                            time.sleep(0.02)
                        assert inflight() == 2
                        live = BackgroundWorker(bg.host, bg.port,
                                                name="live").start()
                        results = []
                        while True:
                            frame = client._recv_checked()
                            if frame["type"] == "done":
                                break
                            results.append(frame)
                    assert frame["failed"] == 0
                    assert len(results) == 2
                    assert coordinator.pool.total_requeued >= 1
                finally:
                    if live is not None:
                        live.stop()
                    mute.stop()
            finally:
                unregister("_ch_slow")
