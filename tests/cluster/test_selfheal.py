"""Poisoned-spec quarantine and graceful worker drain.

Quarantine: a spec that keeps taking workers down with it must stop
being retried and surface as a structured failure, or one landmine
spec cycles through every worker the supervisor can spawn.  Drain: a
SIGTERM'd worker finishes its in-flight spec and hands unstarted
leases straight back via the ``release`` frame instead of stranding
them until the lease timeout.
"""

import json
import socket
import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.worker import BackgroundWorker
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer


@pytest.fixture(scope="module", autouse=True)
def selfheal_scenarios():
    @scenario("_sh_sq", params={"n": 2})
    def _sq(n=2):
        return {"rows": [{"n": n, "sq": n * n}],
                "verdict": {"ok": True}}

    @scenario("_sh_slow", params={"k": 1, "delay": 0.3})
    def _slow(k=1, delay=0.3):
        time.sleep(delay)
        return {"rows": [{"k": k}], "verdict": {"ok": True}}

    yield
    for name in ("_sh_sq", "_sh_slow"):
        unregister(name)


def _doomed_worker_cycle(host, port, name):
    """Register, take one lease, vanish — the poisoned-spec signature."""
    sock = socket.create_connection((host, port), timeout=10)
    reader = sock.makefile("rb")
    sock.sendall(protocol.encode_frame(
        protocol.make_register(name, capacity=1)
    ))
    assert json.loads(reader.readline())["type"] == "registered"
    lease = json.loads(reader.readline())
    assert lease["type"] == "lease"
    sock.close()                   # dies "executing" the spec
    return lease["spec"]["params"]


class TestQuarantine:
    def test_spec_that_keeps_killing_workers_is_quarantined(self):
        coordinator = ClusterCoordinator(
            port=0, lease_timeout_s=3.0, max_spec_retries=1
        )
        with BackgroundServer(server=coordinator) as bg:
            spec = ScenarioSpec("_sh_sq", {"n": 13})
            with ServiceClient(bg.host, bg.port, timeout=60) as client:
                client.send(protocol.make_submit([spec.to_dict()]))
                assert client._recv_checked()["type"] == "ack"
                # two involuntary losses: the first requeues
                # (retry 1 <= budget), the second quarantines
                for attempt in range(2):
                    _doomed_worker_cycle(bg.host, bg.port,
                                         f"doomed-{attempt}")
                frames = []
                while True:
                    frame = client._recv_checked()
                    if frame["type"] == "done":
                        break
                    frames.append(frame)
                assert frame["failed"] == 1
            assert len(frames) == 1
            result = frames[0]["result"]
            assert result["status"] == "error"
            assert "quarantined" in result["error"]
            assert result["spec_hash"] == spec.content_hash
            status = coordinator.cluster_status()
            assert status["quarantined"] == 1
        # no live worker ever existed: the job finished anyway

    def test_graceful_release_does_not_burn_the_retry_budget(self):
        # a drain hand-off is not the spec's fault: release twice with
        # a budget of one and the spec must still execute fine
        coordinator = ClusterCoordinator(
            port=0, lease_timeout_s=3.0, max_spec_retries=1
        )
        with BackgroundServer(server=coordinator) as bg:
            spec = ScenarioSpec("_sh_sq", {"n": 4})
            with ServiceClient(bg.host, bg.port, timeout=60) as client:
                client.send(protocol.make_submit([spec.to_dict()]))
                assert client._recv_checked()["type"] == "ack"
                for attempt in range(2):
                    sock = socket.create_connection((bg.host, bg.port),
                                                    timeout=10)
                    reader = sock.makefile("rb")
                    sock.sendall(protocol.encode_frame(
                        protocol.make_register(f"polite-{attempt}",
                                               capacity=1)
                    ))
                    worker_id = json.loads(reader.readline())["worker"]
                    lease = json.loads(reader.readline())
                    sock.sendall(protocol.encode_frame(
                        protocol.make_release([lease["lease"]],
                                              worker_id)
                    ))
                    assert json.loads(reader.readline())["type"] == "ack"
                    sock.close()
                finisher = BackgroundWorker(bg.host, bg.port,
                                            name="finisher").start()
                try:
                    frames = []
                    while True:
                        frame = client._recv_checked()
                        if frame["type"] == "done":
                            break
                        frames.append(frame)
                    assert frame["failed"] == 0
                    assert frames[0]["result"]["status"] == "ok"
                finally:
                    finisher.stop()
            assert coordinator.pool.total_released == 2
            assert coordinator.pool.total_quarantined == 0


class TestGracefulDrain:
    def test_drained_worker_releases_buffered_leases(self):
        specs = [
            ScenarioSpec("_sh_slow", {"k": k, "delay": 0.4})
            for k in range(1, 5)
        ]
        coordinator = ClusterCoordinator(port=0, lease_timeout_s=30.0)
        with BackgroundServer(server=coordinator) as bg:
            # capacity 3: one executing, two buffered client-side
            leaver = BackgroundWorker(bg.host, bg.port, name="leaver",
                                      capacity=3).start()
            try:
                with ServiceClient(bg.host, bg.port,
                                   timeout=60) as client:
                    results = []
                    iterator = client.submit_iter(specs)
                    results.append(next(iterator))
                    # the worker is now mid-spec #2 with more buffered;
                    # drain it and bring a successor for the rest
                    leaver.drain()
                    successor = BackgroundWorker(bg.host, bg.port,
                                                 name="successor").start()
                    try:
                        results.extend(iterator)
                    finally:
                        successor.stop()
                    assert client.last_done["failed"] == 0
                assert len(results) == 4
                # the drain actually handed leases back — the lease
                # timeout (30s, longer than this test) never fired
                assert coordinator.pool.total_released >= 1
                assert leaver.worker.released >= 1
                assert not leaver.alive
                # and the successor, not a timeout-requeue, ran them
                assert successor.worker.executed >= 1
                assert coordinator.pool.total_requeued == 0
            finally:
                leaver.stop()

    def test_drain_with_nothing_leased_just_exits(self):
        coordinator = ClusterCoordinator(port=0, lease_timeout_s=5.0)
        with BackgroundServer(server=coordinator) as bg:
            idler = BackgroundWorker(bg.host, bg.port,
                                     name="idler").start()
            deadline = time.monotonic() + 5
            while (not coordinator.pool.workers
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            idler.drain()
            assert not idler.alive
            assert idler.worker.released == 0
