"""Journal round-trips: fold a log back into exactly the state written."""

import json

from repro.cluster.journal import JobJournal
from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec


def _result_for(spec, **overrides):
    fields = dict(
        name=spec.name,
        spec_hash=spec.content_hash,
        params=spec.params_dict(),
        verdict={"ok": True},
        rows=[{"a": 1}],
    )
    fields.update(overrides)
    return ScenarioResult(**fields)


def _specs(n):
    return [ScenarioSpec("_j", {"i": i}) for i in range(n)]


class TestRoundTrip:
    def test_submit_complete_done_fold_back(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        specs = _specs(3)
        journal.record_submit("job-1", specs)
        journal.record_lease("job-1", specs[0].content_hash, "w1")
        journal.record_complete("job-1", _result_for(specs[0]))
        journal.close()

        state = JobJournal.replay(path)
        job = state.jobs["job-1"]
        assert not job.finished
        assert [s.content_hash for s in job.specs] == [
            s.content_hash for s in specs
        ]
        assert job.completed_hashes() == {specs[0].content_hash}
        assert [s.content_hash for s in job.pending_specs()] == [
            s.content_hash for s in specs[1:]
        ]
        assert state.leases == [
            ("job-1", specs[0].content_hash, "w1")
        ]

    def test_job_done_marks_finished(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        specs = _specs(1)
        journal.record_submit("job-1", specs)
        journal.record_complete("job-1", _result_for(specs[0]))
        journal.record_job_done("job-1", "done")
        journal.close()
        state = JobJournal.replay(path)
        assert state.jobs["job-1"].finished
        assert state.unfinished() == []

    def test_results_replay_in_completion_order(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        specs = _specs(3)
        journal.record_submit("job-1", specs)
        for spec in (specs[2], specs[0], specs[1]):
            journal.record_complete("job-1", _result_for(spec))
        journal.close()
        job = JobJournal.replay(path).jobs["job-1"]
        assert [r.spec_hash for r in job.results] == [
            specs[2].content_hash,
            specs[0].content_hash,
            specs[1].content_hash,
        ]

    def test_duplicate_completions_are_idempotent(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        specs = _specs(1)
        journal.record_submit("job-1", specs)
        journal.record_complete("job-1", _result_for(specs[0]))
        journal.record_complete("job-1", _result_for(specs[0]))
        journal.close()
        job = JobJournal.replay(path).jobs["job-1"]
        assert len(job.results) == 1
        assert job.pending_specs() == []

    def test_max_job_number_and_resume_marker(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.record_submit("job-2", _specs(1))
        journal.record_submit("job-7", _specs(1))
        journal.record_resume()
        journal.close()
        state = JobJournal.replay(path)
        assert state.max_job_number() == 7
        assert state.resumes == 1


class TestCrashTolerance:
    def test_missing_file_is_empty_state(self, tmp_path):
        state = JobJournal.replay(tmp_path / "nonexistent.jsonl")
        assert state.jobs == {} and state.resumes == 0

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        specs = _specs(2)
        journal.record_submit("job-1", specs)
        journal.record_complete("job-1", _result_for(specs[0]))
        journal.close()
        with path.open("a") as fh:
            fh.write('{"e": "complete", "job": "job-1", "resu')  # crash
        state = JobJournal.replay(path)
        assert state.dropped_lines == 1
        job = state.jobs["job-1"]
        assert len(job.results) == 1
        assert len(job.pending_specs()) == 1

    def test_corrupt_middle_line_does_not_poison_recovery(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        specs = _specs(1)
        journal.record_submit("job-1", specs)
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(0, "garbage not json")
        lines.insert(1, json.dumps({"no-e-key": True}))
        path.write_text("\n".join(lines) + "\n")
        journal = JobJournal(path)
        journal.record_complete("job-1", _result_for(specs[0]))
        journal.close()
        state = JobJournal.replay(path)
        assert state.dropped_lines == 2
        assert state.jobs["job-1"].pending_specs() == []

    def test_events_for_unjournaled_jobs_are_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.record_complete("job-9", _result_for(_specs(1)[0]))
        journal.record_job_done("job-9", "done")
        journal.close()
        state = JobJournal.replay(path)
        assert state.jobs == {}

    def test_appends_survive_reopen(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs(2)
        journal = JobJournal(path)
        journal.record_submit("job-1", specs)
        journal.close()
        journal = JobJournal(path)  # a restarted coordinator appends
        journal.record_complete("job-1", _result_for(specs[1]))
        journal.close()
        job = JobJournal.replay(path).jobs["job-1"]
        assert job.completed_hashes() == {specs[1].content_hash}
