"""Unit tests for the memory models (experiment E17)."""

import pytest

from repro.memory.hierarchy import AccessProfile, MemoryHierarchy, MemoryLevel
from repro.memory.technology import (
    EDRAM,
    EFLASH,
    ESRAM,
    EXTERNAL_DRAM,
    MEMORY_TECHNOLOGIES,
)
from repro.memory.tradeoff import (
    architecture_tradeoff,
    best_architecture,
    tradeoff_sweep,
)


class TestTechnologies:
    def test_esram_fastest_on_chip(self):
        assert ESRAM.read_latency_cycles < EDRAM.read_latency_cycles
        assert ESRAM.read_latency_cycles < EFLASH.read_latency_cycles

    def test_edram_denser_than_sram(self):
        """The density advantage that justifies eDRAM integration."""
        assert EDRAM.area_mm2_per_mb < ESRAM.area_mm2_per_mb / 2

    def test_external_cheapest_per_mb(self):
        assert EXTERNAL_DRAM.cost_usd_per_mb == min(
            t.cost_usd_per_mb for t in MEMORY_TECHNOLOGIES.values()
        )

    def test_external_pays_pin_crossing(self):
        assert EXTERNAL_DRAM.read_latency_cycles > 5 * EDRAM.read_latency_cycles
        assert (
            EXTERNAL_DRAM.energy_pj_per_byte_read
            > 5 * EDRAM.energy_pj_per_byte_read
        )

    def test_eflash_nonvolatile_slow_writes(self):
        assert EFLASH.non_volatile
        assert EFLASH.write_latency_cycles > 100 * EFLASH.read_latency_cycles
        assert EFLASH.endurance_writes < float("inf")

    def test_access_energy_scales_with_bytes(self):
        assert ESRAM.access_energy_pj(64) == pytest.approx(
            8 * ESRAM.access_energy_pj(8)
        )

    def test_access_energy_validation(self):
        with pytest.raises(ValueError):
            ESRAM.access_energy_pj(-1)


class TestHierarchy:
    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MemoryLevel(ESRAM, 0.0)

    def test_hit_distribution_sums_to_one(self):
        hierarchy = MemoryHierarchy(
            [MemoryLevel(ESRAM, 0.5), MemoryLevel(EXTERNAL_DRAM, 64.0)]
        )
        profile = AccessProfile(working_set_mb=8.0)
        assert sum(hierarchy.hit_distribution(profile)) == pytest.approx(1.0)

    def test_bigger_scratchpad_more_hits(self):
        profile = AccessProfile(working_set_mb=4.0)
        small = MemoryHierarchy(
            [MemoryLevel(ESRAM, 0.25), MemoryLevel(EXTERNAL_DRAM, 64.0)]
        )
        big = MemoryHierarchy(
            [MemoryLevel(ESRAM, 2.0), MemoryLevel(EXTERNAL_DRAM, 64.0)]
        )
        assert big.hit_distribution(profile)[0] > small.hit_distribution(profile)[0]

    def test_average_latency_between_extremes(self):
        hierarchy = MemoryHierarchy(
            [MemoryLevel(ESRAM, 1.0), MemoryLevel(EXTERNAL_DRAM, 64.0)]
        )
        profile = AccessProfile(working_set_mb=8.0)
        latency = hierarchy.average_latency_cycles(profile)
        assert ESRAM.read_latency_cycles < latency < EXTERNAL_DRAM.read_latency_cycles

    def test_backstop_must_fit_working_set(self):
        hierarchy = MemoryHierarchy([MemoryLevel(ESRAM, 1.0)])
        profile = AccessProfile(working_set_mb=8.0)
        with pytest.raises(ValueError, match="backstop"):
            hierarchy.average_latency_cycles(profile)

    def test_power_has_static_and_dynamic_parts(self):
        hierarchy = MemoryHierarchy(
            [MemoryLevel(ESRAM, 1.0), MemoryLevel(EXTERNAL_DRAM, 64.0)]
        )
        profile = AccessProfile(working_set_mb=8.0)
        total = hierarchy.total_power_mw(profile)
        assert total > hierarchy.static_power_mw()

    def test_area_only_counts_levels(self):
        hierarchy = MemoryHierarchy([MemoryLevel(ESRAM, 2.0)])
        assert hierarchy.on_chip_area_mm2() == pytest.approx(
            2.0 * ESRAM.area_mm2_per_mb
        )

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            AccessProfile(working_set_mb=0.0)
        with pytest.raises(ValueError):
            AccessProfile(working_set_mb=1.0, write_fraction=1.5)
        with pytest.raises(ValueError):
            AccessProfile(working_set_mb=1.0, locality=-0.1)


class TestTradeoff:
    def test_small_working_set_prefers_esram(self):
        assert best_architecture(0.0625).architecture == "all_esram"

    def test_large_working_set_needs_external(self):
        assert "external" in best_architecture(64.0).architecture

    def test_middle_band_uses_edram(self):
        """The eDRAM integration window the paper's Section 3 weighs."""
        winners = {best_architecture(ws).architecture for ws in (2.0, 4.0, 8.0)}
        assert any("edram" in w for w in winners)

    def test_all_candidates_evaluated(self):
        points = architecture_tradeoff(4.0)
        assert {p.architecture for p in points} == {
            "all_esram",
            "esram_edram",
            "esram_external",
            "esram_edram_external",
        }

    def test_sweep_regime_progression(self):
        sweep = tradeoff_sweep([0.0625, 1.0, 16.0, 64.0])
        # latency of the winner grows as the working set outgrows the die.
        latencies = [p.avg_latency_cycles for p in sweep]
        assert latencies[0] < latencies[-1]

    def test_score_weighting_changes_winner(self):
        """Power-focused vs latency-focused designs pick differently at
        some working set."""
        differs = False
        for ws in (1.0, 4.0, 16.0):
            latency_first = best_architecture(ws, latency_weight=3.0,
                                              power_weight=0.1,
                                              area_weight=0.1, cost_weight=0.1)
            cost_first = best_architecture(ws, latency_weight=0.1,
                                           power_weight=0.1,
                                           area_weight=1.0, cost_weight=3.0)
            if latency_first.architecture != cost_first.architecture:
                differs = True
        assert differs
