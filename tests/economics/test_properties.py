"""Property-based tests for the economics models."""

from hypothesis import given, strategies as st

from repro.economics.breakeven import profit_per_unit, required_volume_for_nre
from repro.economics.alternatives import (
    STANDARD_ALTERNATIVES,
    ImplementationChoice,
    total_cost,
)
from repro.economics.complexity import hw_complexity, sw_complexity
from repro.technology.node import node


@given(
    nre=st.floats(min_value=0.0, max_value=1e9),
    price=st.floats(min_value=0.01, max_value=1e4),
    margin=st.floats(min_value=0.01, max_value=1.0),
)
def test_breakeven_volume_covers_nre(nre, price, margin):
    """Selling the break-even volume always recovers the NRE, and one
    unit fewer never does."""
    volume = required_volume_for_nre(nre, price, margin)
    per_unit = profit_per_unit(price, margin)
    assert volume * per_unit >= nre - 1e-6
    if volume > 0:
        assert (volume - 1) * per_unit < nre + per_unit


@given(
    volume_low=st.integers(min_value=0, max_value=10**7),
    delta=st.integers(min_value=1, max_value=10**6),
)
def test_total_cost_monotone_in_volume_for_all_alternatives(volume_low, delta):
    for alternative in STANDARD_ALTERNATIVES.values():
        low = total_cost(alternative, "130nm", volume_low)
        high = total_cost(alternative, "130nm", volume_low + delta)
        assert high >= low


@given(volume=st.integers(min_value=1, max_value=10**8))
def test_fpga_cheapest_nre_asic_cheapest_unit(volume):
    """At any volume the FPGA pays less NRE and the ASIC less silicon —
    the continuum's defining invariant."""
    fpga = STANDARD_ALTERNATIVES[ImplementationChoice.FPGA]
    asic = STANDARD_ALTERNATIVES[ImplementationChoice.ASIC]
    fpga_total = total_cost(fpga, "130nm", volume)
    asic_total = total_cost(asic, "130nm", volume)
    p130 = node("130nm")
    assert fpga.nre(p130, 50e6) < asic.nre(p130, 50e6)
    assert fpga.unit(p130, 80.0) > asic.unit(p130, 80.0)
    assert fpga_total > 0 and asic_total > 0


@given(year=st.floats(min_value=1997.0, max_value=2015.0))
def test_sw_complexity_dominates_hw_after_reference(year):
    assert sw_complexity(year) >= hw_complexity(year) - 1e-9
