"""Unit tests for NRE models (experiments E1, E3)."""

import pytest

from repro.economics.nre import (
    DesignTeamModel,
    amortized_nre_per_unit,
    design_nre_usd,
    mask_nre_growth_per_generation,
    mask_nre_series,
    mask_nre_usd,
    total_nre_usd,
)
from repro.technology.node import node


class TestMaskNre:
    def test_lookup_by_label_and_object(self):
        assert mask_nre_usd("90nm") == mask_nre_usd(node("90nm"))

    def test_paper_x10_in_3_generations(self):
        """Section 1: x10 in about three generations."""
        growth = mask_nre_growth_per_generation("350nm", "90nm")
        assert growth ** 3 == pytest.approx(10.0, rel=0.15)

    def test_90nm_exceeds_1M(self):
        assert mask_nre_usd("90nm") > 1e6

    def test_series_monotone(self):
        costs = [cost for _n, cost in mask_nre_series()]
        assert costs == sorted(costs)

    def test_growth_requires_two_nodes(self):
        with pytest.raises(ValueError):
            mask_nre_growth_per_generation("90nm", "90nm")


class TestDesignNre:
    def test_130nm_100M_in_paper_band(self):
        """Section 1: $10M-$100M for complex 0.13um designs."""
        nre = design_nre_usd("130nm", 100e6)
        assert 10e6 <= nre <= 100e6

    def test_more_transistors_cost_more(self):
        assert design_nre_usd("130nm", 200e6) > design_nre_usd("130nm", 50e6)

    def test_reuse_cuts_cost(self):
        fresh = design_nre_usd("130nm", 100e6, reuse_fraction=0.0)
        reused = design_nre_usd("130nm", 100e6, reuse_fraction=0.8)
        assert reused < fresh / 2

    def test_reuse_validation(self):
        with pytest.raises(ValueError):
            design_nre_usd("130nm", 1e6, reuse_fraction=1.2)

    def test_team_model_productivity_validation(self):
        with pytest.raises(ValueError):
            DesignTeamModel().design_nre(1e6, 0.0)

    def test_team_model_overheads_multiply(self):
        team = DesignTeamModel(
            loaded_cost_per_man_year_usd=200_000,
            verification_overhead=1.0,
            eda_ip_overhead=0.5,
        )
        # 10 man-years base -> x2 verification -> x1.5 tooling.
        assert team.design_nre(1e6, 1e5) == pytest.approx(
            10 * 200_000 * 2.0 * 1.5
        )


class TestTotalNre:
    def test_includes_respins(self):
        base = total_nre_usd("90nm", 50e6, respins=0)
        with_respin = total_nre_usd("90nm", 50e6, respins=1)
        assert with_respin - base == pytest.approx(mask_nre_usd("90nm"))

    def test_respin_validation(self):
        with pytest.raises(ValueError):
            total_nre_usd("90nm", 50e6, respins=-1)


class TestAmortization:
    def test_per_unit_share(self):
        assert amortized_nre_per_unit(1e6, 1000) == pytest.approx(1000.0)

    def test_volume_validation(self):
        with pytest.raises(ValueError):
            amortized_nre_per_unit(1e6, 0)
