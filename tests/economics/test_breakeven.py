"""Unit tests for break-even analysis (experiments E2, E3)."""

import pytest

from repro.economics.breakeven import (
    BreakEven,
    break_even_volume,
    platform_amortization,
    profit_per_unit,
    required_volume_for_nre,
)


class TestProfitPerUnit:
    def test_paper_example(self):
        """$5 price at 20% margin -> $1/unit."""
        assert profit_per_unit(5.0, 0.20) == pytest.approx(1.0)

    def test_price_validation(self):
        with pytest.raises(ValueError):
            profit_per_unit(0.0, 0.2)

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            profit_per_unit(5.0, 0.0)
        with pytest.raises(ValueError):
            profit_per_unit(5.0, 1.5)


class TestRequiredVolume:
    def test_exact_division(self):
        assert required_volume_for_nre(1_000_000, 5.0, 0.20) == 1_000_000

    def test_rounds_up(self):
        assert required_volume_for_nre(10.5, 5.0, 0.20) == 11

    def test_negative_nre_rejected(self):
        with pytest.raises(ValueError):
            required_volume_for_nre(-1.0, 5.0, 0.2)


class TestPaperClaims:
    def test_e2_mask_only_over_1M_units_at_90nm(self):
        """Section 1: 'selling over one million chips simply to pay for
        the mask set NRE'."""
        volume = break_even_volume(
            "90nm", price_usd=5.0, margin=0.20, include_design=False
        )
        assert volume > 1_000_000

    def test_e3_total_volume_in_10_100M_band_at_130nm(self):
        """Section 1: 'volumes of 10 to 100 million chips to break even'."""
        analysis = BreakEven.analyze("130nm", transistors=100e6)
        assert 10_000_000 <= analysis.total_volume <= 100_000_000

    def test_break_even_grows_with_scaling(self):
        volumes = [
            break_even_volume(n, include_design=False)
            for n in ("180nm", "130nm", "90nm", "65nm")
        ]
        assert volumes == sorted(volumes)

    def test_higher_price_lower_volume(self):
        cheap = break_even_volume("90nm", price_usd=5.0)
        expensive = break_even_volume("90nm", price_usd=50.0)
        assert expensive < cheap

    def test_as_row_roundtrip(self):
        analysis = BreakEven.analyze("90nm")
        row = analysis.as_row()
        assert row["node"] == "90nm"
        assert row["mask_only_volume"] == analysis.mask_only_volume


class TestPlatformAmortization:
    def test_paper_platform_argument(self):
        """Amortizing over many variants slashes NRE per product."""
        result = platform_amortization(50e6, variants=10)
        assert result["nre_per_product"] < 50e6 / 4
        assert result["saving_vs_independent"] > 0.7

    def test_single_variant_no_saving(self):
        result = platform_amortization(50e6, variants=1)
        assert result["nre_per_product"] == pytest.approx(50e6)
        assert result["saving_vs_independent"] == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            platform_amortization(1e6, variants=0)
        with pytest.raises(ValueError):
            platform_amortization(1e6, variants=2, derivative_cost_fraction=2.0)
