"""Unit tests for complexity growth and productivity (E4, E6, E7)."""

import pytest

from repro.economics.complexity import (
    REFERENCE_YEAR,
    complexity_table,
    hw_complexity,
    risc_equivalents,
    risc_equivalents_at_node,
    sw_complexity,
    sw_effort,
    sw_overtakes_hw_year,
)
from repro.economics.productivity import (
    design_productivity,
    productivity_gap,
    productivity_peak_node,
    productivity_series,
    team_size_for_design,
)
from repro.technology.node import node


class TestComplexityGrowth:
    def test_reference_year_normalized(self):
        assert hw_complexity(REFERENCE_YEAR) == pytest.approx(1.0)
        assert sw_complexity(REFERENCE_YEAR) == pytest.approx(1.0)

    def test_hw_growth_56pct(self):
        assert hw_complexity(REFERENCE_YEAR + 1) == pytest.approx(1.56)

    def test_sw_growth_140pct(self):
        assert sw_complexity(REFERENCE_YEAR + 1) == pytest.approx(2.40)

    def test_sw_outpaces_hw(self):
        year = REFERENCE_YEAR + 5
        assert sw_complexity(year) > hw_complexity(year)

    def test_sw_overtakes_hw_before_paper(self):
        """Section 6: 'in many leading SoCs today [2003], the embedded
        S/W development effort has surpassed that of the H/W design
        effort' — the crossover must be <= 2003."""
        assert sw_overtakes_hw_year() <= 2003.0

    def test_sw_effort_minority_at_reference(self):
        assert sw_effort(REFERENCE_YEAR) < 0.5

    def test_complexity_table_rows(self):
        rows = complexity_table(1997, 2003)
        assert len(rows) == 7
        assert rows[0]["year"] == 1997
        assert rows[-1]["sw_over_hw_effort"] > 1.0


class TestRiscEquivalents:
    def test_paper_1000_cores_claim(self):
        """Section 1: 100M transistors ~= >1000 32-bit RISC cores."""
        assert risc_equivalents(100e6) >= 1000

    def test_at_node(self):
        assert risc_equivalents_at_node("130nm", 150.0) > 1000

    def test_core_size_validation(self):
        with pytest.raises(ValueError):
            risc_equivalents(1e6, core_transistors=0)


class TestProductivity:
    def test_peak_at_130nm(self):
        """Section 2: productivity declines 'for 90nm technologies and
        beyond'."""
        assert productivity_peak_node() == "130nm"

    def test_decline_below_90nm(self):
        series = dict(productivity_series())
        assert series["65nm"] < series["90nm"]
        assert series["50nm"] < series["65nm"]
        assert series["45nm"] < series["50nm"]

    def test_growth_up_to_130nm(self):
        series = dict(productivity_series())
        assert series["350nm"] < series["250nm"] < series["180nm"] < series["130nm"]

    def test_design_productivity_by_label_or_node(self):
        assert design_productivity("90nm") == design_productivity(node("90nm"))

    def test_team_size_reasonable_for_big_soc(self):
        """A 100M-transistor 130nm SoC should need a large (tens to
        hundreds of engineers) but not absurd team."""
        team = team_size_for_design("130nm", 100e6, schedule_years=2.0)
        assert 20 < team < 500

    def test_team_size_validation(self):
        with pytest.raises(ValueError):
            team_size_for_design("130nm", 1e6, schedule_years=0.0)
        with pytest.raises(ValueError):
            team_size_for_design("130nm", 1e6, reuse_fraction=-0.1)

    def test_design_gap_widens(self):
        """The motivation for platforms: silicon capacity outruns design
        capacity."""
        assert productivity_gap("45nm") > productivity_gap("180nm")
