"""Unit tests for software licensing vs silicon cost."""

import pytest

from repro.economics.licensing import (
    CONSUMER_MULTIMEDIA_STACK,
    LicenseItem,
    LicenseStack,
    license_vs_silicon,
)


class TestLicenseStack:
    def test_per_unit_sums_items(self):
        stack = LicenseStack(
            "s", (LicenseItem("a", 1.0), LicenseItem("b", 2.5))
        )
        assert stack.per_unit_usd == pytest.approx(3.5)

    def test_negative_royalty_rejected(self):
        with pytest.raises(ValueError):
            LicenseItem("bad", -1.0)

    def test_breakdown(self):
        breakdown = CONSUMER_MULTIMEDIA_STACK.breakdown()
        assert "mpeg_video_codec" in breakdown
        assert sum(breakdown.values()) == pytest.approx(
            CONSUMER_MULTIMEDIA_STACK.per_unit_usd
        )


class TestLicenseVsSilicon:
    def test_paper_claim_licenses_exceed_silicon(self):
        """Section 6: license/royalty cost 'largely exceeds the chip
        manufacturing cost' for consumer multimedia."""
        result = license_vs_silicon("130nm", die_area_mm2=60.0)
        assert result["license_over_silicon"] > 1.0

    def test_ratio_grows_as_silicon_shrinks(self):
        """Scaling makes the same function cheaper in silicon while
        licenses stay flat — the ratio worsens."""
        at_130 = license_vs_silicon("130nm", die_area_mm2=60.0)
        at_90 = license_vs_silicon("90nm", die_area_mm2=30.0)
        assert at_90["license_over_silicon"] > at_130["license_over_silicon"]

    def test_components_consistent(self):
        result = license_vs_silicon("130nm")
        assert result["license_over_silicon"] == pytest.approx(
            result["license_cost_usd"] / result["silicon_cost_usd"]
        )
