"""Unit tests for the implementation-alternatives continuum (E5, E12)."""

import math

import pytest

from repro.economics.alternatives import (
    STANDARD_ALTERNATIVES,
    ImplementationChoice,
    best_alternative,
    crossover_volume,
    efpga_partition_cost,
    total_cost,
    unit_cost,
)


def alt(choice):
    return STANDARD_ALTERNATIVES[choice]


class TestContinuumShape:
    def test_fpga_has_no_mask_nre(self):
        assert alt(ImplementationChoice.FPGA).mask_nre_factor == 0.0

    def test_fpga_10x_unit_penalty(self):
        """Sections 1/6.3: FPGA's ~10x cost and power penalty."""
        fpga = alt(ImplementationChoice.FPGA)
        assert fpga.unit_cost_factor == pytest.approx(10.0)
        assert fpga.power_factor == pytest.approx(10.0)

    def test_flexibility_orders_opposite_to_unit_cost_extremes(self):
        fpga = alt(ImplementationChoice.FPGA)
        asic = alt(ImplementationChoice.ASIC)
        assert fpga.flexibility > asic.flexibility
        assert fpga.unit_cost_factor > asic.unit_cost_factor

    def test_structured_array_between_asic_and_fpga(self):
        """'Gate-array style fabric and top metal-level configuration
        will provide an intermediate point on the NRE-flexibility
        continuum.'"""
        sa = alt(ImplementationChoice.STRUCTURED_ARRAY)
        asic = alt(ImplementationChoice.ASIC)
        fpga = alt(ImplementationChoice.FPGA)
        assert asic.mask_nre_factor > sa.mask_nre_factor > fpga.mask_nre_factor
        assert asic.unit_cost_factor < sa.unit_cost_factor < fpga.unit_cost_factor


class TestVolumeRegions:
    def test_fpga_wins_low_volume(self):
        choice, _cost = best_alternative("130nm", 2_000)
        assert choice is ImplementationChoice.FPGA

    def test_asic_wins_high_volume(self):
        choice, _cost = best_alternative("130nm", 20_000_000)
        assert choice is ImplementationChoice.ASIC

    def test_middle_band_not_asic_not_fpga(self):
        choice, _cost = best_alternative("130nm", 200_000)
        assert choice not in (ImplementationChoice.ASIC, ImplementationChoice.FPGA)

    def test_total_cost_monotone_in_volume(self):
        asic = alt(ImplementationChoice.ASIC)
        costs = [total_cost(asic, "130nm", v) for v in (0, 1000, 100000)]
        assert costs == sorted(costs)

    def test_volume_validation(self):
        with pytest.raises(ValueError):
            total_cost(alt(ImplementationChoice.ASIC), "130nm", -1)


class TestCrossover:
    def test_fpga_to_asic_crossover_exists(self):
        volume = crossover_volume(
            alt(ImplementationChoice.FPGA),
            alt(ImplementationChoice.ASIC),
            "130nm",
        )
        assert 0 < volume < float("inf")

    def test_crossover_consistent_with_best_alternative(self):
        fpga = alt(ImplementationChoice.FPGA)
        asic = alt(ImplementationChoice.ASIC)
        volume = crossover_volume(fpga, asic, "130nm")
        below = total_cost(fpga, "130nm", int(volume * 0.5))
        below_asic = total_cost(asic, "130nm", int(volume * 0.5))
        above = total_cost(fpga, "130nm", int(volume * 2))
        above_asic = total_cost(asic, "130nm", int(volume * 2))
        assert below < below_asic
        assert above > above_asic

    def test_no_crossover_when_unit_cost_not_lower(self):
        volume = crossover_volume(
            alt(ImplementationChoice.ASIC),
            alt(ImplementationChoice.FPGA),
            "130nm",
        )
        assert math.isinf(volume)


class TestEfpgaPartition:
    def test_zero_share_is_baseline(self):
        result = efpga_partition_cost("130nm", 1e6, 0.0)
        assert result["overhead_ratio"] == pytest.approx(1.0)

    def test_full_share_is_10x(self):
        result = efpga_partition_cost("130nm", 1e6, 1.0)
        assert result["overhead_ratio"] == pytest.approx(10.0)

    def test_5pct_share_modest_overhead(self):
        """The paper's <5% guidance keeps overhead mild."""
        result = efpga_partition_cost("130nm", 1e6, 0.05)
        assert result["overhead_ratio"] == pytest.approx(1.45)

    def test_area_share_exceeds_function_share(self):
        """5% of functionality occupies ~32% of area at 10x penalty —
        why the paper bounds eFPGA scope."""
        result = efpga_partition_cost("130nm", 1e6, 0.05)
        assert result["area_share_efpga"] > 0.3

    def test_share_validation(self):
        with pytest.raises(ValueError):
            efpga_partition_cost("130nm", 1e6, 1.5)

    def test_unit_cost_uses_factor(self):
        fpga = alt(ImplementationChoice.FPGA)
        asic = alt(ImplementationChoice.ASIC)
        assert unit_cost(fpga, "130nm") == pytest.approx(
            10 * unit_cost(asic, "130nm")
        )
