"""Unit tests for the reconfigurable processor (Section 8's 1-GOPS IC)."""

import pytest

from repro.processors.efpga import EfpgaFabric
from repro.processors.reconfigurable import (
    STANDARD_EXTENSIONS,
    CustomInstruction,
    ExtendedAssembler,
    ReconfigurableCpu,
    gops_estimate,
    run_extended,
)
from repro.processors.risc import RiscError


class TestExtendedAssembler:
    def test_xop_parsed(self):
        program = ExtendedAssembler().assemble("xop0 r1, r2, r3\nhalt")
        assert program[0].op == "xop0"
        assert (program[0].rd, program[0].ra, program[0].rb) == (1, 2, 3)

    def test_slot_range_checked(self):
        with pytest.raises(RiscError, match="slot"):
            ExtendedAssembler().assemble("xop9 r1, r2, r3\nhalt")

    def test_base_isa_still_works(self):
        program = ExtendedAssembler().assemble("add r1, r2, r3\nhalt")
        assert program[0].op == "add"

    def test_arity_checked(self):
        with pytest.raises(RiscError):
            ExtendedAssembler().assemble("xop0 r1, r2\nhalt")


class TestConfiguration:
    def test_configure_claims_fabric(self):
        fabric = EfpgaFabric(luts=4_000)
        cpu = ReconfigurableCpu(
            program=ExtendedAssembler().assemble("halt"), fabric=fabric
        )
        cpu.configure(0, STANDARD_EXTENSIONS["mac16"])
        assert fabric.luts_used > 0
        assert cpu.configured_extensions() == {0: "mac16"}

    def test_fabric_capacity_limits_extensions(self):
        fabric = EfpgaFabric(luts=500)  # too small for mac16's 9000 gates
        cpu = ReconfigurableCpu(
            program=ExtendedAssembler().assemble("halt"), fabric=fabric
        )
        with pytest.raises(ValueError, match="LUT"):
            cpu.configure(0, STANDARD_EXTENSIONS["mac16"])

    def test_double_configure_rejected(self):
        cpu = ReconfigurableCpu(program=ExtendedAssembler().assemble("halt"))
        cpu.configure(0, STANDARD_EXTENSIONS["bitrev8"])
        with pytest.raises(RiscError, match="already"):
            cpu.configure(0, STANDARD_EXTENSIONS["mac16"])

    def test_unconfigure_frees_fabric(self):
        fabric = EfpgaFabric(luts=4_000)
        cpu = ReconfigurableCpu(
            program=ExtendedAssembler().assemble("halt"), fabric=fabric
        )
        cpu.configure(0, STANDARD_EXTENSIONS["mac16"])
        cpu.unconfigure(0)
        assert fabric.luts_used == 0
        with pytest.raises(RiscError):
            cpu.unconfigure(0)

    def test_runtime_reconfiguration(self):
        """The paper's 'run-time changes to the architecture': swap the
        datapath in one slot between two kernels."""
        fabric = EfpgaFabric(luts=2_000)
        cpu = ReconfigurableCpu(
            program=ExtendedAssembler().assemble("halt"), fabric=fabric
        )
        cpu.configure(0, STANDARD_EXTENSIONS["bitrev8"])
        cpu.unconfigure(0)
        cpu.configure(0, STANDARD_EXTENSIONS["sad8"])
        assert cpu.configured_extensions() == {0: "sad8"}
        assert cpu.reconfigurations == 2


class TestExecution:
    def test_unconfigured_slot_traps(self):
        cpu = ReconfigurableCpu(
            program=ExtendedAssembler().assemble("xop3 r1, r2, r3\nhalt")
        )
        with pytest.raises(RiscError, match="unconfigured"):
            cpu.run()

    def test_mac16_semantics(self):
        cpu = run_extended(
            """
            li r1, 0x00020003   # hi=2 lo=3
            li r2, 0x00040005   # hi=4 lo=5
            xop0 r3, r1, r2     # 3*5 + 2*4 = 23
            halt
            """,
            {0: STANDARD_EXTENSIONS["mac16"]},
        )
        assert cpu.registers[3] == 23

    def test_sad8_semantics(self):
        cpu = run_extended(
            """
            li r1, 0x10203040
            li r2, 0x0F213F42
            xop1 r3, r1, r2
            halt
            """,
            {1: STANDARD_EXTENSIONS["sad8"]},
        )
        # |0x10-0x0F| + |0x20-0x21| + |0x30-0x3F| + |0x40-0x42| = 1+1+15+2
        assert cpu.registers[3] == 19

    def test_bitrev8(self):
        cpu = run_extended(
            "li r1, 0x01\nxop0 r2, r1, r0\nhalt",
            {0: STANDARD_EXTENSIONS["bitrev8"]},
        )
        assert cpu.registers[2] == 0x80

    def test_crc_step_matches_reference(self):
        import zlib

        cpu = run_extended(
            """
            li r1, 0xFFFFFFFF
            li r2, 0x61          # 'a'
            xop0 r1, r1, r2
            halt
            """,
            {0: STANDARD_EXTENSIONS["crc_step"]},
        )
        assert cpu.registers[1] == (zlib.crc32(b"a") ^ 0xFFFFFFFF)

    def test_xop_cycle_cost(self):
        ext = STANDARD_EXTENSIONS["mac16"]  # 2 cycles
        cpu = run_extended(
            "li r1, 1\nli r2, 1\nxop0 r3, r1, r2\nhalt",
            {0: ext},
        )
        assert cpu.cycles == 1 + 1 + 2 + 1

    def test_r0_write_ignored(self):
        cpu = run_extended(
            "li r1, 3\nxop0 r0, r1, r1\nhalt",
            {0: STANDARD_EXTENSIONS["mac16"]},
        )
        assert cpu.registers[0] == 0


class TestGops:
    def test_extension_multiplies_throughput(self):
        """A MAC-16 loop with the extension vs the same work in base ISA:
        the extension must yield several-fold fewer cycles."""
        with_ext = run_extended(
            """
            li r1, 0x00020003
            li r2, 0x00040005
            li r4, 100
        loop:
            xop0 r3, r1, r2
            subi r4, r4, 1
            bne r4, r0, loop
            halt
            """,
            {0: STANDARD_EXTENSIONS["mac16"]},
        )
        base = run_extended(
            """
            li r1, 0x00020003
            li r2, 0x00040005
            li r4, 100
        loop:
            andi r5, r1, 0xFFFF
            andi r6, r2, 0xFFFF
            mul r7, r5, r6
            shri r5, r1, 16
            shri r6, r2, 16
            mul r8, r5, r6
            add r3, r7, r8
            subi r4, r4, 1
            bne r4, r0, loop
            halt
            """,
            {},
        )
        assert with_ext.registers[3] == base.registers[3] == 23
        assert base.cycles > 2.5 * with_ext.cycles

    def test_gops_estimate_reaches_paper_regime(self):
        """The paper's Section 8 IC claims 1 GOPS: a 0.18um RISC plus
        eFPGA extensions.  An unrolled SAD loop (16-op pattern per xop)
        at 200 MHz must land in that regime; the base ISA manages only
        ~0.15 GOPS."""
        cpu = run_extended(
            """
            li r1, 0x10203040
            li r2, 0x0F213F42
            li r4, 100
        loop:
            xop0 r3, r1, r2
            xop0 r5, r1, r2
            xop0 r6, r1, r2
            xop0 r7, r1, r2
            subi r4, r4, 1
            bne r4, r0, loop
            halt
            """,
            {0: STANDARD_EXTENSIONS["sad8"]},
        )
        gops = gops_estimate(cpu, clock_mhz=200.0)
        assert gops > 0.9

    def test_effective_ops_accounting(self):
        ext = STANDARD_EXTENSIONS["sad8"]  # replaces 16 instructions
        cpu = run_extended(
            "li r1, 1\nli r2, 2\nxop0 r3, r1, r2\nhalt",
            {0: ext},
        )
        # 3 base instructions (li, li, halt) + 16 equivalents for the xop.
        assert cpu.effective_ops_retired() == 3 + 16

    def test_custom_instruction_validation(self):
        with pytest.raises(ValueError):
            CustomInstruction("bad", lambda a, b: 0, replaces_instructions=0,
                              gates=100)
        with pytest.raises(ValueError):
            CustomInstruction("bad", lambda a, b: 0, replaces_instructions=1,
                              gates=0)
