"""Unit tests for processor classes, DSP, ASIP, eFPGA, HW IP, I/O."""

import pytest

from repro.processors.asip import AsipModel, Specialization
from repro.processors.classes import (
    FIGURE1_CLASSES,
    ProcessorKind,
    figure1_series,
    pareto_front,
    pick_vehicle,
)
from repro.processors.dsp import DspModel, STANDARD_KERNELS
from repro.processors.efpga import (
    EFPGA_AREA_PENALTY,
    EFPGA_POWER_PENALTY,
    EfpgaFabric,
)
from repro.processors.hwip import MPEG2_DECODER, VITERBI, HardwiredIp
from repro.processors.ioblocks import STANDARD_IO_FAMILIES, IoBlock


class TestFigure1Classes:
    def test_all_seven_vehicles_present(self):
        assert len(FIGURE1_CLASSES) == 7

    def test_risc_is_reference(self):
        risc = FIGURE1_CLASSES[ProcessorKind.GENERAL_PURPOSE_RISC]
        assert risc.relative_performance == 1.0
        assert risc.flexibility == 1.0

    def test_hardwired_extreme_differentiation(self):
        hardwired = FIGURE1_CLASSES[ProcessorKind.HARDWIRED]
        risc = FIGURE1_CLASSES[ProcessorKind.GENERAL_PURPOSE_RISC]
        assert hardwired.differentiation() > 20 * risc.differentiation()
        assert hardwired.flexibility < 0.1

    def test_figure1_is_a_real_tradeoff(self):
        """Every vehicle is Pareto-optimal: you cannot gain
        differentiation without losing flexibility."""
        assert len(pareto_front()) == len(FIGURE1_CLASSES)

    def test_series_rows(self):
        rows = figure1_series()
        assert len(rows) == 7
        assert all("flexibility" in row for row in rows)

    def test_pick_vehicle_respects_floor(self):
        chosen = pick_vehicle(required_flexibility=0.8)
        assert chosen.flexibility >= 0.8

    def test_pick_vehicle_maximizes_differentiation(self):
        chosen = pick_vehicle(required_flexibility=0.0)
        assert chosen.kind is ProcessorKind.HARDWIRED

    def test_pick_vehicle_validation(self):
        with pytest.raises(ValueError):
            pick_vehicle(1.5)


class TestDsp:
    def test_fir_speedup_over_risc(self):
        dsp = DspModel(mac_units=2)
        speedup = dsp.speedup_vs_risc(STANDARD_KERNELS["fir"], 256)
        assert speedup > 2.0

    def test_more_macs_fewer_cycles(self):
        small = DspModel(mac_units=1)
        big = DspModel(mac_units=8)
        kernel = STANDARD_KERNELS["fir"]
        assert big.kernel_cycles(kernel, 256) < small.kernel_cycles(kernel, 256)

    def test_amdahl_limits_speedup(self):
        huge = DspModel(mac_units=1000)
        kernel = STANDARD_KERNELS["iir_biquad"]  # 0.9 parallel fraction
        reference = kernel.reference_cycles(256)
        assert huge.kernel_cycles(kernel, 256) > reference * 0.09

    def test_kernel_size_validation(self):
        with pytest.raises(ValueError):
            STANDARD_KERNELS["fir"].reference_cycles(0)

    def test_mac_validation(self):
        with pytest.raises(ValueError):
            DspModel(mac_units=0)

    def test_time_uses_clock(self):
        slow = DspModel(clock_mhz=100.0)
        fast = DspModel(clock_mhz=400.0)
        kernel = STANDARD_KERNELS["fft"]
        assert slow.kernel_time_us(kernel, 64) == pytest.approx(
            4 * fast.kernel_time_us(kernel, 64)
        )


class TestAsip:
    def test_extension_speedup_amdahl(self):
        asip = AsipModel()
        asip.add_extension(Specialization("csum", 4, 0.5, 5000))
        # 50% at 4x: 1 / (0.5 + 0.125) = 1.6
        assert asip.speedup() == pytest.approx(1.6)

    def test_overlapping_coverage_rejected(self):
        asip = AsipModel()
        asip.add_extension(Specialization("a", 2, 0.7, 1000))
        with pytest.raises(ValueError, match="sum"):
            asip.add_extension(Specialization("b", 2, 0.5, 1000))

    def test_duplicate_name_rejected(self):
        asip = AsipModel()
        asip.add_extension(Specialization("a", 2, 0.1, 1000))
        with pytest.raises(ValueError, match="duplicate"):
            asip.add_extension(Specialization("a", 2, 0.1, 1000))

    def test_area_accumulates(self):
        asip = AsipModel(base_gates=30_000)
        asip.add_extension(Specialization("a", 3, 0.3, 7000))
        assert asip.total_gates() == 37_000

    def test_specialization_validation(self):
        with pytest.raises(ValueError):
            Specialization("x", 1, 0.5, 100)
        with pytest.raises(ValueError):
            Specialization("x", 2, 0.0, 100)
        with pytest.raises(ValueError):
            Specialization("x", 2, 0.5, -1)

    def test_efficiency_gain_tuple(self):
        asip = AsipModel()
        asip.add_extension(Specialization("a", 4, 0.4, 12_000))
        speedup, area_ratio = asip.efficiency_gain()
        assert speedup > 1.0
        assert area_ratio > 1.0

    def test_mips_scales_with_speedup(self):
        base = AsipModel()
        extended = AsipModel()
        extended.add_extension(Specialization("a", 4, 0.5, 1000))
        assert extended.mips() > base.mips()


class TestEfpga:
    def test_paper_10x_penalties(self):
        """Section 6.3: 'the 10X cost and power penalty of eFPGA's'."""
        assert EFPGA_AREA_PENALTY == 10.0
        assert EFPGA_POWER_PENALTY == 10.0

    def test_full_fabric_area_ratio_is_10x(self):
        fabric = EfpgaFabric(luts=1000)
        fabric.map_function("f", asic_gates=8000)  # exactly fills 1000 LUTs
        assert fabric.area_vs_hardwired() == pytest.approx(10.0)

    def test_underutilized_fabric_is_worse_than_10x(self):
        fabric = EfpgaFabric(luts=10_000)
        fabric.map_function("tiny", asic_gates=800)  # 1% occupancy
        assert fabric.area_vs_hardwired() > 50

    def test_capacity_enforced(self):
        fabric = EfpgaFabric(luts=100)
        with pytest.raises(ValueError, match="LUT"):
            fabric.map_function("big", asic_gates=10_000)

    def test_unmap_reclaims(self):
        fabric = EfpgaFabric(luts=1000)
        fabric.map_function("f", 4000)
        used = fabric.luts_used
        fabric.unmap("f")
        assert fabric.luts_used == 0
        assert used > 0

    def test_duplicate_mapping_rejected(self):
        fabric = EfpgaFabric(luts=1000)
        fabric.map_function("f", 400)
        with pytest.raises(ValueError, match="already"):
            fabric.map_function("f", 400)

    def test_suitability_guidance(self):
        """Repeatable regular functions suit the fabric; time-division
        multiplexing of many tasks does not (Section 6.3)."""
        fabric = EfpgaFabric()
        assert fabric.suitability(0.9, 0.9) > fabric.suitability(0.9, 0.2)

    def test_power_ratio(self):
        fabric = EfpgaFabric(luts=1000)
        fabric.map_function("f", 4000)
        assert fabric.power_vs_hardwired() == pytest.approx(10.0)


class TestHwIp:
    def test_service_cycles_pipeline(self):
        # latency + (n-1)/throughput
        assert VITERBI.service_cycles(1) == pytest.approx(64.0)
        assert VITERBI.service_cycles(11) == pytest.approx(74.0)

    def test_items_validation(self):
        with pytest.raises(ValueError):
            MPEG2_DECODER.service_cycles(0)

    def test_throughput_validation(self):
        with pytest.raises(ValueError):
            HardwiredIp("bad", 0.0, 1.0, 100, 1.0)

    def test_mpeg2_sustains_sd_video(self):
        """SD MPEG-2: 1350 macroblocks/frame * 30 fps at 100 MHz."""
        mb_per_second = 1350 * 30
        cycles_per_second = 100e6
        cycles_needed = MPEG2_DECODER.service_cycles(mb_per_second)
        assert cycles_needed < cycles_per_second


class TestIoBlocks:
    def test_paper_dozen_families(self):
        """Section 6.4: 'a dozen main I/O families'."""
        assert len(STANDARD_IO_FAMILIES) == 12

    def test_spi4_worst_case_arrival(self):
        """40-byte packets at 10 Gb/s, 500 MHz clock: one per 16 cycles."""
        spi4 = STANDARD_IO_FAMILIES["spi4"]
        assert spi4.packet_interarrival_cycles(40, 0.5) == pytest.approx(16.0)

    def test_bytes_per_cycle(self):
        spi4 = STANDARD_IO_FAMILIES["spi4"]
        assert spi4.bytes_per_cycle(0.5) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            IoBlock("bad", 0.0, 1.0, 100, "x")
        spi4 = STANDARD_IO_FAMILIES["spi4"]
        with pytest.raises(ValueError):
            spi4.bytes_per_cycle(0.0)
        with pytest.raises(ValueError):
            spi4.packet_interarrival_cycles(0, 0.5)
