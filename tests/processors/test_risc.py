"""Unit tests for the RISC ISS and assembler."""

import pytest

from repro.processors.risc import (
    Assembler,
    RiscCpu,
    RiscError,
    assemble,
    run_program,
)


class TestAssembler:
    def test_comments_and_blanks_ignored(self):
        program = assemble(
            """
            # a comment
            li r1, 5   ; trailing comment

            halt
            """
        )
        assert len(program) == 2

    def test_labels_resolve(self):
        program = assemble(
            """
            jmp end
            li r1, 1
        end:
            halt
            """
        )
        assert program[0].target == 2

    def test_duplicate_label_rejected(self):
        with pytest.raises(RiscError, match="duplicate"):
            assemble("x:\nnop\nx:\nhalt")

    def test_undefined_label_rejected(self):
        with pytest.raises(RiscError, match="undefined"):
            assemble("jmp nowhere\nhalt")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(RiscError, match="unknown opcode"):
            assemble("frobnicate r1, r2, r3")

    def test_bad_register_rejected(self):
        with pytest.raises(RiscError, match="register"):
            assemble("li r16, 1")

    def test_arity_checked(self):
        with pytest.raises(RiscError, match="expects"):
            assemble("add r1, r2")

    def test_memory_operand_parsed(self):
        program = assemble("lw r1, 8(r2)\nhalt")
        assert program[0].imm == 8
        assert program[0].ra == 2

    def test_bad_memory_operand(self):
        with pytest.raises(RiscError, match="memory operand"):
            assemble("lw r1, r2")

    def test_hex_immediates(self):
        program = assemble("li r1, 0xFF\nhalt")
        assert program[0].imm == 255

    def test_shift_immediate_form(self):
        program = assemble("shl r1, r2, 3\nhalt")
        assert program[0].op == "shli"


class TestArithmetic:
    def test_add(self):
        cpu = run_program("li r1, 3\nli r2, 4\nadd r3, r1, r2\nhalt")
        assert cpu.registers[3] == 7

    def test_sub_wraps_unsigned(self):
        cpu = run_program("li r1, 0\nsubi r2, r1, 1\nhalt")
        assert cpu.registers[2] == 0xFFFFFFFF

    def test_mul(self):
        cpu = run_program("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt")
        assert cpu.registers[3] == 42

    def test_mul_wraps_32bit(self):
        cpu = run_program("li r1, 0x10000\nmul r2, r1, r1\nhalt")
        assert cpu.registers[2] == 0

    def test_logic_ops(self):
        cpu = run_program(
            """
            li r1, 0b1100
            li r2, 0b1010
            and r3, r1, r2
            or r4, r1, r2
            xor r5, r1, r2
            halt
            """
        )
        assert cpu.registers[3] == 0b1000
        assert cpu.registers[4] == 0b1110
        assert cpu.registers[5] == 0b0110

    def test_shifts(self):
        cpu = run_program(
            "li r1, 0x80000000\nshri r2, r1, 31\nshli r3, r2, 4\nhalt"
        )
        assert cpu.registers[2] == 1
        assert cpu.registers[3] == 16

    def test_r0_always_zero(self):
        cpu = run_program("li r0, 99\nadd r1, r0, r0\nhalt")
        assert cpu.registers[0] == 0
        assert cpu.registers[1] == 0

    def test_mov(self):
        cpu = run_program("li r1, 13\nmov r2, r1\nhalt")
        assert cpu.registers[2] == 13


class TestMemory:
    def test_store_load_roundtrip(self):
        cpu = run_program(
            "li r1, 0x1000\nli r2, 77\nsw r2, 0(r1)\nlw r3, 0(r1)\nhalt"
        )
        assert cpu.registers[3] == 77

    def test_offset_addressing(self):
        cpu = run_program(
            "li r1, 100\nli r2, 5\nsw r2, 8(r1)\nlw r3, 8(r1)\nhalt"
        )
        assert cpu.memory[108] == 5
        assert cpu.registers[3] == 5

    def test_uninitialized_memory_reads_zero(self):
        cpu = run_program("lw r1, 0(r0)\nhalt")
        assert cpu.registers[1] == 0

    def test_preloaded_memory(self):
        cpu = run_program("li r1, 4\nlw r2, 0(r1)\nhalt", memory={4: 1234})
        assert cpu.registers[2] == 1234


class TestControlFlow:
    def test_loop_sums_1_to_10(self):
        cpu = run_program(
            """
            li r1, 10
            li r2, 0
        loop:
            add r2, r2, r1
            subi r1, r1, 1
            bne r1, r0, loop
            halt
            """
        )
        assert cpu.registers[2] == 55

    def test_beq_taken(self):
        cpu = run_program(
            "li r1, 5\nli r2, 5\nbeq r1, r2, skip\nli r3, 1\nskip:\nhalt"
        )
        assert cpu.registers[3] == 0

    def test_blt_signed_comparison(self):
        # -1 < 1 as signed even though 0xFFFFFFFF > 1 unsigned.
        cpu = run_program(
            """
            li r1, 0
            subi r1, r1, 1
            li r2, 1
            blt r1, r2, neg
            li r3, 0
            jmp end
        neg:
            li r3, 1
        end:
            halt
            """
        )
        assert cpu.registers[3] == 1

    def test_bge(self):
        cpu = run_program(
            "li r1, 5\nli r2, 5\nbge r1, r2, ok\nli r3, 9\nok:\nhalt"
        )
        assert cpu.registers[3] == 0

    def test_infinite_loop_detected(self):
        cpu = RiscCpu(program=assemble("loop:\njmp loop"))
        with pytest.raises(RiscError, match="cap"):
            cpu.run(max_instructions=100)


class TestCycleAccounting:
    def test_load_costs_two_cycles(self):
        cpu = run_program("lw r1, 0(r0)\nhalt")
        assert cpu.cycles == 2 + 1

    def test_taken_branch_penalty(self):
        taken = run_program("li r1, 1\nbeq r1, r1, t\nt:\nhalt")
        not_taken = run_program("li r1, 1\nbne r1, r1, t\nt:\nhalt")
        assert taken.cycles == not_taken.cycles + 1

    def test_cpi_above_one_with_memory_ops(self):
        cpu = run_program("lw r1, 0(r0)\nsw r1, 4(r0)\nhalt")
        assert cpu.cpi > 1.0

    def test_reset_preserves_memory(self):
        cpu = run_program("li r1, 1\nsw r1, 0(r0)\nhalt")
        cpu.reset()
        assert cpu.memory[0] == 1
        assert cpu.registers[1] == 0
        assert cpu.cycles == 0


class TestRealKernels:
    def test_checksum_like_accumulation(self):
        """A word-sum kernel like the IPv4 checksum inner loop."""
        memory = {i * 4: (i + 1) * 0x1111 for i in range(5)}
        cpu = run_program(
            """
            li r1, 0      # address
            li r2, 5      # count
            li r3, 0      # sum
        loop:
            lw r4, 0(r1)
            add r3, r3, r4
            addi r1, r1, 4
            subi r2, r2, 1
            bne r2, r0, loop
            halt
            """,
            memory=memory,
        )
        assert cpu.registers[3] == sum(memory.values())

    def test_fibonacci(self):
        cpu = run_program(
            """
            li r1, 0
            li r2, 1
            li r3, 10
        loop:
            add r4, r1, r2
            mov r1, r2
            mov r2, r4
            subi r3, r3, 1
            bne r3, r0, loop
            halt
            """
        )
        assert cpu.registers[1] == 55  # fib(10)

    def test_table_walk_like_trie_lookup(self):
        """Pointer chasing like the NPSE trie walk."""
        memory = {100: 200, 200: 300, 300: 0xABCD}
        cpu = run_program(
            """
            li r1, 100
            lw r1, 0(r1)
            lw r1, 0(r1)
            lw r1, 0(r1)
            halt
            """,
            memory=memory,
        )
        assert cpu.registers[1] == 0xABCD
