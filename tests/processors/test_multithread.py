"""Unit tests for the hardware-multithreaded PE (experiment E11)."""

import pytest

from repro.processors.multithread import (
    HardwareMultithreadedPE,
    ideal_utilization,
    run_latency_hiding_experiment,
)
from repro.sim.core import SimulationError, Simulator, Timeout


class TestConstruction:
    def test_thread_count_validation(self):
        with pytest.raises(SimulationError):
            HardwareMultithreadedPE(Simulator(), num_threads=0)

    def test_swap_cost_validation(self):
        with pytest.raises(SimulationError):
            HardwareMultithreadedPE(Simulator(), swap_cycles=-1.0)

    def test_context_limit_enforced(self):
        sim = Simulator()
        pe = HardwareMultithreadedPE(sim, num_threads=1)

        def body(ctx):
            yield from ctx.compute(1)

        pe.spawn_thread(body)
        with pytest.raises(SimulationError):
            pe.spawn_thread(body)


class TestExecution:
    def test_single_thread_full_utilization_without_stalls(self):
        sim = Simulator()
        pe = HardwareMultithreadedPE(sim, num_threads=1)

        def body(ctx):
            while ctx.sim.now < 1000:
                yield from ctx.compute(10)

        pe.spawn_thread(body)
        sim.run(until=1000)
        assert pe.utilization() == pytest.approx(1.0, abs=0.02)

    def test_single_thread_stalls_cut_utilization(self):
        result = run_latency_hiding_experiment(1, 20, 100, duration=10_000)
        assert result["utilization"] == pytest.approx(20 / 120, abs=0.01)

    def test_core_never_runs_two_threads_at_once(self):
        sim = Simulator()
        pe = HardwareMultithreadedPE(sim, num_threads=4, swap_cycles=0.0)
        active = []
        violations = []

        def body(ctx):
            for _ in range(20):
                yield ctx.pe._acquire(ctx.thread_id)
                active.append(ctx.thread_id)
                if len(active) > 1:
                    violations.append(list(active))
                yield Timeout(3)
                active.remove(ctx.thread_id)
                ctx.pe._busy_cycles += 3
                ctx.pe._release()
                yield from ctx.remote_delay(5)

        for _ in range(4):
            pe.spawn_thread(body)
        sim.run()
        assert not violations


class TestLatencyHiding:
    def test_utilization_grows_with_threads(self):
        utils = [
            run_latency_hiding_experiment(n, 20, 100, duration=10_000)[
                "utilization"
            ]
            for n in (1, 2, 4, 8)
        ]
        assert utils == sorted(utils)
        assert utils[-1] > 4 * utils[0] * 0.9

    def test_paper_claim_high_utilization_at_100_cycles(self):
        """Section 7.2: near-100% utilization despite >100-cycle latency."""
        result = run_latency_hiding_experiment(8, 20, 100, duration=20_000)
        assert result["utilization"] > 0.90

    def test_matches_analytic_bound_when_unsaturated(self):
        for threads in (1, 2, 3):
            result = run_latency_hiding_experiment(
                threads, 20, 100, duration=20_000, swap_cycles=0.0
            )
            assert result["utilization"] == pytest.approx(
                result["ideal"], abs=0.02
            )

    def test_ideal_utilization_formula(self):
        assert ideal_utilization(1, 20, 100) == pytest.approx(20 / 120)
        assert ideal_utilization(6, 20, 100) == pytest.approx(1.0)

    def test_ideal_validation(self):
        with pytest.raises(ValueError):
            ideal_utilization(0, 20, 100)
        with pytest.raises(ValueError):
            ideal_utilization(1, 0, 100)
        with pytest.raises(ValueError):
            ideal_utilization(1, 20, -1)


class TestSwapOverhead:
    def test_software_switch_cost_hurts(self):
        """Ablation: a 100-cycle software context switch vs the paper's
        1-cycle hardware swap."""
        hw = run_latency_hiding_experiment(4, 20, 100, swap_cycles=1.0,
                                           duration=20_000)
        sw = run_latency_hiding_experiment(4, 20, 100, swap_cycles=100.0,
                                           duration=20_000)
        assert sw["utilization"] < hw["utilization"] * 0.5

    def test_zero_swap_reaches_ideal(self):
        result = run_latency_hiding_experiment(8, 20, 100, swap_cycles=0.0,
                                               duration=20_000)
        assert result["utilization"] == pytest.approx(1.0, abs=0.02)

    def test_occupancy_includes_swap(self):
        result = run_latency_hiding_experiment(8, 20, 100, swap_cycles=1.0,
                                               duration=20_000)
        assert result["occupancy"] >= result["utilization"]


class TestThroughput:
    def test_throughput_scales_with_threads_until_saturation(self):
        t1 = run_latency_hiding_experiment(1, 20, 100, duration=20_000)
        t4 = run_latency_hiding_experiment(4, 20, 100, duration=20_000)
        assert t4["throughput"] == pytest.approx(4 * t1["throughput"], rel=0.1)

    def test_throughput_capped_at_core_rate(self):
        result = run_latency_hiding_experiment(16, 20, 100, duration=20_000)
        # One item needs >= 20 compute cycles + 1 swap.
        assert result["throughput"] <= 1 / 20.0
