"""Unit tests for the OCP socket layer."""

import pytest

from repro.noc.network import Network
from repro.noc.ocp import OcpMaster, OcpSlave
from repro.noc.topology import mesh
from repro.sim.core import Simulator


def make_pair(access_latency=1.0):
    sim = Simulator()
    net = Network(sim, mesh(16))
    master = OcpMaster(net, 0)
    slave = OcpSlave(net, 15, access_latency=access_latency)
    return sim, net, master, slave


class TestReadWrite:
    def test_write_then_read_roundtrip(self):
        sim, _net, master, _slave = make_pair()
        out = []

        def proc():
            yield master.write(15, 0x100, "data")
            value = yield master.read(15, 0x100)
            out.append(value)

        sim.spawn(proc())
        sim.run()
        assert out == ["data"]

    def test_read_unwritten_returns_none(self):
        sim, _net, master, _slave = make_pair()
        out = []

        def proc():
            value = yield master.read(15, 0xDEAD)
            out.append(value)

        sim.spawn(proc())
        sim.run()
        assert out == [None]

    def test_message_acknowledged(self):
        sim, _net, master, _slave = make_pair()
        out = []

        def proc():
            ok = yield master.message(15, {"op": "ping"})
            out.append(ok)

        sim.spawn(proc())
        sim.run()
        assert out == [True]


class TestSplitTransactions:
    def test_multiple_outstanding(self):
        """Split transactions: issue many reads before any completes."""
        sim, _net, master, _slave = make_pair(access_latency=50.0)
        out = []

        def proc():
            events = [master.read(15, i) for i in range(8)]
            assert master.outstanding == 8
            for event in events:
                yield event
            out.append(master.completed)

        sim.spawn(proc())
        sim.run()
        assert out == [8]
        assert master.outstanding == 0

    def test_access_latency_adds_to_roundtrip(self):
        sim_fast, _n, fast_master, _s = make_pair(access_latency=0.0)
        done_fast = []

        def proc_fast():
            yield fast_master.read(15, 0)
            done_fast.append(sim_fast.now)

        sim_fast.spawn(proc_fast())
        sim_fast.run()

        sim_slow, _n, slow_master, _s = make_pair(access_latency=100.0)
        done_slow = []

        def proc_slow():
            yield slow_master.read(15, 0)
            done_slow.append(sim_slow.now)

        sim_slow.spawn(proc_slow())
        sim_slow.run()
        assert done_slow[0] - done_fast[0] == pytest.approx(100.0)


class TestCustomHandler:
    def test_handler_computes_response(self):
        sim = Simulator()
        net = Network(sim, mesh(16))
        master = OcpMaster(net, 0)
        OcpSlave(net, 15, handler=lambda txn: txn.address * 2)
        out = []

        def proc():
            value = yield master.read(15, 21)
            out.append(value)

        sim.spawn(proc())
        sim.run()
        assert out == [42]

    def test_served_counter(self):
        sim = Simulator()
        net = Network(sim, mesh(16))
        master = OcpMaster(net, 0)
        slave = OcpSlave(net, 15)

        def proc():
            for i in range(5):
                yield master.read(15, i)

        sim.spawn(proc())
        sim.run()
        assert slave.served == 5

    def test_negative_latency_rejected(self):
        sim = Simulator()
        net = Network(sim, mesh(16))
        with pytest.raises(ValueError):
            OcpSlave(net, 15, access_latency=-1.0)


class TestMultiMaster:
    def test_two_masters_one_slave(self):
        sim = Simulator()
        net = Network(sim, mesh(16))
        m0 = OcpMaster(net, 0)
        m1 = OcpMaster(net, 3)
        OcpSlave(net, 15)
        out = []

        def proc(master, tag):
            yield master.write(15, hash(tag) % 100, tag)
            value = yield master.read(15, hash(tag) % 100)
            out.append((tag, value))

        sim.spawn(proc(m0, "a"))
        sim.spawn(proc(m1, "b"))
        sim.run()
        assert sorted(out) == [("a", "a"), ("b", "b")]
