"""Unit and property tests for routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.routing import build_routing
from repro.noc.topology import (
    TopologyKind,
    crossbar,
    fat_tree,
    make_topology,
    mesh,
    ring,
    star,
    torus,
    tree,
)

ALL_BUILDERS = [ring, mesh, torus, tree, fat_tree, crossbar, star]


class TestRoutingBasics:
    def test_self_route_is_single_node(self):
        routing = build_routing(mesh(16))
        assert routing.route(5, 5) == [5]

    def test_route_endpoints(self):
        routing = build_routing(mesh(16))
        path = routing.route(0, 15)
        assert path[0] == 0 and path[-1] == 15

    def test_route_follows_edges(self):
        topo = mesh(16)
        routing = build_routing(topo)
        edges = set(topo.edges)
        path = routing.route(0, 15)
        for u, v in zip(path, path[1:]):
            assert (u, v) in edges

    def test_route_length_matches_distance(self):
        topo = mesh(16)
        routing = build_routing(topo)
        for src in range(16):
            for dst in range(16):
                path = routing.route(src, dst)
                assert len(path) - 1 == routing.hops(src, dst)

    def test_mesh_distance_is_manhattan(self):
        routing = build_routing(mesh(16, width=4))
        # (0,0) to (3,3): 6 hops.
        assert routing.hops(0, 15) == 6

    def test_crossbar_diameter_one(self):
        assert build_routing(crossbar(8)).diameter() == 1

    def test_ring_diameter_half(self):
        assert build_routing(ring(8)).diameter() == 4

    def test_average_distance_positive(self):
        assert build_routing(mesh(16)).average_distance() > 0


class TestEcmp:
    def test_fat_tree_has_path_diversity(self):
        """The SPIN fat tree offers multiple minimal paths leaf-to-leaf."""
        topo = fat_tree(16)
        routing = build_routing(topo)
        leaves = sorted(set(topo.terminal_router))
        assert routing.path_diversity(leaves[0], leaves[-1]) >= 2

    def test_flows_spread_across_roots(self):
        topo = fat_tree(16)
        routing = build_routing(topo)
        leaves = sorted(set(topo.terminal_router))
        first_hops = {
            routing.route(leaves[0], leaves[1], flow=f)[1] for f in range(64)
        }
        assert len(first_hops) >= 2

    def test_same_flow_same_path(self):
        """Per-flow determinism preserves in-order delivery."""
        routing = build_routing(fat_tree(16))
        for flow in (0, 7, 123):
            assert routing.route(0, 3, flow) == routing.route(0, 3, flow)

    def test_mesh_single_path_on_line(self):
        routing = build_routing(mesh(4, width=4))
        assert routing.path_diversity(0, 3) == 1


@pytest.mark.parametrize("build", ALL_BUILDERS)
def test_all_pairs_reachable(build):
    topo = build(16)
    routing = build_routing(topo)
    for src in range(topo.num_routers):
        for dst in range(topo.num_routers):
            assert routing.hops(src, dst) >= 0


@pytest.mark.parametrize("build", ALL_BUILDERS)
def test_routes_are_loop_free(build):
    topo = build(16)
    routing = build_routing(topo)
    for src in range(topo.num_routers):
        for dst in range(topo.num_routers):
            for flow in (0, 1, 99):
                path = routing.route(src, dst, flow)
                assert len(path) == len(set(path)), (
                    f"loop in {build.__name__} route {src}->{dst}"
                )


@given(
    terminals=st.sampled_from([8, 12, 16, 24, 32]),
    kind=st.sampled_from(
        [
            TopologyKind.RING,
            TopologyKind.MESH,
            TopologyKind.FAT_TREE,
            TopologyKind.STAR,
            TopologyKind.TREE,
        ]
    ),
    src=st.integers(min_value=0, max_value=31),
    dst=st.integers(min_value=0, max_value=31),
    flow=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=150, deadline=None)
def test_property_minimal_routes(terminals, kind, src, dst, flow):
    """Any route is exactly as long as the BFS distance — minimality."""
    topo = make_topology(kind, terminals)
    routing = build_routing(topo)
    src %= topo.num_routers
    dst %= topo.num_routers
    path = routing.route(src, dst, flow)
    assert len(path) - 1 == routing.hops(src, dst)
    edges = set(topo.edges)
    for u, v in zip(path, path[1:]):
        assert (u, v) in edges


class TestRoutingCaches:
    def test_cached_routing_shares_one_table(self):
        from repro.noc.routing import cached_routing

        a = cached_routing(mesh(16))
        b = cached_routing(mesh(16))       # structurally identical
        assert a is b

    def test_cached_routing_distinguishes_topologies(self):
        from repro.noc.routing import cached_routing

        assert cached_routing(mesh(16)) is not cached_routing(torus(16))
        assert cached_routing(mesh(16)) is not cached_routing(mesh(12))

    def test_cached_routing_matches_build_routing(self):
        from repro.noc.routing import cached_routing

        for builder in ALL_BUILDERS:
            topo = builder(16)
            fresh = build_routing(topo)
            shared = cached_routing(topo)
            assert shared.distance == fresh.distance
            assert shared.next_hops == fresh.next_hops

    def test_route_paths_memoized_and_stable(self):
        routing = build_routing(fat_tree(16))
        first = routing.route(0, 3, flow=7)
        again = routing.route(0, 3, flow=7)
        assert again is first               # memo hit
        assert routing.route(0, 3, flow=7) == first

    def test_average_distance_matches_naive_pair_walk(self):
        for builder in ALL_BUILDERS:
            topo = builder(16)
            routing = build_routing(topo)
            total = 0
            count = 0
            for src in range(topo.num_terminals):
                for dst in range(topo.num_terminals):
                    if src == dst:
                        continue
                    total += routing.distance[topo.terminal_router[src]][
                        topo.terminal_router[dst]
                    ]
                    count += 1
            naive = total / count
            assert routing.average_distance() == naive
            # Memoized second call returns the same value.
            assert routing.average_distance() == naive
