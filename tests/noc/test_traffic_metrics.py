"""Unit tests for traffic patterns and the measurement harness."""

import pytest

from repro.noc.metrics import NocMetrics, saturation_load, simulate_traffic
from repro.noc.network import Network
from repro.noc.topology import bus, crossbar, mesh
from repro.noc.traffic import TrafficGenerator, TrafficPattern
from repro.sim.core import Simulator
from repro.sim.rng import RandomStreams


class TestPatterns:
    def test_uniform_never_self(self):
        import random

        rng = random.Random(1)
        for src in range(16):
            for _ in range(50):
                dst = TrafficPattern.UNIFORM.destination(src, 16, rng)
                assert dst != src
                assert 0 <= dst < 16

    def test_transpose_deterministic(self):
        import random

        rng = random.Random(1)
        a = TrafficPattern.TRANSPOSE.destination(5, 16, rng)
        b = TrafficPattern.TRANSPOSE.destination(5, 16, rng)
        assert a == b

    def test_transpose_swaps_halves(self):
        import random

        rng = random.Random(1)
        # 16 terminals -> 4 bits; transpose swaps hi/lo pairs.
        assert TrafficPattern.TRANSPOSE.destination(0b0110, 16, rng) == 0b1001

    def test_bit_complement(self):
        import random

        rng = random.Random(1)
        assert TrafficPattern.BIT_COMPLEMENT.destination(0b0101, 16, rng) == 0b1010

    def test_neighbor_ring(self):
        import random

        rng = random.Random(1)
        assert TrafficPattern.NEIGHBOR.destination(15, 16, rng) == 0

    def test_hotspot_concentrates(self):
        import random

        rng = random.Random(1)
        hits = sum(
            TrafficPattern.HOTSPOT.destination(3, 16, rng, hotspot=0,
                                               hotspot_fraction=0.8) == 0
            for _ in range(1000)
        )
        assert hits > 700


class TestGenerator:
    def test_injects_packets(self):
        sim = Simulator()
        net = Network(sim, mesh(16))
        gen = TrafficGenerator(net, TrafficPattern.UNIFORM, 0.1,
                               streams=RandomStreams(1))
        gen.start(1000.0)
        sim.run(until=1000.0)
        assert len(gen.sent) > 0
        assert net.delivered_packets > 0

    def test_load_validation(self):
        sim = Simulator()
        net = Network(sim, mesh(16))
        with pytest.raises(ValueError):
            TrafficGenerator(net, TrafficPattern.UNIFORM, 0.0)

    def test_offered_load_approximated(self):
        sim = Simulator()
        net = Network(sim, mesh(16))
        gen = TrafficGenerator(net, TrafficPattern.UNIFORM, 0.2,
                               packet_size=4, streams=RandomStreams(1))
        gen.start(5000.0)
        sim.run(until=5000.0)
        offered = len(gen.sent) * 4 / (16 * 5000.0)
        assert offered == pytest.approx(0.2, rel=0.15)

    def test_seeded_runs_reproduce(self):
        def run():
            sim = Simulator()
            net = Network(sim, mesh(16))
            gen = TrafficGenerator(net, TrafficPattern.UNIFORM, 0.1,
                                   streams=RandomStreams(7))
            gen.start(2000.0)
            sim.run(until=2000.0)
            return [(p.src, p.dst, p.injected_at) for p in gen.sent]

        assert run() == run()


class TestSimulateTraffic:
    def test_returns_metrics(self):
        metrics = simulate_traffic(
            mesh(16), TrafficPattern.UNIFORM, 0.1,
            duration=2000.0, warmup=500.0,
        )
        assert isinstance(metrics, NocMetrics)
        assert metrics.avg_latency > 0
        assert 0 < metrics.accepted_load <= 0.15

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            simulate_traffic(mesh(16), TrafficPattern.UNIFORM, 0.1,
                             duration=100.0, warmup=100.0)

    def test_low_load_unsaturated_mesh(self):
        metrics = simulate_traffic(mesh(16), TrafficPattern.UNIFORM, 0.05,
                                   duration=3000.0, warmup=500.0)
        assert not metrics.saturated

    def test_bus_saturates_at_moderate_load(self):
        """The paper's motivation to move away from shared buses."""
        metrics = simulate_traffic(bus(16), TrafficPattern.UNIFORM, 0.3,
                                   duration=3000.0, warmup=500.0)
        assert metrics.saturated

    def test_crossbar_handles_heavy_uniform_load(self):
        metrics = simulate_traffic(crossbar(16), TrafficPattern.UNIFORM, 0.5,
                                   duration=3000.0, warmup=500.0)
        assert not metrics.saturated

    def test_as_row_keys(self):
        metrics = simulate_traffic(mesh(16), TrafficPattern.UNIFORM, 0.05,
                                   duration=1000.0, warmup=200.0)
        row = metrics.as_row()
        assert {"topology", "pattern", "offered", "accepted",
                "avg_latency"} <= set(row)

    def test_saturation_load_bus_below_mesh(self):
        bus_sat = saturation_load(
            bus(16), TrafficPattern.UNIFORM,
            loads=[0.05, 0.1, 0.2, 0.4, 0.8],
            duration=2000.0, warmup=400.0,
        )
        mesh_sat = saturation_load(
            mesh(16), TrafficPattern.UNIFORM,
            loads=[0.05, 0.1, 0.2, 0.4, 0.8],
            duration=2000.0, warmup=400.0,
        )
        assert bus_sat < mesh_sat
