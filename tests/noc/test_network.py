"""Unit tests for the network model."""

import pytest

from repro.noc.link import Link
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.topology import bus, crossbar, mesh, ring
from repro.sim.core import Simulator


def make_net(topo_builder, n=16, **kwargs):
    sim = Simulator()
    return sim, Network(sim, topo_builder(n), **kwargs)


class TestPacket:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, size_flits=0)

    def test_latency_requires_delivery(self):
        packet = Packet(src=0, dst=1)
        with pytest.raises(ValueError):
            _ = packet.latency

    def test_ids_unique(self):
        a, b = Packet(src=0, dst=1), Packet(src=0, dst=1)
        assert a.packet_id != b.packet_id


class TestLink:
    def test_reserve_serializes(self):
        link = Link("l")
        s1, f1 = link.reserve(0.0, 4)
        s2, f2 = link.reserve(0.0, 4)
        assert (s1, f1) == (0.0, 4.0)
        assert (s2, f2) == (4.0, 8.0)

    def test_idle_gap_not_busy(self):
        link = Link("l")
        link.reserve(0.0, 2)
        link.reserve(10.0, 2)
        assert link.utilization(20.0) == pytest.approx(0.2)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            Link("l", flits_per_cycle=0)

    def test_wait_stats(self):
        link = Link("l")
        link.reserve(0.0, 10)
        link.reserve(0.0, 10)
        assert link.wait_stats.maximum == pytest.approx(10.0)


class TestDelivery:
    def test_packet_delivered_with_hops(self):
        sim, net = make_net(mesh)
        delivered = []
        packet = Packet(src=0, dst=15, size_flits=4)
        net.send(packet, on_deliver=lambda p: delivered.append(p))
        sim.run()
        assert delivered == [packet]
        assert packet.delivered_at is not None
        assert packet.hops == 6  # Manhattan distance on 4x4 mesh

    def test_same_router_delivery(self):
        sim, net = make_net(mesh)
        packet = Packet(src=3, dst=3, size_flits=2)
        net.send(packet)
        sim.run()
        assert packet.delivered_at is not None
        assert packet.hops == 0

    def test_terminal_range_checked(self):
        sim, net = make_net(mesh)
        with pytest.raises(ValueError):
            net.send(Packet(src=0, dst=99))

    def test_attach_receiver_called(self):
        sim, net = make_net(mesh)
        seen = []
        net.attach(15, lambda p: seen.append(p.payload))
        net.send(Packet(src=0, dst=15, payload="hello"))
        sim.run()
        assert seen == ["hello"]

    def test_counters(self):
        sim, net = make_net(mesh)
        for dst in (1, 2, 3):
            net.send(Packet(src=0, dst=dst, size_flits=2))
        sim.run()
        assert net.injected_packets == 3
        assert net.delivered_packets == 3
        assert net.delivered_flits == 6


class TestZeroLoadLatency:
    def test_simulated_matches_analytic_on_idle_mesh(self):
        sim, net = make_net(mesh)
        packet = Packet(src=0, dst=15, size_flits=4)
        net.send(packet)
        sim.run()
        assert packet.latency == pytest.approx(net.zero_load_latency(0, 15, 4))

    def test_simulated_matches_analytic_on_idle_ring(self):
        sim, net = make_net(ring)
        packet = Packet(src=0, dst=5, size_flits=4)
        net.send(packet)
        sim.run()
        assert packet.latency == pytest.approx(net.zero_load_latency(0, 5, 4))

    def test_crossbar_latency_below_mesh(self):
        _, xbar = make_net(crossbar)
        _, grid = make_net(mesh)
        assert xbar.zero_load_latency(0, 15) < grid.zero_load_latency(0, 15)


class TestBusSpecialCase:
    def test_bus_delivery(self):
        sim, net = make_net(bus)
        packet = Packet(src=0, dst=7, size_flits=4)
        net.send(packet)
        sim.run()
        assert packet.delivered_at is not None

    def test_bus_serializes_everything(self):
        sim, net = make_net(bus, n=4)
        packets = [Packet(src=i, dst=(i + 1) % 4, size_flits=10) for i in range(4)]
        for packet in packets:
            net.send(packet)
        sim.run()
        finish_times = sorted(p.delivered_at for p in packets)
        # Each 10-flit packet holds the single medium for 10 cycles.
        gaps = [b - a for a, b in zip(finish_times, finish_times[1:])]
        assert all(gap >= 10.0 for gap in gaps)

    def test_bus_utilization_uses_shared_medium(self):
        sim, net = make_net(bus, n=4)
        net.send(Packet(src=0, dst=1, size_flits=8))
        sim.run()
        assert net.peak_link_utilization() > 0


class TestContention:
    def test_contention_increases_latency(self):
        """Two packets fighting for one link: the loser waits."""
        sim = Simulator()
        net = Network(sim, ring(4))
        a = Packet(src=0, dst=1, size_flits=8)
        b = Packet(src=0, dst=1, size_flits=8)
        net.send(a)
        net.send(b)
        sim.run()
        assert b.latency > a.latency

    def test_router_delay_adds_per_hop(self):
        sim_fast = Simulator()
        fast = Network(sim_fast, mesh(16), router_delay=1.0)
        sim_slow = Simulator()
        slow = Network(sim_slow, mesh(16), router_delay=5.0)
        assert slow.zero_load_latency(0, 15) > fast.zero_load_latency(0, 15)

    def test_negative_router_delay_rejected(self):
        with pytest.raises(ValueError):
            Network(Simulator(), mesh(16), router_delay=-1.0)
