"""Unit tests for topology builders."""

import pytest

from repro.noc.topology import (
    Topology,
    TopologyKind,
    bus,
    crossbar,
    fat_tree,
    make_topology,
    mesh,
    ring,
    star,
    torus,
    tree,
)


class TestValidation:
    def test_edge_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Topology(TopologyKind.RING, 2, [(0, 5)], [0, 1])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology(TopologyKind.RING, 2, [(1, 1)], [0, 1])

    def test_bad_terminal_attachment_rejected(self):
        with pytest.raises(ValueError):
            Topology(TopologyKind.RING, 2, [(0, 1)], [0, 9])

    def test_auto_name(self):
        topo = Topology(TopologyKind.RING, 3, [(0, 1), (1, 2), (2, 0)], [0, 1, 2])
        assert topo.name == "ring-3"


class TestBus:
    def test_single_router(self):
        topo = bus(8)
        assert topo.num_routers == 1
        assert topo.num_links == 0
        assert topo.num_terminals == 8

    def test_minimum_terminals(self):
        with pytest.raises(ValueError):
            bus(1)


class TestRing:
    def test_structure(self):
        topo = ring(8)
        assert topo.num_routers == 8
        assert topo.num_links == 16  # bidirectional
        # Every router has exactly two out-neighbours.
        assert all(len(topo.neighbors(r)) == 2 for r in range(8))

    def test_minimum(self):
        with pytest.raises(ValueError):
            ring(2)


class TestMesh:
    def test_4x4(self):
        topo = mesh(16)
        assert topo.num_routers == 16
        # 2*W*H - W - H undirected edges, doubled.
        assert topo.num_links == 2 * (2 * 16 - 4 - 4)

    def test_explicit_width(self):
        topo = mesh(12, width=4)
        assert topo.name == "mesh-4x3"

    def test_non_rectangular_rejected(self):
        with pytest.raises(ValueError):
            mesh(12, width=5)

    def test_corner_degree(self):
        topo = mesh(16)
        assert len(topo.neighbors(0)) == 2       # corner
        assert len(topo.neighbors(5)) == 4       # interior


class TestTorus:
    def test_wraparound_degree(self):
        topo = torus(16)
        assert all(len(topo.neighbors(r)) == 4 for r in range(16))

    def test_small_dimension_rejected(self):
        with pytest.raises(ValueError):
            torus(4)  # 2x2


class TestTree:
    def test_binary_tree_16(self):
        topo = tree(16, arity=2)
        assert topo.num_routers == 15 + 16
        # Terminals attach to leaf routers only.
        assert all(r >= 15 for r in topo.terminal_router)

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            tree(8, arity=1)


class TestFatTree:
    def test_16_terminals(self):
        topo = fat_tree(16)
        assert topo.num_terminals == 16
        assert topo.num_routers == 6  # 4 leaves + 2 roots

    def test_uneven_terminals_supported(self):
        topo = fat_tree(21)
        assert topo.num_terminals == 21
        assert max(topo.terminal_router) < topo.num_routers

    def test_leaf_root_bipartite(self):
        topo = fat_tree(16)
        leaves = set(topo.terminal_router)
        for u, v in topo.edges:
            assert (u in leaves) != (v in leaves)

    def test_minimum(self):
        with pytest.raises(ValueError):
            fat_tree(1)


class TestCrossbar:
    def test_complete_graph(self):
        topo = crossbar(6)
        assert topo.num_links == 6 * 5

    def test_highest_wiring_cost(self):
        """The crossbar's quadratic cost (E10's cost axis)."""
        n = 16
        xbar = crossbar(n).wiring_cost()
        for build in (ring, mesh, fat_tree, star):
            assert xbar > build(n).wiring_cost()


class TestStar:
    def test_center_router(self):
        topo = star(8)
        assert topo.num_routers == 9
        assert all(r != 8 for r in topo.terminal_router)


class TestMakeTopology:
    @pytest.mark.parametrize("kind", list(TopologyKind))
    def test_all_kinds_buildable_at_16(self, kind):
        topo = make_topology(kind, 16)
        assert topo.num_terminals == 16
        assert topo.kind is kind

    def test_string_kind(self):
        assert make_topology("mesh", 16).kind is TopologyKind.MESH


class TestCostMetrics:
    def test_degree_histogram_sums_to_routers(self):
        topo = mesh(16)
        assert sum(topo.degree_histogram().values()) == topo.num_routers

    def test_wiring_cost_positive(self):
        for build in (bus, ring, mesh, torus, tree, fat_tree, crossbar, star):
            assert build(16).wiring_cost() > 0
