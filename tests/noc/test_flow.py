"""Flow-level NoC mode: equivalence against the event-driven model.

The validity envelope asserted here is the one documented in
``docs/performance.md``: below saturation the flow model's average
latency tracks DES within 35% and peak link utilization within 0.15
absolute; saturation verdicts agree at clearly-stable and
clearly-overloaded operating points; and sweeping offered load yields
the same saturation-point ordering across topologies.
"""

import pytest

from repro.noc.flow import FlowModel, demand_matrix, flow_traffic_metrics
from repro.noc.metrics import saturation_load, simulate_traffic
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.topology import bus, crossbar, fat_tree, mesh, ring, torus, tree
from repro.noc.traffic import TrafficPattern
from repro.sim.core import Simulator

LATENCY_RTOL = 0.35
UTIL_ATOL = 0.15


def both_modes(topology, load, duration=2000.0, **kwargs):
    des = simulate_traffic(
        topology, TrafficPattern.UNIFORM, load,
        duration=duration, warmup=duration / 4, mode="des", **kwargs
    )
    flow = simulate_traffic(
        topology, TrafficPattern.UNIFORM, load,
        duration=duration, warmup=duration / 4, mode="flow", **kwargs
    )
    return des, flow


class TestDemandMatrix:
    def test_uniform_rows_sum_to_offered_load(self):
        topo = mesh(16)
        demand = demand_matrix(topo, TrafficPattern.UNIFORM, 0.3)
        for src in range(16):
            assert sum(demand[src]) == pytest.approx(0.3)
            assert demand[src][src] == 0.0

    def test_deterministic_pattern_concentrates(self):
        topo = mesh(16)
        demand = demand_matrix(topo, TrafficPattern.NEIGHBOR, 0.2)
        for src in range(16):
            assert demand[src][(src + 1) % 16] == pytest.approx(0.2)
            assert sum(demand[src]) == pytest.approx(0.2)

    def test_hotspot_mix(self):
        topo = mesh(16)
        demand = demand_matrix(
            topo, TrafficPattern.HOTSPOT, 0.2, hotspot=3,
            hotspot_fraction=0.5,
        )
        # A non-hotspot source sends half its load to the hotspot plus
        # its uniform share; the hotspot itself sprays uniformly.
        assert demand[0][3] == pytest.approx(0.5 * 0.2 + 0.5 * 0.2 / 15)
        assert sum(demand[0]) == pytest.approx(0.2)
        assert demand[3][3] == 0.0
        assert sum(demand[3]) == pytest.approx(0.2)

    def test_rejects_nonpositive_load(self):
        with pytest.raises(ValueError):
            demand_matrix(mesh(4), TrafficPattern.UNIFORM, 0.0)


class TestFlowVersusDes:
    @pytest.mark.parametrize("terminals", [4, 16])
    def test_mesh_low_load_latency_and_util(self, terminals):
        des, flow = both_modes(mesh(terminals), 0.1)
        assert flow.avg_latency == pytest.approx(
            des.avg_latency, rel=LATENCY_RTOL
        )
        assert flow.peak_link_utilization == pytest.approx(
            des.peak_link_utilization, abs=UTIL_ATOL
        )
        assert flow.saturated == des.saturated == False  # noqa: E712
        assert flow.accepted_load == pytest.approx(
            des.accepted_load, rel=0.15
        )

    def test_mesh_mid_load_stays_unsaturated_in_both(self):
        des, flow = both_modes(mesh(16), 0.3)
        assert not des.saturated and not flow.saturated
        assert flow.avg_latency == pytest.approx(
            des.avg_latency, rel=LATENCY_RTOL
        )

    def test_bus_agrees_on_both_sides_of_saturation(self):
        topo = bus(8)
        des_lo, flow_lo = both_modes(topo, 0.05)
        assert not des_lo.saturated and not flow_lo.saturated
        assert flow_lo.avg_latency == pytest.approx(
            des_lo.avg_latency, rel=LATENCY_RTOL
        )
        # 8 terminals sharing one flit/cycle saturate well below 0.4.
        des_hi, flow_hi = both_modes(topo, 0.4)
        assert des_hi.saturated and flow_hi.saturated
        # Both cap accepted throughput at the medium's capacity share.
        assert flow_hi.accepted_load == pytest.approx(
            des_hi.accepted_load, rel=0.15
        )

    def test_zero_load_latency_matches_event_model_exactly(self):
        for topo in (mesh(16), ring(8), fat_tree(16), bus(8)):
            sim = Simulator()
            network = Network(sim, topo)
            model = FlowModel(topo)
            for src, dst in ((0, topo.num_terminals // 2), (1, 2)):
                if topo.kind.value == "bus":
                    continue  # Network's bus zero-load omits ejection
                assert model.zero_load_latency(src, dst) == pytest.approx(
                    network.zero_load_latency(src, dst)
                )

    def test_saturation_point_ordering_matches_des(self):
        """The acceptance check: no ordering inversion on E10 topologies."""
        loads = [0.1, 0.3, 0.6, 0.9]
        builders = [bus, ring, tree, mesh, torus, fat_tree, crossbar]
        des_sat = {}
        flow_sat = {}
        for build in builders:
            topo = build(16)
            des_sat[topo.name] = saturation_load(
                topo, TrafficPattern.UNIFORM, loads=loads,
                duration=1200.0, warmup=300.0, mode="des",
            )
            flow_sat[topo.name] = saturation_load(
                topo, TrafficPattern.UNIFORM, loads=loads,
                duration=1200.0, warmup=300.0, mode="flow",
            )
        names = list(des_sat)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if des_sat[a] < des_sat[b]:
                    assert flow_sat[a] <= flow_sat[b], (
                        f"{a} saturates before {b} under DES "
                        f"({des_sat[a]} < {des_sat[b]}) but after under "
                        f"flow ({flow_sat[a]} > {flow_sat[b]})"
                    )
                elif des_sat[a] > des_sat[b]:
                    assert flow_sat[a] >= flow_sat[b]
        # The paper-level anchors hold in both modes.
        assert des_sat["bus-16"] == min(des_sat.values())
        assert flow_sat["bus-16"] == min(flow_sat.values())
        assert flow_sat["crossbar-16"] == max(flow_sat.values())


class TestFlowModeNetwork:
    def test_flow_mode_delivery_latency_is_zero_load(self):
        topo = mesh(16)
        sim_des, sim_flow = Simulator(), Simulator()
        des = Network(sim_des, topo)
        flow = Network(sim_flow, topo, mode="flow")
        delivered = {}
        for name, net, sim in (("des", des, sim_des), ("flow", flow, sim_flow)):
            packet = Packet(src=0, dst=13, size_flits=4)
            net.send(packet, on_deliver=lambda p, n=name: delivered.update({n: p}))
            sim.run()
        # One uncontended packet: identical timing in both modes.
        assert delivered["flow"].latency == pytest.approx(
            delivered["des"].latency
        )

    def test_flow_mode_accounts_link_utilization(self):
        topo = mesh(16)
        sim = Simulator()
        network = Network(sim, topo, mode="flow")
        for i in range(20):
            network.send(Packet(src=0, dst=15, size_flits=4))
        sim.run()
        assert network.delivered_packets == 20
        assert network.peak_link_utilization() > 0.0

    def test_flow_mode_bus_delivers(self):
        topo = bus(8)
        sim = Simulator()
        network = Network(sim, topo, mode="flow")
        network.send(Packet(src=0, dst=5, size_flits=4))
        sim.run()
        assert network.delivered_packets == 1
        assert network._bus.flits_carried == 4

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown NoC mode"):
            Network(Simulator(), mesh(4), mode="flit")
        with pytest.raises(ValueError, match="unknown NoC mode"):
            simulate_traffic(
                mesh(4), TrafficPattern.UNIFORM, 0.1, mode="flit"
            )


class TestFlowMetricsShape:
    def test_flow_metrics_deterministic(self):
        a = flow_traffic_metrics(mesh(16), TrafficPattern.UNIFORM, 0.25)
        b = flow_traffic_metrics(
            mesh(16), TrafficPattern.UNIFORM, 0.25, seed=99
        )
        assert a == b  # seed is ignored: expectations, not sample paths

    def test_row_shape_matches_des(self):
        des, flow = both_modes(mesh(4), 0.1, duration=800.0)
        assert set(des.as_row()) == set(flow.as_row())

    def test_wait_capped_at_run_scale(self):
        # Near-critical utilization must not explode the M/D/1 pole.
        metrics = flow_traffic_metrics(
            ring(16), TrafficPattern.UNIFORM, 0.5, duration=4000.0
        )
        assert metrics.avg_latency < 10 * 4000.0

    @pytest.mark.parametrize(
        "build", [bus, ring, tree, mesh, torus, fat_tree, crossbar]
    )
    def test_latency_monotone_in_offered_load(self, build):
        """The stable/overloaded wait branches meet continuously at
        rho = 1: latency must never *drop* as load rises through a
        link's capacity (a discontinuity there can misorder
        saturation points)."""
        topo = build(16)
        previous = 0.0
        for load in [round(0.05 * i, 2) for i in range(1, 21)]:
            metrics = flow_traffic_metrics(
                topo, TrafficPattern.UNIFORM, load,
                duration=4000.0, warmup=1000.0,
            )
            assert metrics.avg_latency >= previous - 1e-9, (
                topo.name, load, previous, metrics.avg_latency,
            )
            previous = metrics.avg_latency

    def test_rejects_bad_warmup(self):
        with pytest.raises(ValueError):
            flow_traffic_metrics(
                mesh(4), TrafficPattern.UNIFORM, 0.1,
                duration=100.0, warmup=100.0,
            )
