"""Unit tests for IPv4 packet processing."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.apps.ipv4 import (
    Ipv4Header,
    build_header,
    checksum16,
    decrement_ttl,
    fast_path,
    parse_header,
    verify_checksum,
)
from repro.apps.lpm import LpmTrie


class TestChecksum:
    def test_rfc1071_example(self):
        """The classic RFC 1071 worked example."""
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        # Sum = 0x00 01 + 0xF2 03 + 0xF4 F5 + 0xF6 F7 = 0x2DDF0 -> 0xDDF2
        assert checksum16(data) == (~0xDDF2) & 0xFFFF

    def test_odd_length_padded(self):
        assert checksum16(b"\x01") == checksum16(b"\x01\x00")

    def test_zero_data(self):
        assert checksum16(b"\x00" * 20) == 0xFFFF

    def test_built_header_validates(self):
        header = build_header(src=0x0A000001, dst=0xC0A80101)
        assert verify_checksum(header)

    def test_corrupted_header_fails(self):
        header = bytearray(build_header(src=1, dst=2))
        header[8] ^= 0xFF  # flip TTL bits
        assert not verify_checksum(bytes(header))


class TestParseBuild:
    def test_roundtrip_fields(self):
        header = build_header(
            src=0x0A000001, dst=0xC0A80101, ttl=17, protocol=6,
            total_length=1500, identification=0xBEEF, dscp=0x2E,
        )
        parsed = parse_header(header)
        assert parsed.version == 4
        assert parsed.ihl == 5
        assert parsed.src == 0x0A000001
        assert parsed.dst == 0xC0A80101
        assert parsed.ttl == 17
        assert parsed.protocol == 6
        assert parsed.total_length == 1500
        assert parsed.identification == 0xBEEF
        assert parsed.dscp == 0x2E

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError, match="20"):
            parse_header(b"\x45\x00")

    def test_validity_checks(self):
        good = parse_header(build_header(src=1, dst=2))
        assert good.is_valid()
        bad_version = Ipv4Header(6, 5, 0, 40, 0, 0, 0, 64, 17, 0, 1, 2)
        assert not bad_version.is_valid()
        dead = Ipv4Header(4, 5, 0, 40, 0, 0, 0, 0, 17, 0, 1, 2)
        assert not dead.is_valid()


class TestTtl:
    def test_decrement_preserves_checksum_validity(self):
        header = build_header(src=1, dst=2, ttl=64)
        rewritten = decrement_ttl(header)
        assert verify_checksum(rewritten)
        assert parse_header(rewritten).ttl == 63

    def test_zero_ttl_rejected(self):
        header = build_header(src=1, dst=2, ttl=64)
        # Forge ttl=0 via build with ttl=0 is invalid; craft directly.
        raw = bytearray(header)
        raw[8] = 0
        with pytest.raises(ValueError):
            decrement_ttl(bytes(raw))


class TestFastPath:
    @pytest.fixture
    def table(self):
        trie = LpmTrie()
        trie.insert(0x0A000000, 8, 1)
        trie.insert(0xC0A80000, 16, 2)
        return trie

    def test_forwarded_packet(self, table):
        header = build_header(src=0x01010101, dst=0xC0A80105)
        hop, rewritten = fast_path(header, table)
        assert hop == 2
        assert parse_header(rewritten).ttl == 63

    def test_no_route_drops(self, table):
        header = build_header(src=1, dst=0x08080808)
        assert fast_path(header, table) == (None, None)

    def test_bad_checksum_drops(self, table):
        header = bytearray(build_header(src=1, dst=0x0A000001))
        header[10] ^= 0xFF
        assert fast_path(bytes(header), table) == (None, None)

    def test_ttl_expiry_drops(self, table):
        header = build_header(src=1, dst=0x0A000001, ttl=1)
        assert fast_path(header, table) == (None, None)


@given(
    src=st.integers(min_value=0, max_value=2**32 - 1),
    dst=st.integers(min_value=0, max_value=2**32 - 1),
    ttl=st.integers(min_value=1, max_value=255),
    protocol=st.integers(min_value=0, max_value=255),
    ident=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_property_build_parse_roundtrip(src, dst, ttl, protocol, ident):
    header = build_header(src=src, dst=dst, ttl=ttl, protocol=protocol,
                          identification=ident)
    assert verify_checksum(header)
    parsed = parse_header(header)
    assert (parsed.src, parsed.dst, parsed.ttl, parsed.protocol,
            parsed.identification) == (src, dst, ttl, protocol, ident)


@given(
    data=st.binary(min_size=2, max_size=64).filter(lambda b: len(b) % 2 == 0)
)
def test_property_checksum_detects_single_word_corruption(data):
    """Appending the checksum makes the total sum verify; flipping any
    16-bit word breaks it."""
    checksum = checksum16(data)
    message = data + struct.pack(">H", checksum)
    assert checksum16(message) == 0
    corrupted = bytearray(message)
    corrupted[0] ^= 0x55
    if bytes(corrupted) != message:
        assert checksum16(bytes(corrupted)) != 0
