"""Integration tests for the StepNP IPv4 experiment (E14)."""

import pytest

from repro.apps.stepnp_ipv4 import run_ipv4_on_stepnp, thread_sweep
from repro.dsoc.broker import ReplicaPolicy


@pytest.fixture(scope="module")
def mt_run():
    """The headline configuration: 16 PEs x 8 threads, 100+ cycle table."""
    return run_ipv4_on_stepnp(
        num_pes=16, threads_per_pe=8, packets=800, extra_table_latency=100.0
    )


@pytest.fixture(scope="module")
def st_run():
    """Single-threaded control."""
    return run_ipv4_on_stepnp(
        num_pes=16, threads_per_pe=1, packets=800, extra_table_latency=100.0
    )


class TestHeadlineResult:
    def test_line_rate_sustained_with_multithreading(self, mt_run):
        """Section 7.2: 10 Gbit line rate with >100-cycle NoC latency."""
        assert mt_run.line_rate_sustained
        assert mt_run.sustained_gbps > 9.0

    def test_near_full_utilization_with_multithreading(self, mt_run):
        assert mt_run.avg_pe_utilization > 0.85

    def test_single_thread_collapses(self, st_run):
        assert not st_run.line_rate_sustained
        assert st_run.sustained_gbps < 6.0
        assert st_run.avg_pe_utilization < 0.6

    def test_multithreading_beats_single_thread(self, mt_run, st_run):
        assert mt_run.sustained_gbps > 1.5 * st_run.sustained_gbps
        assert mt_run.avg_pe_utilization > 1.5 * st_run.avg_pe_utilization

    def test_packets_accounted(self, mt_run):
        assert mt_run.packets_forwarded + mt_run.packets_dropped > 0
        assert mt_run.packets_processed <= mt_run.packets_offered

    def test_load_spread_across_pes(self, mt_run):
        """Round-robin should keep the slowest PE near the average."""
        assert mt_run.min_pe_utilization > 0.5 * mt_run.avg_pe_utilization


class TestSweep:
    def test_thread_sweep_monotone(self):
        results = thread_sweep(
            thread_counts=(1, 4), packets=400, extra_table_latency=100.0
        )
        assert results[0].sustained_gbps < results[1].sustained_gbps

    def test_latency_hurts_single_thread_only(self):
        low_lat = run_ipv4_on_stepnp(
            num_pes=16, threads_per_pe=1, packets=400, extra_table_latency=0.0
        )
        high_lat = run_ipv4_on_stepnp(
            num_pes=16, threads_per_pe=1, packets=400,
            extra_table_latency=150.0,
        )
        assert high_lat.sustained_gbps < low_lat.sustained_gbps

    def test_shortest_queue_policy_close_to_round_robin(self):
        """Under perfectly symmetric deterministic load, strict round
        robin is optimal; shortest-queue must stay close (it wins when
        service times vary, which this trace's do only mildly)."""
        result = run_ipv4_on_stepnp(
            num_pes=16,
            threads_per_pe=8,
            packets=400,
            extra_table_latency=100.0,
            policy=ReplicaPolicy.SHORTEST_QUEUE,
        )
        assert result.sustained_gbps > 8.0
        assert result.avg_pe_utilization > 0.8

    def test_mesh_topology_also_works(self):
        """The harness runs on any topology; the mesh's longer average
        hop count costs a little throughput vs the SPIN fat tree."""
        result = run_ipv4_on_stepnp(
            num_pes=16, threads_per_pe=8, packets=400,
            extra_table_latency=50.0, topology="mesh",
        )
        assert result.sustained_gbps > 8.0
        assert result.avg_pe_utilization > 0.8

    def test_as_row_fields(self):
        result = run_ipv4_on_stepnp(num_pes=4, threads_per_pe=2, packets=100)
        row = result.as_row()
        assert {"pes", "threads", "offered_gbps", "sustained_gbps",
                "utilization", "line_rate"} <= set(row)


class TestScaling:
    def test_fewer_pes_cannot_sustain(self):
        """4 PEs cannot absorb 240 cycles/packet at 16-cycle arrivals."""
        result = run_ipv4_on_stepnp(
            num_pes=4, threads_per_pe=8, packets=400,
            extra_table_latency=100.0,
        )
        assert not result.line_rate_sustained
        assert result.avg_pe_utilization > 0.9  # saturated, not idle

    def test_half_line_rate_easy_for_16_pes(self):
        result = run_ipv4_on_stepnp(
            num_pes=16, threads_per_pe=8, packets=400,
            line_rate_gbps=5.0, extra_table_latency=100.0,
        )
        assert result.line_rate_sustained
        assert result.avg_pe_utilization < 0.6
