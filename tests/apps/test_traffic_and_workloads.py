"""Unit tests for traffic generation and the multimedia/wireless workloads."""

import pytest

from repro.apps.ipv4 import parse_header, verify_checksum
from repro.apps.multimedia import (
    FRAME_RATE_TARGETS,
    frame_rate_on_platform,
    meets_target,
    video_pipeline_graph,
)
from repro.apps.trafficgen import (
    PacketTrace,
    build_trie,
    random_prefix_table,
    worst_case_trace,
)
from repro.apps.wireless import (
    RECEIVE_CHAIN,
    SYMBOL_RATE_HZ,
    WlanBaseband,
    wlan_power_comparison,
)
from repro.mapping.dse import make_platform_model


class TestPrefixTable:
    def test_requested_count(self):
        table = random_prefix_table(100, seed=3)
        assert len(table) == 100

    def test_default_route_included(self):
        table = random_prefix_table(10)
        assert (0, 0, 0) in table

    def test_prefixes_are_mask_aligned(self):
        for prefix, length, _hop in random_prefix_table(300, seed=4):
            if length < 32 and length > 0:
                assert prefix & ((1 << (32 - length)) - 1) == 0

    def test_deterministic_per_seed(self):
        assert random_prefix_table(50, seed=9) == random_prefix_table(50, seed=9)
        assert random_prefix_table(50, seed=9) != random_prefix_table(50, seed=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_prefix_table(0)


class TestWorstCaseTrace:
    def test_paper_line_rate_arithmetic(self):
        """40B packets at 10 Gb/s on a 500 MHz SoC: 16-cycle spacing."""
        table = random_prefix_table(100)
        trace = worst_case_trace(10, table)
        assert trace.interarrival_cycles == pytest.approx(16.0)

    def test_headers_are_valid_ipv4(self):
        table = random_prefix_table(100)
        trace = worst_case_trace(50, table)
        for header in trace.headers:
            assert verify_checksum(header)
            assert parse_header(header).is_valid()

    def test_hit_fraction_honoured(self):
        table = random_prefix_table(500, seed=5)
        trie = build_trie(table)
        trace = worst_case_trace(400, table, hit_fraction=1.0, seed=6)
        hits = sum(
            trie.lookup(parse_header(h).dst)[0] is not None
            for h in trace.headers
        )
        assert hits == 400

    def test_validation(self):
        table = random_prefix_table(10)
        with pytest.raises(ValueError):
            worst_case_trace(0, table)
        with pytest.raises(ValueError):
            worst_case_trace(1, table, hit_fraction=1.5)
        with pytest.raises(ValueError):
            PacketTrace(headers=[], packet_bytes=10, line_rate_gbps=10,
                        clock_ghz=0.5)


class TestMultimedia:
    def test_pipeline_is_dag_with_slices(self):
        graph = video_pipeline_graph(parallel_slices=4)
        assert len(graph.topological_order()) == len(graph)
        assert "idct.0" in graph.tasks and "idct.3" in graph.tasks

    def test_dsp_platform_faster_than_risc_only(self):
        risc_only = make_platform_model(8, "mesh", dsp_fraction=0.0)
        with_dsp = make_platform_model(8, "mesh", dsp_fraction=0.5)
        assert frame_rate_on_platform(with_dsp) > frame_rate_on_platform(
            risc_only
        )

    def test_more_slices_enable_more_parallelism(self):
        platform = make_platform_model(8, "mesh", dsp_fraction=0.5)
        serial = frame_rate_on_platform(platform, parallel_slices=1)
        parallel = frame_rate_on_platform(platform, parallel_slices=8)
        assert parallel > serial

    def test_meets_target_api(self):
        platform = make_platform_model(16, "mesh", dsp_fraction=0.5)
        assert isinstance(meets_target(platform, "dvd_sd"), bool)
        with pytest.raises(KeyError):
            meets_target(platform, "flying_car")

    def test_targets_table(self):
        assert FRAME_RATE_TARGETS["dvd_sd"] == 30.0

    def test_graph_validation(self):
        with pytest.raises(ValueError):
            video_pipeline_graph(macroblocks_per_frame=0)
        with pytest.raises(ValueError):
            video_pipeline_graph(parallel_slices=0)


class TestWireless:
    def test_all_hardwired_lowest_power(self):
        report = wlan_power_comparison()
        assert report["all_hardwired"]["power_mw"] < report["all_dsp"]["power_mw"]
        assert (
            report["all_hardwired"]["power_mw"]
            < report["all_efpga"]["power_mw"]
        )

    def test_efpga_pays_10x_over_hardwired(self):
        report = wlan_power_comparison()
        ratio = (
            report["all_efpga"]["power_mw"]
            / report["all_hardwired"]["power_mw"]
        )
        assert 5.0 < ratio <= 10.5

    def test_hardwired_meets_symbol_rate(self):
        report = wlan_power_comparison()
        assert report["all_hardwired"]["feasible"]

    def test_mixed_between_extremes(self):
        report = wlan_power_comparison()
        assert (
            report["all_hardwired"]["power_mw"]
            <= report["mixed"]["power_mw"]
            <= report["all_dsp"]["power_mw"] + report["all_efpga"]["power_mw"]
        )

    def test_assignment_validation(self):
        with pytest.raises(ValueError):
            WlanBaseband(assignment={"fft64": "magic"})

    def test_stage_times_positive(self):
        baseband = WlanBaseband(
            assignment={s.name: "hardwired" for s in RECEIVE_CHAIN}
        )
        for stage in RECEIVE_CHAIN:
            assert baseband.stage_time_us(stage) > 0
        assert baseband.symbol_time_us() < 1e6 / SYMBOL_RATE_HZ * len(RECEIVE_CHAIN)
