"""Unit and property tests for the LPM trie (NPSE) and CAM baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cam import CamTable, TcamModel
from repro.apps.lpm import LpmTrie, linear_scan_lookup
from repro.apps.trafficgen import build_cam, build_trie, random_prefix_table


class TestTrieBasics:
    def test_stride_must_divide_32(self):
        with pytest.raises(ValueError):
            LpmTrie(stride=7)

    def test_empty_trie_misses(self):
        trie = LpmTrie()
        hop, accesses = trie.lookup(0x0A000001)
        assert hop is None
        assert accesses >= 1

    def test_exact_32bit_prefix(self):
        trie = LpmTrie()
        trie.insert(0xC0A80101, 32, 7)
        assert trie.lookup(0xC0A80101)[0] == 7
        assert trie.lookup(0xC0A80102)[0] is None

    def test_shorter_prefix_covers_range(self):
        trie = LpmTrie()
        trie.insert(0x0A000000, 8, 3)  # 10/8
        assert trie.lookup(0x0A123456)[0] == 3
        assert trie.lookup(0x0B000000)[0] is None

    def test_longest_prefix_wins(self):
        trie = LpmTrie()
        trie.insert(0x0A000000, 8, 1)
        trie.insert(0x0A0A0000, 16, 2)
        trie.insert(0x0A0A0A00, 24, 3)
        assert trie.lookup(0x0A0A0A05)[0] == 3
        assert trie.lookup(0x0A0A0505)[0] == 2
        assert trie.lookup(0x0A050505)[0] == 1

    def test_insert_order_irrelevant(self):
        """Longer-first insertion must not be shadowed by shorter-later."""
        trie = LpmTrie()
        trie.insert(0x0A0A0000, 16, 2)
        trie.insert(0x0A000000, 8, 1)  # shorter inserted after longer
        assert trie.lookup(0x0A0A0001)[0] == 2

    def test_default_route(self):
        trie = LpmTrie()
        trie.insert(0, 0, 99)
        assert trie.lookup(0xDEADBEEF)[0] == 99

    def test_non_stride_aligned_prefix_expansion(self):
        trie = LpmTrie(stride=8)
        trie.insert(0xAC100000, 12, 5)  # 172.16/12
        assert trie.lookup(0xAC1F0001)[0] == 5  # 172.31.x
        assert trie.lookup(0xAC200001)[0] is None  # 172.32.x

    def test_prefix_validation(self):
        trie = LpmTrie()
        with pytest.raises(ValueError):
            trie.insert(0x01, 8, 1)  # bits below mask
        with pytest.raises(ValueError):
            trie.insert(0, 33, 1)
        with pytest.raises(ValueError):
            trie.insert(0, 8, -1)

    def test_address_validation(self):
        with pytest.raises(ValueError):
            LpmTrie().lookup(1 << 32)

    def test_accesses_bounded_by_levels(self):
        trie = LpmTrie(stride=8)
        trie.insert(0xC0A80100, 24, 1)
        _hop, accesses = trie.lookup(0xC0A80123)
        assert 1 <= accesses <= trie.levels

    def test_wider_stride_fewer_accesses(self):
        narrow = LpmTrie(stride=4)
        wide = LpmTrie(stride=16)
        for trie in (narrow, wide):
            trie.insert(0xC0A80000, 16, 1)
        assert wide.lookup(0xC0A81234)[1] < narrow.lookup(0xC0A81234)[1]

    def test_stats_accounting(self):
        trie = LpmTrie(stride=8)
        table = random_prefix_table(200, seed=1)
        for prefix, length, hop in table:
            trie.insert(prefix, length, hop)
        stats = trie.stats()
        assert stats.prefixes == 200
        assert stats.nodes >= 1
        assert stats.sram_kbytes > 0
        assert stats.worst_case_accesses == 4


class TestCam:
    def test_priority_match(self):
        cam = CamTable()
        cam.insert(0x0A000000, 8, 1)
        cam.insert(0x0A0A0000, 16, 2)
        hop, _energy = cam.lookup(0x0A0A0001)
        assert hop == 2

    def test_miss(self):
        cam = CamTable()
        cam.insert(0x0A000000, 8, 1)
        assert cam.lookup(0x0B000000)[0] is None

    def test_search_energy_scales_with_entries(self):
        small = TcamModel.for_entries(1_000)
        large = TcamModel.for_entries(100_000)
        assert large.search_energy_pj == pytest.approx(
            100 * small.search_energy_pj
        )

    def test_validation(self):
        cam = CamTable()
        with pytest.raises(ValueError):
            cam.insert(0x01, 8, 1)
        with pytest.raises(ValueError):
            cam.lookup(-1)
        with pytest.raises(ValueError):
            TcamModel.for_entries(0)

    def test_area_factor(self):
        model = TcamModel.for_entries(100)
        assert model.area_sram_equivalent_bits == pytest.approx(2 * model.bits)


class TestTrieVsCamEquivalence:
    def test_same_answers_on_generated_table(self):
        table = random_prefix_table(500, seed=11)
        trie = build_trie(table)
        cam = build_cam(table)
        probes = [p | 0x10101 for p, _l, _h in table[:200]]
        for address in probes:
            address &= 0xFFFFFFFF
            assert trie.lookup(address)[0] == cam.lookup(address)[0]


# --- hypothesis oracle: trie == linear scan over random tables ---------------

_prefix_entry = st.tuples(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=255),
).map(
    lambda t: (
        (t[0] & ~((1 << (32 - t[1])) - 1)) & 0xFFFFFFFF if t[1] < 32 else t[0],
        t[1],
        t[2],
    )
)


@given(
    table=st.lists(_prefix_entry, min_size=0, max_size=40),
    probes=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=20
    ),
    stride=st.sampled_from([4, 8, 16]),
)
@settings(max_examples=200, deadline=None)
def test_property_trie_matches_linear_scan(table, probes, stride):
    """The trie implements exact LPM semantics for arbitrary tables.

    Oracle note: when two table entries share (prefix, length) with
    different next hops, both implementations legitimately keep either;
    we deduplicate those before comparing.
    """
    seen = {}
    for prefix, length, hop in table:
        seen[(prefix, length)] = hop
    clean_table = [(p, l, h) for (p, l), h in seen.items()]
    trie = LpmTrie(stride=stride)
    for prefix, length, hop in clean_table:
        trie.insert(prefix, length, hop)
    for address in probes:
        expected = linear_scan_lookup(clean_table, address)
        got, _accesses = trie.lookup(address)
        # Ambiguity: multiple same-length prefixes can match only if they
        # are identical (dedup above), so the answer must be exact...
        # unless two different-length prefixes tie in hop value; LPM picks
        # by length, which linear_scan_lookup does too.
        assert got == expected, (
            f"trie={got} scan={expected} addr={address:#010x} "
            f"table={clean_table}"
        )


@given(
    table=st.lists(_prefix_entry, min_size=1, max_size=30),
    stride=st.sampled_from([4, 8]),
)
@settings(max_examples=100, deadline=None)
def test_property_every_inserted_prefix_base_address_hits(table, stride):
    seen = {}
    for prefix, length, hop in table:
        seen[(prefix, length)] = hop
    trie = LpmTrie(stride=stride)
    for (prefix, length), hop in seen.items():
        trie.insert(prefix, length, hop)
    for (prefix, length), _hop in seen.items():
        got, _accesses = trie.lookup(prefix)
        assert got is not None  # base address always matches something


class TestBulkOperations:
    """insert_many/lookup_many must be exact equivalents of the
    one-at-a-time API (the bulk paths reorder inserts internally)."""

    def _tries(self, table, stride):
        sequential = LpmTrie(stride=stride)
        for prefix, length, hop in table:
            sequential.insert(prefix, length, hop)
        bulk = LpmTrie(stride=stride)
        bulk.insert_many(table)
        return sequential, bulk

    @pytest.mark.parametrize("stride", [2, 4, 8])
    def test_insert_many_matches_sequential_inserts(self, stride):
        table = random_prefix_table(2000, seed=5)
        sequential, bulk = self._tries(table, stride)
        assert sequential.stats() == bulk.stats()
        probes = [(p | 0x0101) & 0xFFFFFFFF for p, _l, _h in table[:300]]
        assert bulk.lookup_many(probes) == [
            sequential.lookup(a) for a in probes
        ]

    def test_insert_many_default_route_and_overrides(self):
        # Default route, a covering /8 and a more-specific /16 —
        # insertion order scrambled; longest prefix must still win.
        table = [
            (0x0A0B0000, 16, 3),
            (0, 0, 9),
            (0x0A000000, 8, 7),
        ]
        sequential, bulk = self._tries(table, 8)
        for address, expected in (
            (0x0A0B0C0D, 3),
            (0x0A990000, 7),
            (0xC0000001, 9),
        ):
            assert bulk.lookup(address) == sequential.lookup(address)
            assert bulk.lookup(address)[0] == expected

    def test_insert_many_equal_length_later_entry_wins(self):
        table = [(0x0A000000, 8, 1), (0x0A000000, 8, 2)]
        sequential, bulk = self._tries(table, 8)
        assert sequential.lookup(0x0A000001)[0] == 2
        assert bulk.lookup(0x0A000001)[0] == 2

    def test_insert_many_into_nonempty_trie_keeps_longer_prefixes(self):
        # The sorted-overwrite fast path only applies to empty tries;
        # bulk-loading on top of existing entries must not clobber a
        # pre-existing longer prefix with a shorter one.
        trie = LpmTrie(stride=8)
        trie.insert(0x08000000, 6, 7)
        trie.insert_many([(0x00000000, 4, 1)])
        assert trie.lookup(0x08000001)[0] == 7
        reference = LpmTrie(stride=8)
        reference.insert(0x08000000, 6, 7)
        reference.insert(0x00000000, 4, 1)
        assert trie.stats() == reference.stats()
        assert trie.lookup(0x00000001) == reference.lookup(0x00000001)

    def test_lookup_many_validates_addresses(self):
        trie = build_trie(random_prefix_table(10, seed=1))
        with pytest.raises(ValueError):
            trie.lookup_many([1 << 32])

    @given(
        table=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 32) - 1),
                st.integers(min_value=0, max_value=32),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=1,
            max_size=25,
        ),
        stride=st.sampled_from([4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bulk_equals_sequential(self, table, stride):
        # Mask host bits so entries are valid prefixes.
        table = [
            ((p >> (32 - l) << (32 - l)) if l else 0, l, h)
            for p, l, h in table
        ]
        sequential, bulk = self._tries(table, stride)
        assert sequential.stats() == bulk.stats()
        probes = [p for p, _l, _h in table] + [0, 0xFFFFFFFF]
        assert bulk.lookup_many(probes) == [
            sequential.lookup(a) for a in probes
        ]


class TestPrefixTableGeneration:
    def test_matches_reference_choices_draws(self):
        """The inlined bisect draw must replicate rng.choices exactly."""
        from repro.apps.trafficgen import PREFIX_LENGTH_WEIGHTS
        from repro.sim.rng import RandomStreams

        rng = RandomStreams(5).get("prefix_table")
        lengths = [l for l, _w in PREFIX_LENGTH_WEIGHTS]
        weights = [w for _l, w in PREFIX_LENGTH_WEIGHTS]
        reference = [(0, 0, 0)]
        seen = set()
        while len(reference) < 500:
            length = rng.choices(lengths, weights)[0]
            value = rng.getrandbits(length) << (32 - length)
            if (value, length) in seen:
                continue
            seen.add((value, length))
            reference.append((value, length, rng.randrange(16)))
        assert random_prefix_table(500, seed=5) == reference
