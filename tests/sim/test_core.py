"""Unit tests for the simulation kernel core."""

import pytest

from repro.sim.core import Event, SimulationError, Simulator, Timeout


class TestSimulatorClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_empty_returns_current_time(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_run_until_advances_clock_with_empty_queue(self):
        sim = Simulator()
        assert sim.run(until=50.0) == 50.0
        assert sim.now == 50.0

    def test_schedule_executes_at_delay(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10.0]

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(7.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_orders_same_time_events(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("low"), priority=1)
        sim.schedule(5.0, lambda: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("early"))
        sim.schedule(100.0, lambda: fired.append("late"))
        sim.run(until=50.0)
        assert fired == ["early"]
        assert sim.now == 50.0
        sim.run()
        assert fired == ["early", "late"]

    def test_events_executed_counter(self):
        sim = Simulator()
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_peek_returns_next_event_time(self):
        sim = Simulator()
        sim.schedule(42.0, lambda: None)
        assert sim.peek() == 42.0

    def test_peek_empty_is_infinite(self):
        assert Simulator().peek() == float("inf")

    def test_run_steps_limits_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        executed = sim.run_steps(4)
        assert executed == 4
        assert fired == [0, 1, 2, 3]

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(5.0, lambda: times.append(sim.now))

        sim.schedule(10.0, outer)
        sim.run()
        assert times == [10.0, 15.0]


class TestRunStepsHorizon:
    def test_until_leaves_later_events_queued(self):
        sim = Simulator()
        fired = []
        for delay in (10.0, 20.0, 100.0):
            sim.schedule(delay, lambda d=delay: fired.append(d))
        executed = sim.run_steps(10, until=50.0)
        assert executed == 2
        assert fired == [10.0, 20.0]
        assert sim.now == 50.0  # clock advanced exactly to the horizon

    def test_until_not_advanced_when_budget_exhausted(self):
        sim = Simulator()
        for delay in (10.0, 20.0, 30.0):
            sim.schedule(delay, lambda: None)
        executed = sim.run_steps(1, until=50.0)
        assert executed == 1
        assert sim.now == 10.0  # eligible events remain; clock stays put

    def test_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        assert sim.run_steps(5, until=42.0) == 0
        assert sim.now == 42.0

    def test_stepped_matches_free_running(self):
        """Stepping one event at a time replays run() exactly."""

        def build(sim, log):
            def proc(name, delay):
                for _ in range(4):
                    yield Timeout(delay)
                    log.append((name, sim.now))

            sim.spawn(proc("a", 3.0))
            sim.spawn(proc("b", 2.0))

        free_sim = Simulator()
        free_log = []
        build(free_sim, free_log)
        free_sim.run(until=9.0)

        step_sim = Simulator()
        step_log = []
        build(step_sim, step_log)
        while step_sim.run_steps(1, until=9.0):
            pass
        assert step_log == free_log
        assert step_sim.now == free_sim.now
        assert step_sim.events_executed == free_sim.events_executed


class TestSameTimeBatching:
    def test_callbacks_scheduled_mid_batch_join_it(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: (order.append("first"),
                                   sim.schedule(0.0, lambda: order.append("nested"))))
        sim.schedule(5.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "nested"]
        assert sim.now == 5.0

    def test_event_trigger_outside_run_dispatches_on_next_run(self):
        sim = Simulator()
        seen = []
        event = sim.event()
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed("x")
        sim.run()
        assert seen == ["x"]
        # Callbacks added after triggering never fire (unchanged rule).
        event.callbacks.append(lambda ev: seen.append("late"))
        sim.run()
        assert seen == ["x"]


class TestEvent:
    def test_event_starts_pending(self):
        event = Simulator().event("e")
        assert not event.triggered

    def test_succeed_sets_value(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(99)
        assert event.triggered
        assert event.ok
        assert event.value == 99

    def test_fail_requires_exception(self):
        event = Simulator().event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_fail_records_not_ok(self):
        event = Simulator().event()
        event.fail(RuntimeError("boom"))
        assert event.triggered
        assert not event.ok

    def test_double_trigger_rejected(self):
        event = Simulator().event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_ok_before_trigger_raises(self):
        event = Simulator().event("pending")
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_callbacks_fire_on_run(self):
        sim = Simulator()
        event = sim.event()
        seen = []
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed("payload")
        assert seen == []  # callbacks are scheduled, not immediate
        sim.run()
        assert seen == ["payload"]


class TestTimeout:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.5)

    def test_zero_delay_allowed(self):
        assert Timeout(0).delay == 0.0

    def test_value_carried(self):
        assert Timeout(1, value="x").value == "x"


class TestCombinators:
    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        events = [sim.event(f"e{i}") for i in range(3)]
        combined = sim.all_of(events)
        results = []
        combined.callbacks.append(lambda ev: results.append(ev.value))
        events[1].succeed("b")
        events[0].succeed("a")
        sim.run()
        assert results == []
        events[2].succeed("c")
        sim.run()
        assert results == [["a", "b", "c"]]

    def test_all_of_empty_succeeds_immediately(self):
        sim = Simulator()
        combined = sim.all_of([])
        assert combined.triggered
        assert combined.value == []

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        events = [sim.event(f"e{i}") for i in range(3)]
        combined = sim.any_of(events)
        events[2].succeed("winner")
        sim.run()
        assert combined.triggered
        assert combined.value == "winner"

    def test_any_of_with_already_triggered_event(self):
        sim = Simulator()
        done = sim.event()
        done.succeed(7)
        combined = sim.any_of([done, sim.event()])
        assert combined.triggered
        assert combined.value == 7


class TestDeterminism:
    def test_identical_runs_replay_identically(self):
        def build_and_run():
            sim = Simulator()
            log = []

            def proc(name, delay):
                for _ in range(3):
                    yield Timeout(delay)
                    log.append((name, sim.now))

            sim.spawn(proc("a", 3.0))
            sim.spawn(proc("b", 2.0))
            sim.run()
            return log

        assert build_and_run() == build_and_run()
