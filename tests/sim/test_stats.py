"""Unit tests for statistics collectors."""

import math
import statistics

import pytest

from repro.sim.stats import Counter, Histogram, Sampler, TimeWeighted, summarize


class TestCounter:
    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_reset(self):
        counter = Counter()
        counter.increment(10)
        counter.reset()
        assert counter.value == 0


class TestSampler:
    def test_empty_sampler(self):
        sampler = Sampler()
        assert sampler.count == 0
        assert sampler.mean == 0.0
        assert sampler.variance == 0.0

    def test_mean_matches_statistics_module(self):
        values = [1.5, 2.5, 3.0, 10.0, -4.0, 0.25]
        sampler = Sampler()
        sampler.extend(values)
        assert sampler.mean == pytest.approx(statistics.mean(values))

    def test_variance_matches_statistics_module(self):
        values = [3.0, 7.0, 7.0, 19.0, 2.0]
        sampler = Sampler()
        sampler.extend(values)
        assert sampler.variance == pytest.approx(statistics.variance(values))

    def test_min_max_total(self):
        sampler = Sampler()
        sampler.extend([5.0, -2.0, 9.0])
        assert sampler.minimum == -2.0
        assert sampler.maximum == 9.0
        assert sampler.total == 12.0

    def test_single_value_variance_zero(self):
        sampler = Sampler()
        sampler.add(7.0)
        assert sampler.variance == 0.0
        assert sampler.stdev == 0.0


class TestHistogram:
    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram(10, 10, 5)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            Histogram(0, 10, 0)

    def test_binning(self):
        hist = Histogram(0, 10, 10)
        for value in [0.5, 1.5, 1.7, 9.9]:
            hist.add(value)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1

    def test_underflow_overflow(self):
        hist = Histogram(0, 10, 5)
        hist.add(-1)
        hist.add(10)
        hist.add(100)
        assert hist.underflow == 1
        assert hist.overflow == 2
        assert hist.total == 3

    def test_bin_edges(self):
        edges = Histogram(0, 10, 5).bin_edges()
        assert edges == [0, 2, 4, 6, 8, 10]

    def test_quantile_median(self):
        hist = Histogram(0, 100, 100)
        for value in range(100):
            hist.add(value + 0.5)
        assert hist.quantile(0.5) == pytest.approx(50, abs=2)

    def test_quantile_bounds_check(self):
        with pytest.raises(ValueError):
            Histogram(0, 1, 1).quantile(1.5)

    def test_quantile_empty(self):
        assert Histogram(0, 10, 5).quantile(0.5) == 0


class TestTimeWeighted:
    def test_constant_level(self):
        tw = TimeWeighted()
        tw.update(0.0, 3.0)
        assert tw.average(10.0) == pytest.approx(3.0)

    def test_step_change(self):
        tw = TimeWeighted()
        tw.update(0.0, 0.0)
        tw.update(5.0, 10.0)
        # 0 for 5 units, 10 for 5 units -> average 5.
        assert tw.average(10.0) == pytest.approx(5.0)

    def test_adjust_accumulates(self):
        tw = TimeWeighted()
        tw.adjust(0.0, 2.0)
        tw.adjust(10.0, 3.0)
        assert tw.level == 5.0

    def test_time_backwards_rejected(self):
        tw = TimeWeighted()
        tw.update(10.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(5.0, 2.0)

    def test_peak_tracked(self):
        tw = TimeWeighted()
        tw.update(0.0, 2.0)
        tw.update(1.0, 9.0)
        tw.update(2.0, 1.0)
        assert tw.peak == 9.0

    def test_average_before_start_is_zero(self):
        tw = TimeWeighted(start_time=5.0)
        assert tw.average(5.0) == 0.0


class TestSummarize:
    def test_summary_dict(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["n"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_summary_empty(self):
        summary = summarize([])
        assert summary["n"] == 0
        assert summary["mean"] == 0.0
