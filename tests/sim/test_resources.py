"""Unit tests for Resource and Store."""

import pytest

from repro.sim.core import SimulationError, Simulator, Timeout
from repro.sim.resources import Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_grant_immediate_when_free(self):
        sim = Simulator()
        res = Resource(sim)
        grant = res.request()
        assert grant.triggered
        assert res.in_use == 1

    def test_release_without_hold_raises(self):
        res = Resource(Simulator())
        with pytest.raises(SimulationError):
            res.release()

    def test_fifo_queueing(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def worker(i):
            yield res.request()
            order.append(i)
            yield Timeout(1)
            res.release()

        for i in range(4):
            sim.spawn(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_capacity_two_admits_two(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finish = []

        def worker(i):
            yield res.request()
            yield Timeout(10)
            res.release()
            finish.append((i, sim.now))

        for i in range(4):
            sim.spawn(worker(i))
        sim.run()
        assert [t for _i, t in finish] == [10.0, 10.0, 20.0, 20.0]

    def test_queue_length_tracks_waiters(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.queue_length == 2

    def test_utilization_full_load(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def worker():
            yield from res.use(10)

        sim.spawn(worker())
        sim.run()
        assert res.utilization() == pytest.approx(1.0)

    def test_utilization_half_load(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def worker():
            yield from res.use(10)
            yield Timeout(10)

        sim.spawn(worker())
        sim.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_grants_counter(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)

        def worker():
            yield from res.use(1)

        for _ in range(5):
            sim.spawn(worker())
        sim.run()
        assert res.grants == 5

    def test_use_releases_on_completion(self):
        sim = Simulator()
        res = Resource(sim)

        def worker():
            yield from res.use(5)

        sim.spawn(worker())
        sim.run()
        assert res.in_use == 0


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        got = store.get()
        assert got.triggered
        assert got.value == "item"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        log = []

        def consumer():
            item = yield store.get()
            log.append((item, sim.now))

        def producer():
            yield Timeout(7)
            store.put("late")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert log == [("late", 7.0)]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = [store.get().value for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks_when_full(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        log = []

        def producer():
            for i in range(4):
                yield store.put(i)
                log.append((i, sim.now))

        def consumer():
            yield Timeout(10)
            yield store.get()
            yield store.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        # First two puts immediate; the rest wait for the consumer at t=10.
        assert log[0][1] == 0.0 and log[1][1] == 0.0
        assert log[2][1] == 10.0 and log[3][1] == 10.0

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        assert store.try_put("a")
        assert not store.try_put("b")
        assert len(store) == 1

    def test_try_get_empty(self):
        ok, item = Store(Simulator()).try_get()
        assert not ok
        assert item is None

    def test_try_get_returns_item(self):
        sim = Simulator()
        store = Store(sim)
        store.put(3)
        ok, item = store.try_get()
        assert ok and item == 3

    def test_put_hands_directly_to_waiting_getter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        log = []

        def consumer():
            item = yield store.get()
            log.append(item)

        sim.spawn(consumer())
        sim.run()  # consumer now waiting
        store.put("direct")
        sim.run()
        assert log == ["direct"]
        assert len(store) == 0

    def test_peak_occupancy(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(7):
            store.put(i)
        for _ in range(3):
            store.get()
        assert store.peak_occupancy == 7

    def test_counters(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        store.get()
        assert store.total_puts == 2
        assert store.total_gets == 1
