"""Unit tests for deterministic random streams."""

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(seed=1)
        assert streams.get("a") is streams.get("a")

    def test_same_seed_reproduces_draws(self):
        a = RandomStreams(seed=42).get("traffic")
        b = RandomStreams(seed=42).get("traffic")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=42)
        a = [streams.get("x").random() for _ in range(5)]
        b = [streams.get("y").random() for _ in range(5)]
        assert a != b

    def test_adding_consumer_does_not_perturb_existing(self):
        """The whole point: draws of stream 'a' are identical whether or
        not stream 'b' exists."""
        solo = RandomStreams(seed=7)
        solo_draws = [solo.get("a").random() for _ in range(5)]

        mixed = RandomStreams(seed=7)
        mixed.get("b").random()  # interleaved consumer
        mixed_draws = [mixed.get("a").random() for _ in range(5)]
        assert solo_draws == mixed_draws

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("s").random()
        b = RandomStreams(seed=2).get("s").random()
        assert a != b

    def test_fork_is_independent_of_parent(self):
        parent = RandomStreams(seed=3)
        child = parent.fork("worker")
        assert parent.get("s").random() != child.get("s").random()

    def test_fork_deterministic(self):
        a = RandomStreams(seed=3).fork("w").get("s").random()
        b = RandomStreams(seed=3).fork("w").get("s").random()
        assert a == b

    def test_reset_rederives(self):
        streams = RandomStreams(seed=5)
        first = streams.get("s").random()
        streams.reset()
        assert streams.get("s").random() == first
