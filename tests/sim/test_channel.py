"""Unit tests for Channel and LatencyChannel."""

import pytest

from repro.sim.core import SimulationError, Simulator, Timeout
from repro.sim.channel import Channel, LatencyChannel


class TestChannel:
    def test_send_receive(self):
        sim = Simulator()
        channel = Channel(sim)
        log = []

        def consumer():
            message = yield channel.receive()
            log.append(message)

        sim.spawn(consumer())
        channel.send("hello")
        sim.run()
        assert log == ["hello"]

    def test_depth_and_delivered(self):
        sim = Simulator()
        channel = Channel(sim)
        channel.send(1)
        channel.send(2)
        assert channel.depth == 2
        channel.receive()
        sim.run()
        assert channel.delivered == 1

    def test_preserves_order(self):
        sim = Simulator()
        channel = Channel(sim)
        log = []

        def consumer():
            for _ in range(3):
                message = yield channel.receive()
                log.append(message)

        sim.spawn(consumer())
        for i in range(3):
            channel.send(i)
        sim.run()
        assert log == [0, 1, 2]


class TestLatencyChannel:
    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            LatencyChannel(Simulator(), latency=-1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(SimulationError):
            LatencyChannel(Simulator(), latency=1, bandwidth=0)

    def test_message_arrives_after_latency(self):
        sim = Simulator()
        channel = LatencyChannel(sim, latency=25)
        log = []

        def consumer():
            message = yield channel.receive()
            log.append((message, sim.now))

        sim.spawn(consumer())
        channel.send("msg")
        sim.run()
        assert log == [("msg", 25.0)]

    def test_bandwidth_serializes_messages(self):
        sim = Simulator()
        # 0.1 msgs/cycle -> one message every 10 cycles.
        channel = LatencyChannel(sim, latency=5, bandwidth=0.1)
        log = []

        def consumer():
            for _ in range(3):
                message = yield channel.receive()
                log.append((message, sim.now))

        sim.spawn(consumer())
        for i in range(3):
            channel.send(i)
        sim.run()
        # Starts at 0, 10, 20; arrivals at +5.
        assert [t for _m, t in log] == [5.0, 15.0, 25.0]

    def test_infinite_bandwidth_no_serialization(self):
        sim = Simulator()
        channel = LatencyChannel(sim, latency=3)
        log = []

        def consumer():
            for _ in range(2):
                message = yield channel.receive()
                log.append(sim.now)

        sim.spawn(consumer())
        channel.send("a")
        channel.send("b")
        sim.run()
        assert log == [3.0, 3.0]

    def test_sent_counter(self):
        sim = Simulator()
        channel = LatencyChannel(sim, latency=1)
        channel.send(1)
        channel.send(2)
        assert channel.sent == 2

    def test_order_preserved_through_latency(self):
        sim = Simulator()
        channel = LatencyChannel(sim, latency=10, bandwidth=1.0)
        log = []

        def consumer():
            for _ in range(5):
                message = yield channel.receive()
                log.append(message)

        sim.spawn(consumer())
        for i in range(5):
            channel.send(i)
        sim.run()
        assert log == [0, 1, 2, 3, 4]
