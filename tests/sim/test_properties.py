"""Property-based tests for the simulation kernel (hypothesis)."""

import statistics

from hypothesis import given, settings, strategies as st

from repro.sim.core import Simulator, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.stats import Sampler, TimeWeighted


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                       max_size=50))
def test_clock_is_monotone_over_arbitrary_schedules(delays):
    """Events always execute in non-decreasing time order."""
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                       min_size=1, max_size=30))
def test_processes_wake_exactly_after_their_timeout(delays):
    sim = Simulator()
    wakeups = []

    def proc(delay):
        yield Timeout(delay)
        wakeups.append((delay, sim.now))

    for delay in delays:
        sim.spawn(proc(delay))
    sim.run()
    for delay, woke_at in wakeups:
        assert woke_at == delay


@given(items=st.lists(st.integers(), min_size=1, max_size=100))
def test_store_is_fifo_for_any_item_sequence(items):
    sim = Simulator()
    store = Store(sim)
    for item in items:
        store.put(item)
    out = [store.get().value for _ in items]
    assert out == items


@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(st.floats(min_value=0.1, max_value=10.0),
                   min_size=1, max_size=30),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(capacity, holds):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    violations = []

    def worker(hold):
        yield res.request()
        if res.in_use > capacity:
            violations.append(res.in_use)
        yield Timeout(hold)
        res.release()

    for hold in holds:
        sim.spawn(worker(hold))
    sim.run()
    assert not violations
    assert res.in_use == 0
    assert res.grants == len(holds)


@given(values=st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=2, max_size=200,
))
def test_sampler_agrees_with_statistics_module(values):
    sampler = Sampler()
    sampler.extend(values)
    expected = statistics.mean(values)
    assert abs(sampler.mean - expected) <= max(1e-6, abs(expected) * 1e-9) + 1e-6
    assert sampler.minimum == min(values)
    assert sampler.maximum == max(values)
    assert sampler.count == len(values)


@given(
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=100.0),  # duration
            st.floats(min_value=0.0, max_value=50.0),    # level
        ),
        min_size=1,
        max_size=50,
    )
)
def test_time_weighted_average_bounded_by_extremes(steps):
    tw = TimeWeighted()
    now = 0.0
    levels = [0.0]
    for duration, level in steps:
        tw.update(now, level)
        levels.append(level)
        now += duration
    average = tw.average(now)
    assert min(levels) - 1e-9 <= average <= max(levels) + 1e-9


@given(seed_delays=st.lists(st.floats(min_value=0.0, max_value=10.0),
                            min_size=1, max_size=20))
def test_replaying_schedule_is_deterministic(seed_delays):
    def run_once():
        sim = Simulator()
        trace = []

        def proc(i, delay):
            yield Timeout(delay)
            trace.append((i, sim.now))

        for i, delay in enumerate(seed_delays):
            sim.spawn(proc(i, delay))
        sim.run()
        return trace

    assert run_once() == run_once()
