"""Unit tests for generator-based processes."""

import pytest

from repro.sim.core import SimulationError, Simulator, Timeout
from repro.sim.process import Process, ProcessKilled, every


class TestProcessLifecycle:
    def test_spawn_runs_at_current_time(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(sim.now)
            yield Timeout(1)

        sim.spawn(proc())
        assert log == []  # nothing runs until the loop does
        sim.run()
        assert log == [0.0]

    def test_timeout_advances_process(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(5)
            log.append(sim.now)
            yield Timeout(2.5)
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_return_value_available_after_finish(self):
        sim = Simulator()

        def proc():
            yield Timeout(1)
            return 42

        handle = sim.spawn(proc())
        sim.run()
        assert not handle.alive
        assert handle.result == 42

    def test_result_before_finish_raises(self):
        sim = Simulator()

        def proc():
            yield Timeout(100)

        handle = sim.spawn(proc())
        with pytest.raises(SimulationError):
            _ = handle.result

    def test_yield_none_resumes_same_time(self):
        sim = Simulator()
        log = []

        def proc():
            yield None
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0.0]

    def test_unsupported_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestProcessJoin:
    def test_join_receives_return_value(self):
        sim = Simulator()
        log = []

        def child():
            yield Timeout(10)
            return "done"

        def parent():
            handle = sim.spawn(child())
            value = yield handle
            log.append((value, sim.now))

        sim.spawn(parent())
        sim.run()
        assert log == [("done", 10.0)]

    def test_join_on_finished_process(self):
        sim = Simulator()
        log = []

        def child():
            yield Timeout(1)
            return 5

        handle = sim.spawn(child())

        def parent():
            yield Timeout(20)  # child long finished
            value = yield handle
            log.append((value, sim.now))

        sim.spawn(parent())
        sim.run()
        assert log == [(5, 20.0)]


class TestEventWaiting:
    def test_wait_receives_event_value(self):
        sim = Simulator()
        gate = sim.event("gate")
        log = []

        def proc():
            value = yield gate
            log.append(value)

        sim.spawn(proc())
        sim.schedule(5.0, lambda: gate.succeed("open"))
        sim.run()
        assert log == ["open"]

    def test_failed_event_raises_in_process(self):
        sim = Simulator()
        gate = sim.event()
        log = []

        def proc():
            try:
                yield gate
            except RuntimeError as exc:
                log.append(str(exc))

        sim.spawn(proc())
        sim.schedule(1.0, lambda: gate.fail(RuntimeError("broken")))
        sim.run()
        assert log == ["broken"]


class TestKill:
    def test_kill_stops_process(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                while True:
                    yield Timeout(1)
                    log.append(sim.now)
            except ProcessKilled:
                log.append("killed")
                raise

        handle = sim.spawn(proc())
        sim.schedule(3.5, handle.kill)
        sim.run()
        assert log[-1] == "killed"
        assert not handle.alive

    def test_kill_finished_process_is_noop(self):
        sim = Simulator()

        def proc():
            yield Timeout(1)

        handle = sim.spawn(proc())
        sim.run()
        handle.kill()  # must not raise
        assert not handle.alive


class TestEvery:
    def test_periodic_action(self):
        sim = Simulator()
        ticks = []
        every(sim, 10.0, lambda: ticks.append(sim.now))
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]
