"""Unit and property tests for the FlexWare-lite toolchain."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flexware.codegen import compile_to_risc
from repro.flexware.ir import IrError, IrOp, IrProgram, fir_ir
from repro.flexware.targets import cost_on_target, retargeting_report


def simple_program():
    """(a + b) * (a ^ 5)"""
    program = IrProgram()
    a = program.new_input()
    b = program.new_input()
    t_sum = program.emit("add", a, b)
    five = program.emit("const", imm=5)
    t_xor = program.emit("xor", a, five)
    out = program.emit("mul", t_sum, t_xor)
    program.set_output(out)
    return program, a, b


class TestIr:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(IrError, match="unknown opcode"):
            IrOp("frob", 0, ())

    def test_arity_checked(self):
        with pytest.raises(IrError, match="sources"):
            IrOp("add", 0, (1,))

    def test_store_has_no_dst(self):
        with pytest.raises(IrError):
            IrOp("store", 5, (1, 2))

    def test_use_before_def_rejected(self):
        program = IrProgram()
        a = program.new_input()
        program.ops.append(IrOp("add", 99, (a, 98)))
        with pytest.raises(IrError, match="undefined"):
            program.validate()

    def test_evaluate_simple(self):
        program, a, b = simple_program()
        # (3 + 4) * (3 ^ 5) = 7 * 6 = 42
        assert program.evaluate({a: 3, b: 4}) == 42

    def test_evaluate_wraps_32bit(self):
        program = IrProgram()
        a = program.new_input()
        out = program.emit("mul", a, a)
        program.set_output(out)
        assert program.evaluate({a: 1 << 20}) == 0  # 2^40 mod 2^32

    def test_memory_ops(self):
        program = IrProgram()
        addr = program.new_input()
        value = program.emit("load", addr)
        doubled = program.emit("add", value, value)
        program.set_output(doubled)
        assert program.evaluate({addr: 100}, memory={100: 21}) == 42

    def test_missing_inputs_rejected(self):
        program, a, b = simple_program()
        with pytest.raises(IrError, match="inputs"):
            program.evaluate({a: 1})

    def test_live_ranges(self):
        program, a, b = simple_program()
        ranges = program.live_ranges()
        assert ranges[a] == (-1, 2)   # used by add (0) and xor (2)
        assert ranges[program.output][1] == len(program.ops)


class TestCodegen:
    def test_simple_program_executes_correctly(self):
        program, a, b = simple_program()
        compiled = compile_to_risc(program)
        result, _cpu = compiled.run({a: 3, b: 4})
        assert result == 42

    def test_matches_evaluator_on_fir(self):
        program = fir_ir(taps=8)
        memory = {i: (i + 1) * 3 for i in range(8)}       # samples at 0..7
        memory.update({0x100 + i: i + 1 for i in range(8)})  # coeffs
        sample_base, coeff_base = program.inputs
        expected = program.evaluate(
            {sample_base: 0, coeff_base: 0x100}, memory=dict(memory)
        )
        compiled = compile_to_risc(program)
        result, _cpu = compiled.run(
            {sample_base: 0, coeff_base: 0x100}, memory=memory
        )
        assert result == expected

    def test_spilling_kicks_in_under_pressure(self):
        """More than 12 simultaneously-live temps forces spills."""
        program = IrProgram()
        inputs = [program.new_input() for _ in range(16)]
        acc = program.emit("add", inputs[0], inputs[1])
        for temp in inputs[2:]:
            acc = program.emit("add", acc, temp)
        program.set_output(acc)
        compiled = compile_to_risc(program)
        assert compiled.spill_slots > 0
        result, _cpu = compiled.run({t: i + 1 for i, t in enumerate(inputs)})
        assert result == sum(range(1, 17))

    def test_output_required(self):
        program = IrProgram()
        program.new_input()
        with pytest.raises(IrError, match="output"):
            compile_to_risc(program)

    def test_stores_visible_in_memory(self):
        program = IrProgram()
        addr = program.new_input()
        value = program.emit("const", imm=99)
        program.emit("store", addr, value)
        program.set_output(value)
        compiled = compile_to_risc(program)
        _result, cpu = compiled.run({addr: 0x40})
        assert cpu.memory[0x40] == 99


class TestTargets:
    def test_dsp_fuses_macs_on_fir(self):
        program = fir_ir(taps=16)
        dsp = cost_on_target(program, "dsp")
        risc = cost_on_target(program, "gp_risc")
        assert dsp.fused_macs == 16
        assert dsp.cycles < risc.cycles

    def test_asip_collapses_taps(self):
        program = fir_ir(taps=16)
        asip = cost_on_target(program, "asip")
        assert asip.collapsed_taps == 16
        assert asip.cycles < cost_on_target(program, "dsp").cycles

    def test_figure1_ordering_emerges_from_code(self):
        """The Figure-1 spectrum, derived bottom-up: risc > dsp > asip
        cycles on the domain kernel."""
        rows = retargeting_report(fir_ir(taps=32))
        order = [row["target"] for row in rows]
        assert order == ["asip", "dsp", "gp_risc"]
        assert rows[0]["speedup_vs_risc"] > rows[1]["speedup_vs_risc"] > 1.0

    def test_no_patterns_no_gain(self):
        """A pattern-free program costs the same everywhere (modulo the
        DSP's cheaper mul)."""
        program = IrProgram()
        a = program.new_input()
        t = program.emit("add", a, a)
        t = program.emit("xor", t, a)
        program.set_output(t)
        asip = cost_on_target(program, "asip")
        risc = cost_on_target(program, "gp_risc")
        assert asip.collapsed_taps == 0
        assert asip.cycles == risc.cycles

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            cost_on_target(fir_ir(2), "quantum")


# --- property test: compiled code == reference evaluator ---------------------

_BINARY = ["add", "sub", "mul", "and", "or", "xor"]


@st.composite
def straight_line_programs(draw):
    """Random SSA programs over arithmetic ops (no memory, to keep the
    address space disjoint from the spill area)."""
    program = IrProgram()
    num_inputs = draw(st.integers(min_value=1, max_value=4))
    temps = [program.new_input() for _ in range(num_inputs)]
    num_ops = draw(st.integers(min_value=1, max_value=25))
    for _ in range(num_ops):
        choice = draw(st.integers(min_value=0, max_value=len(_BINARY) + 1))
        if choice == len(_BINARY):
            temps.append(program.emit("const", imm=draw(
                st.integers(min_value=0, max_value=2**32 - 1))))
        elif choice == len(_BINARY) + 1:
            src = draw(st.sampled_from(temps))
            opcode = draw(st.sampled_from(["shl", "shr"]))
            temps.append(program.emit(opcode, src, imm=draw(
                st.integers(min_value=0, max_value=31))))
        else:
            a = draw(st.sampled_from(temps))
            b = draw(st.sampled_from(temps))
            temps.append(program.emit(_BINARY[choice], a, b))
    program.set_output(draw(st.sampled_from(temps)))
    values = {
        t: draw(st.integers(min_value=0, max_value=2**32 - 1))
        for t in program.inputs
    }
    return program, values


@given(case=straight_line_programs())
@settings(max_examples=150, deadline=None)
def test_property_codegen_matches_evaluator(case):
    """For arbitrary straight-line programs, the compiled RISC binary
    computes exactly what the IR evaluator computes — the toolchain's
    end-to-end correctness invariant."""
    program, values = case
    expected = program.evaluate(dict(values))
    compiled = compile_to_risc(program)
    result, _cpu = compiled.run(values)
    assert result == expected
