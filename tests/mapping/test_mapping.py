"""Unit tests for task graphs, mappers, evaluation and annealing."""

import pytest

from repro.mapping.anneal import anneal_map
from repro.mapping.dse import (
    DesignPoint,
    explore,
    make_platform_model,
    pareto_points,
)
from repro.mapping.evaluate import evaluate_mapping
from repro.noc.routing import cached_routing
from repro.mapping.mapper import (
    MAPPERS,
    communication_aware_map,
    greedy_load_balance_map,
    random_map,
    round_robin_map,
    run_mapper,
)
from repro.mapping.taskgraph import (
    Task,
    TaskGraph,
    fork_join_graph,
    layered_random_graph,
    pipeline_graph,
)
from repro.noc.topology import TopologyKind


class TestTaskGraph:
    def test_duplicate_task_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task("a", 100))
        with pytest.raises(ValueError, match="duplicate"):
            graph.add_task(Task("a", 100))

    def test_edge_to_unknown_task_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task("a", 100))
        with pytest.raises(ValueError, match="unknown"):
            graph.add_edge("a", "ghost", 10)

    def test_self_edge_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task("a", 100))
        with pytest.raises(ValueError, match="self"):
            graph.add_edge("a", "a", 10)

    def test_cycle_rejected_and_rolled_back(self):
        graph = TaskGraph()
        for name in "abc":
            graph.add_task(Task(name, 100))
        graph.add_edge("a", "b", 1)
        graph.add_edge("b", "c", 1)
        with pytest.raises(ValueError, match="cycle"):
            graph.add_edge("c", "a", 1)
        # Rolled back: graph still usable and acyclic.
        assert ("c", "a") not in graph.edges
        assert len(graph.topological_order()) == 3

    def test_topological_order_respects_edges(self):
        graph = layered_random_graph(40, layers=4, seed=2)
        order = {name: i for i, name in enumerate(graph.topological_order())}
        for (src, dst) in graph.edges:
            assert order[src] < order[dst]

    def test_critical_path_bounds_makespan_from_below(self):
        graph = pipeline_graph(5, cycles_per_stage=100)
        assert graph.critical_path_cycles() == pytest.approx(500.0)

    def test_affinity_speedup(self):
        task = Task("t", 1000, (("dsp", 4.0),))
        assert task.cycles_on("dsp") == pytest.approx(250.0)
        assert task.cycles_on("gp_risc") == pytest.approx(1000.0)

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Task("t", -1)


class TestGenerators:
    def test_pipeline_shape(self):
        graph = pipeline_graph(6)
        assert len(graph) == 6
        assert len(graph.edges) == 5

    def test_fork_join_shape(self):
        graph = fork_join_graph(4)
        assert len(graph) == 6  # fork + 4 branches + join
        assert len(graph.edges) == 8

    def test_layered_random_is_dag_and_deterministic(self):
        a = layered_random_graph(30, seed=9)
        b = layered_random_graph(30, seed=9)
        assert set(a.edges) == set(b.edges)
        assert len(a.topological_order()) == 30

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            pipeline_graph(0)
        with pytest.raises(ValueError):
            fork_join_graph(0)
        with pytest.raises(ValueError):
            layered_random_graph(3, layers=5)


class TestMappers:
    @pytest.fixture
    def setup(self):
        graph = layered_random_graph(50, layers=5, seed=4)
        platform = make_platform_model(8, "mesh", dsp_fraction=0.25)
        return graph, platform

    @pytest.mark.parametrize("name", sorted(MAPPERS))
    def test_mapper_produces_valid_mapping(self, setup, name):
        graph, platform = setup
        mapping = run_mapper(name, graph, platform)
        assert set(mapping) == set(graph.tasks)
        assert all(0 <= pe < platform.num_pes for pe in mapping.values())

    def test_unknown_mapper_rejected(self, setup):
        graph, platform = setup
        with pytest.raises(KeyError):
            run_mapper("quantum", graph, platform)

    def test_round_robin_balanced_count(self, setup):
        graph, platform = setup
        mapping = round_robin_map(graph, platform)
        counts = [0] * platform.num_pes
        for pe in mapping.values():
            counts[pe] += 1
        assert max(counts) - min(counts) <= 1

    def test_greedy_balances_load_better_than_random(self, setup):
        graph, platform = setup
        routing = cached_routing(platform.topology)
        greedy = evaluate_mapping(
            graph, platform, greedy_load_balance_map(graph, platform), routing
        )
        rand = evaluate_mapping(
            graph, platform, random_map(graph, platform), routing
        )
        assert greedy.load_imbalance <= rand.load_imbalance

    def test_comm_aware_reduces_byte_hops_vs_round_robin(self, setup):
        graph, platform = setup
        routing = cached_routing(platform.topology)
        comm = evaluate_mapping(
            graph, platform, communication_aware_map(graph, platform), routing
        )
        naive = evaluate_mapping(
            graph, platform, round_robin_map(graph, platform), routing
        )
        assert comm.noc_byte_hops < naive.noc_byte_hops

    def test_automated_beats_naive_makespan(self, setup):
        """Experiment E15's core assertion."""
        graph, platform = setup
        routing = cached_routing(platform.topology)
        best_auto = min(
            evaluate_mapping(
                graph, platform, run_mapper(name, graph, platform), routing
            ).makespan_cycles
            for name in ("greedy_load", "comm_aware")
        )
        naive = min(
            evaluate_mapping(
                graph, platform, run_mapper(name, graph, platform), routing
            ).makespan_cycles
            for name in ("random", "round_robin")
        )
        assert best_auto < naive


class TestEvaluate:
    def test_missing_task_rejected(self):
        graph = pipeline_graph(3)
        platform = make_platform_model(2)
        with pytest.raises(ValueError, match="misses"):
            evaluate_mapping(graph, platform, {"stage0": 0})

    def test_out_of_range_pe_rejected(self):
        graph = pipeline_graph(2)
        platform = make_platform_model(2)
        with pytest.raises(ValueError, match="mapped to PE"):
            evaluate_mapping(graph, platform, {"stage0": 0, "stage1": 7})

    def test_colocated_pipeline_has_zero_comm(self):
        graph = pipeline_graph(4)
        platform = make_platform_model(4)
        cost = evaluate_mapping(
            graph,
            platform,
            {name: 0 for name in graph.tasks},
            cached_routing(platform.topology),
        )
        assert cost.total_comm_cycles == 0.0
        assert cost.makespan_cycles == pytest.approx(graph.total_compute())

    def test_makespan_at_least_critical_path(self):
        graph = layered_random_graph(40, seed=6)
        platform = make_platform_model(8)
        routing = cached_routing(platform.topology)
        for name in sorted(MAPPERS):
            cost = evaluate_mapping(
                graph, platform, run_mapper(name, graph, platform), routing
            )
            assert cost.makespan_cycles >= graph.critical_path_cycles() - 1e-6

    def test_affinity_exploited_by_greedy(self):
        graph = TaskGraph()
        graph.add_task(Task("hot", 1000, (("dsp", 10.0),)))
        platform = make_platform_model(2, dsp_fraction=0.5)
        mapping = greedy_load_balance_map(graph, platform)
        assert platform.pe_kinds[mapping["hot"]] == "dsp"


class TestAnneal:
    def test_anneal_never_worse_than_initial(self):
        graph = layered_random_graph(40, seed=8)
        platform = make_platform_model(6)
        routing = cached_routing(platform.topology)
        initial = round_robin_map(graph, platform)
        initial_cost = evaluate_mapping(graph, platform, initial, routing)
        annealed = anneal_map(graph, platform, initial=initial, iterations=600)
        final_cost = evaluate_mapping(graph, platform, annealed, routing)
        assert final_cost.makespan_cycles <= initial_cost.makespan_cycles

    def test_anneal_deterministic_for_seed(self):
        graph = layered_random_graph(25, seed=8)
        platform = make_platform_model(4)
        a = anneal_map(graph, platform, iterations=200, seed=5)
        b = anneal_map(graph, platform, iterations=200, seed=5)
        assert a == b

    def test_anneal_validation(self):
        graph = pipeline_graph(2)
        platform = make_platform_model(2)
        with pytest.raises(ValueError):
            anneal_map(graph, platform, iterations=0)
        with pytest.raises(ValueError):
            anneal_map(graph, platform, cooling=1.0)


class TestDse:
    def test_explore_full_factorial(self):
        graph = layered_random_graph(20, layers=4, seed=2)
        points = explore(
            graph,
            pe_counts=(4, 8),
            topologies=(TopologyKind.MESH,),
            mappers=("round_robin", "comm_aware"),
        )
        assert len(points) == 2 * 1 * 2

    def test_pareto_front_nondominated(self):
        graph = layered_random_graph(30, layers=4, seed=2)
        points = explore(graph, pe_counts=(2, 4, 8))
        front = pareto_points(points)
        assert front
        for point in front:
            for other in points:
                strictly_better = (
                    other.cost.makespan_cycles < point.cost.makespan_cycles
                    and other.area_proxy <= point.area_proxy
                ) or (
                    other.cost.makespan_cycles <= point.cost.makespan_cycles
                    and other.area_proxy < point.area_proxy
                )
                assert not strictly_better

    def test_more_pes_not_slower(self):
        """With the same mapper, adding PEs never hurts makespan much."""
        graph = layered_random_graph(40, layers=4, seed=2)
        small = make_platform_model(2)
        large = make_platform_model(16)
        small_cost = evaluate_mapping(
            graph,
            small,
            greedy_load_balance_map(graph, small),
            cached_routing(small.topology),
        )
        large_cost = evaluate_mapping(
            graph,
            large,
            greedy_load_balance_map(graph, large),
            cached_routing(large.topology),
        )
        assert large_cost.makespan_cycles <= small_cost.makespan_cycles * 1.05

    def test_make_platform_model_mix(self):
        platform = make_platform_model(8, dsp_fraction=0.25, asip_fraction=0.25)
        assert platform.pe_kinds.count("dsp") == 2
        assert platform.pe_kinds.count("asip") == 2
        assert platform.pe_kinds.count("gp_risc") == 4

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            make_platform_model(4, dsp_fraction=0.8, asip_fraction=0.8)
