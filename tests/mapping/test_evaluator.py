"""Equivalence tests: MappingEvaluator vs the reference evaluator.

The evaluator is a pure optimization — every cost it produces must be
*exactly* equal (same floats, not approximately) to the reference
dict-based ``evaluate_mapping``, and the incremental annealer must be
bit-identical to the seed-era implementation for fixed seeds.  These
tests pin that contract across mesh, torus, fat-tree and bus
topologies with randomized move/swap sequences.
"""

import math
import random

import pytest

from repro.mapping.anneal import anneal_map, default_cost
from repro.mapping.dse import make_platform_model
from repro.mapping.evaluate import evaluate_mapping
from repro.mapping.evaluator import MappingEvaluator
from repro.mapping.mapper import (
    MAPPERS,
    greedy_load_balance_map,
    round_robin_map,
    run_mapper,
)
from repro.mapping.taskgraph import layered_random_graph, pipeline_graph
from repro.noc.routing import build_routing, cached_routing
from repro.sim.rng import RandomStreams

#: (topology kind, PE count) — torus needs a >=3x3 router grid.
TOPOLOGIES = [
    ("mesh", 8),
    ("torus", 9),
    ("fat_tree", 8),
    ("bus", 8),
]


def cost_tuple(cost):
    return (
        cost.makespan_cycles,
        cost.total_comm_cycles,
        cost.load_imbalance,
        cost.noc_byte_hops,
    )


def make_case(kind, num_pes, tasks=40, seed=7):
    graph = layered_random_graph(tasks, layers=5, seed=seed)
    platform = make_platform_model(num_pes, kind, dsp_fraction=0.25)
    return graph, platform


def reference_anneal(
    graph,
    platform,
    initial=None,
    iterations=2000,
    start_temperature=0.10,
    cooling=0.995,
    seed=23,
    cost_fn=default_cost,
):
    """The seed implementation of anneal_map, kept verbatim as oracle:
    dict copies per candidate plus a full re-evaluation each iteration.
    """
    rng = RandomStreams(seed).get("anneal")
    routing = build_routing(platform.topology)
    current = (
        dict(initial) if initial else greedy_load_balance_map(graph, platform)
    )
    names = list(graph.tasks)
    current_cost = cost_fn(evaluate_mapping(graph, platform, current, routing))
    best = dict(current)
    best_cost = current_cost
    temperature = start_temperature * max(current_cost, 1.0)
    for _ in range(iterations):
        candidate = dict(current)
        if rng.random() < 0.7 or len(names) < 2:
            task = rng.choice(names)
            new_pe = rng.randrange(platform.num_pes)
            if new_pe == candidate[task]:
                new_pe = (new_pe + 1) % platform.num_pes
            candidate[task] = new_pe
        else:
            a, b = rng.sample(names, 2)
            candidate[a], candidate[b] = candidate[b], candidate[a]
        candidate_cost = cost_fn(
            evaluate_mapping(graph, platform, candidate, routing)
        )
        delta = candidate_cost - current_cost
        if delta <= 0 or (
            temperature > 1e-12
            and rng.random() < math.exp(-delta / temperature)
        ):
            current = candidate
            current_cost = candidate_cost
            if current_cost < best_cost:
                best = dict(current)
                best_cost = current_cost
        temperature *= cooling
    return best


class TestFullEvaluationEquivalence:
    @pytest.mark.parametrize("kind,num_pes", TOPOLOGIES)
    @pytest.mark.parametrize("mapper", sorted(MAPPERS))
    def test_every_mapper_cost_identical(self, kind, num_pes, mapper):
        graph, platform = make_case(kind, num_pes)
        routing = cached_routing(platform.topology)
        evaluator = MappingEvaluator(graph, platform)
        mapping = run_mapper(mapper, graph, platform)
        reference = evaluate_mapping(graph, platform, mapping, routing)
        fast = evaluator.evaluate(mapping)
        assert cost_tuple(fast) == cost_tuple(reference)

    def test_mapper_name_carried(self):
        graph, platform = make_case("mesh", 8)
        evaluator = MappingEvaluator(graph, platform)
        mapping = round_robin_map(graph, platform)
        assert evaluator.evaluate(mapping, mapper_name="rr").mapper == "rr"

    def test_validation_matches_reference(self):
        graph = pipeline_graph(3)
        platform = make_platform_model(2)
        evaluator = MappingEvaluator(graph, platform)
        with pytest.raises(ValueError, match="misses"):
            evaluator.evaluate({"stage0": 0})
        with pytest.raises(ValueError, match="mapped to PE"):
            evaluator.evaluate(
                {"stage0": 0, "stage1": 9, "stage2": 0}
            )


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("kind,num_pes", TOPOLOGIES)
    def test_random_move_swap_sequences(self, kind, num_pes):
        """Property test: incremental deltas == full re-evaluation."""
        graph, platform = make_case(kind, num_pes)
        routing = cached_routing(platform.topology)
        evaluator = MappingEvaluator(graph, platform)
        state = evaluator.incremental(round_robin_map(graph, platform))
        names = list(graph.tasks)
        rng = random.Random(20_260_730)
        for step in range(150):
            if rng.random() < 0.6:
                moves = [(rng.choice(names), rng.randrange(num_pes))]
            else:
                a, b = rng.sample(names, 2)
                moves = [(a, state.pe_of(b)), (b, state.pe_of(a))]
            candidate = dict(state.mapping())
            for name, pe in moves:
                candidate[name] = pe
            reference = evaluate_mapping(graph, platform, candidate, routing)
            incremental = state.propose(moves)
            assert cost_tuple(incremental) == cost_tuple(reference), (
                kind, step, moves,
            )
            if rng.random() < 0.5:
                state.commit()
                assert state.mapping() == candidate
            else:
                state.reject()
            # The committed state must always match a fresh evaluation.
            committed_ref = evaluate_mapping(
                graph, platform, state.mapping(), routing
            )
            assert cost_tuple(state.cost()) == cost_tuple(committed_ref)

    def test_propose_requires_resolution(self):
        graph, platform = make_case("mesh", 8)
        state = MappingEvaluator(graph, platform).incremental(
            round_robin_map(graph, platform)
        )
        name = next(iter(graph.tasks))
        state.propose([(name, 1)])
        with pytest.raises(RuntimeError, match="unresolved"):
            state.propose([(name, 2)])
        state.reject()
        with pytest.raises(RuntimeError, match="no proposal"):
            state.commit()

    def test_empty_proposal_is_current_cost(self):
        graph, platform = make_case("mesh", 8)
        state = MappingEvaluator(graph, platform).incremental(
            round_robin_map(graph, platform)
        )
        assert cost_tuple(state.propose([])) == cost_tuple(state.cost())


class TestAnnealEquivalence:
    @pytest.mark.parametrize("kind,num_pes", TOPOLOGIES)
    def test_bit_identical_to_seed_implementation(self, kind, num_pes):
        graph, platform = make_case(kind, num_pes, tasks=30)
        expected = reference_anneal(graph, platform, iterations=400, seed=5)
        actual = anneal_map(graph, platform, iterations=400, seed=5)
        assert actual == expected
        routing = cached_routing(platform.topology)
        assert cost_tuple(
            evaluate_mapping(graph, platform, actual, routing)
        ) == cost_tuple(evaluate_mapping(graph, platform, expected, routing))

    def test_shared_evaluator_changes_nothing(self):
        graph, platform = make_case("mesh", 8, tasks=25)
        evaluator = MappingEvaluator(graph, platform)
        alone = anneal_map(graph, platform, iterations=300, seed=9)
        shared = anneal_map(
            graph, platform, iterations=300, seed=9, evaluator=evaluator
        )
        assert alone == shared

    def test_mismatched_evaluator_rejected(self):
        graph, platform = make_case("mesh", 8, tasks=25)
        other = make_platform_model(4, "mesh")
        with pytest.raises(ValueError, match="different platform"):
            anneal_map(
                graph,
                platform,
                iterations=10,
                evaluator=MappingEvaluator(graph, other),
            )
        other_graph = layered_random_graph(25, layers=5, seed=99)
        with pytest.raises(ValueError, match="different graph"):
            anneal_map(
                graph,
                platform,
                iterations=10,
                evaluator=MappingEvaluator(other_graph, platform),
            )

    def test_explicit_initial_respected(self):
        graph, platform = make_case("mesh", 8, tasks=25)
        initial = round_robin_map(graph, platform)
        expected = reference_anneal(
            graph, platform, initial=initial, iterations=200, seed=3
        )
        actual = anneal_map(
            graph, platform, initial=initial, iterations=200, seed=3
        )
        assert actual == expected


class TestImplicitRoutingRemoved:
    """PR 2 deprecated ``routing=None``; PR 3 makes it a hard error."""

    def test_missing_routing_is_a_hard_error(self):
        graph, platform = make_case("mesh", 8)
        mapping = round_robin_map(graph, platform)
        with pytest.raises(TypeError, match="cached_routing"):
            evaluate_mapping(graph, platform, mapping)

    def test_error_points_at_the_evaluator_alternative(self):
        graph, platform = make_case("mesh", 8)
        mapping = round_robin_map(graph, platform)
        with pytest.raises(TypeError, match="MappingEvaluator"):
            evaluate_mapping(graph, platform, mapping, routing=None)

    def test_explicit_routing_accepted(self, recwarn):
        graph, platform = make_case("mesh", 8)
        mapping = round_robin_map(graph, platform)
        evaluate_mapping(
            graph, platform, mapping, cached_routing(platform.topology)
        )
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]


class TestNumpyBatchEvaluation:
    """evaluate_batch must be bit-identical to per-assignment
    evaluation, with numpy on and off, on the A4/E15 seeds."""

    def _case(self, kind="mesh", num_pes=8, tasks=60, seed=3):
        # The exact (tasks, num_pes, seed) of scenarios A4 and E15.
        graph = layered_random_graph(tasks, layers=6, seed=seed)
        platform = make_platform_model(num_pes, kind, dsp_fraction=0.25)
        return graph, platform

    def _random_batch(self, evaluator, count, seed=31):
        rng = random.Random(seed)
        return [
            [rng.randrange(evaluator.num_pes)
             for _ in range(evaluator.num_tasks)]
            for _ in range(count)
        ]

    @pytest.mark.parametrize("kind,num_pes", TOPOLOGIES)
    def test_batch_matches_reference_exactly(self, kind, num_pes):
        graph, platform = self._case(kind, num_pes)
        evaluator = MappingEvaluator(graph, platform)
        routing = cached_routing(platform.topology)
        batch = self._random_batch(evaluator, 16)
        costs = evaluator.evaluate_batch(batch)
        for assign, cost in zip(batch, costs):
            mapping = evaluator.to_mapping(assign)
            reference = evaluate_mapping(graph, platform, mapping, routing)
            assert cost_tuple(cost) == cost_tuple(reference)

    def test_numpy_on_off_bit_identical(self):
        graph, platform = self._case()
        with_np = MappingEvaluator(graph, platform, use_numpy=True)
        without_np = MappingEvaluator(graph, platform, use_numpy=False)
        batch = self._random_batch(with_np, 32)
        on = with_np.evaluate_batch(batch)
        off = without_np.evaluate_batch(batch)
        assert [cost_tuple(c) for c in on] == [cost_tuple(c) for c in off]

    def test_numpy_toggle_does_not_change_scalar_kernels(self):
        graph, platform = self._case(tasks=40, seed=7)
        with_np = MappingEvaluator(graph, platform, use_numpy=True)
        without_np = MappingEvaluator(graph, platform, use_numpy=False)
        mapping = greedy_load_balance_map(graph, platform)
        assert cost_tuple(with_np.evaluate(mapping)) == cost_tuple(
            without_np.evaluate(mapping)
        )
        # Annealing (the E15/A4 hot path) too: identical fixed-seed runs.
        a = anneal_map(graph, platform, iterations=150, evaluator=with_np)
        b = anneal_map(graph, platform, iterations=150, evaluator=without_np)
        assert a == b

    def test_empty_and_single_batches(self):
        graph, platform = self._case(tasks=20)
        evaluator = MappingEvaluator(graph, platform)
        assert evaluator.evaluate_batch([]) == []
        assign = [0] * evaluator.num_tasks
        (single,) = evaluator.evaluate_batch([assign])
        assert cost_tuple(single) == cost_tuple(
            evaluator.evaluate_assignment(assign)
        )

    def test_batch_validates_input(self):
        graph, platform = self._case(tasks=10)
        evaluator = MappingEvaluator(graph, platform)
        with pytest.raises(ValueError, match="length"):
            evaluator.evaluate_batch([[0, 1]])
        with pytest.raises(ValueError, match="out of range"):
            evaluator.evaluate_batch(
                [[99] * evaluator.num_tasks]
            )

    def test_mapper_name_propagates(self):
        graph, platform = self._case(tasks=10)
        evaluator = MappingEvaluator(graph, platform)
        batch = self._random_batch(evaluator, 3)
        costs = evaluator.evaluate_batch(batch, mapper_name="sampled")
        assert all(c.mapper == "sampled" for c in costs)


class TestDseBatchSampling:
    def test_random_candidates_adds_random_best_points(self):
        from repro.mapping.dse import explore
        from repro.mapping.taskgraph import layered_random_graph
        from repro.noc.topology import TopologyKind

        graph = layered_random_graph(20, layers=4, seed=7)
        points = explore(
            graph,
            pe_counts=(4,),
            topologies=(TopologyKind.MESH,),
            random_candidates=25,
        )
        best = [p for p in points if p.mapper == "random_best"]
        assert len(best) == 1
        random_point = next(p for p in points if p.mapper == "random")
        # A 25-sample best is no worse than one random draw... not
        # guaranteed in general, but it must at least be a valid cost.
        assert best[0].cost.makespan_cycles > 0
        assert best[0].area_proxy == random_point.area_proxy
