"""Unit tests for the DFT subsystem (IEEE 1500 wrappers, scheduling, BIST)."""

import pytest

from repro.dft.bist import (
    MARCH_ALGORITHMS,
    logic_bist_coverage,
    memory_bist_cycles,
    memory_bist_time_ms,
    patterns_for_coverage,
)
from repro.dft.schedule import SocTestSchedule, schedule_tests, serial_test_cycles
from repro.dft.wrapper import (
    CoreTestSpec,
    Ieee1500Wrapper,
    WrapperMode,
    balance_tam,
)


def spec(name="core", inputs=32, outputs=32, flops=2000, chains=4,
         patterns=500, power=50.0):
    return CoreTestSpec(
        name=name, inputs=inputs, outputs=outputs, scan_flops=flops,
        internal_chains=chains, patterns=patterns, test_power_mw=power,
    )


class TestWrapper:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            spec(chains=0)
        with pytest.raises(ValueError):
            spec(patterns=0)

    def test_wrapper_cells(self):
        wrapper = Ieee1500Wrapper(spec(inputs=10, outputs=6))
        assert wrapper.wrapper_cells == 16

    def test_chain_length_shrinks_with_tam(self):
        narrow = Ieee1500Wrapper(spec(), tam_width=1)
        wide = Ieee1500Wrapper(spec(), tam_width=8)
        assert wide.scan_chain_length() < narrow.scan_chain_length()
        # The core has 4 internal chains, so width 8 only exploits 4.
        assert wide.effective_width == 4
        assert narrow.scan_chain_length() == pytest.approx(
            4 * wide.scan_chain_length(), rel=0.01
        )

    def test_test_cycles_formula(self):
        wrapper = Ieee1500Wrapper(spec(patterns=10), tam_width=4)
        length = wrapper.scan_chain_length()
        assert wrapper.test_cycles() == 11 * length + 10

    def test_tam_width_validation(self):
        with pytest.raises(ValueError):
            Ieee1500Wrapper(spec(), tam_width=0)

    def test_modes(self):
        wrapper = Ieee1500Wrapper(spec())
        assert wrapper.mode is WrapperMode.FUNCTIONAL
        wrapper.set_mode(WrapperMode.INWARD_FACING)
        assert wrapper.mode is WrapperMode.INWARD_FACING
        assert wrapper.bypass_cycles() == 1

    def test_test_time_ms(self):
        wrapper = Ieee1500Wrapper(spec(), tam_width=4)
        assert wrapper.test_time_ms(50.0) == pytest.approx(
            wrapper.test_cycles() / 50e3
        )


class TestBalanceTam:
    def test_each_core_gets_a_wire(self):
        specs = [spec(name=f"c{i}") for i in range(4)]
        widths = balance_tam(specs, total_width=4)
        assert all(w == 1 for w in widths.values())

    def test_spare_wires_go_to_longest(self):
        big = spec(name="big", flops=50_000, patterns=2000)
        small = spec(name="small", flops=500, patterns=100)
        widths = balance_tam([big, small], total_width=8)
        assert widths["big"] > widths["small"]

    def test_insufficient_width_rejected(self):
        with pytest.raises(ValueError):
            balance_tam([spec(name=f"c{i}") for i in range(4)], total_width=2)


class TestScheduling:
    def test_parallel_beats_serial(self):
        specs = [spec(name=f"c{i}", flops=2000 + 500 * i) for i in range(6)]
        schedule = schedule_tests(specs, tam_width=16)
        assert schedule.total_cycles < serial_test_cycles(specs, 16)

    def test_constraints_validated(self):
        specs = [spec(name=f"c{i}") for i in range(5)]
        schedule = schedule_tests(specs, tam_width=8)
        schedule.validate()  # must not raise
        assert schedule.parallelism_at(1.0) >= 2

    def test_power_budget_serializes(self):
        specs = [spec(name=f"c{i}", power=60.0) for i in range(4)]
        free = schedule_tests(specs, tam_width=16)
        tight = schedule_tests(specs, tam_width=16, power_budget_mw=100.0)
        # Only one 60mW test fits a 100mW budget at a time.
        assert tight.total_cycles > free.total_cycles
        assert max(
            tight.parallelism_at(e.start_cycle) for e in tight.entries
        ) == 1

    def test_all_cores_scheduled_once(self):
        specs = [spec(name=f"c{i}") for i in range(7)]
        schedule = schedule_tests(specs, tam_width=8)
        assert sorted(e.core for e in schedule.entries) == sorted(
            s.name for s in specs
        )

    def test_overcommit_detected_by_validate(self):
        from repro.dft.schedule import ScheduledTest

        schedule = SocTestSchedule(tam_width=2)
        schedule.entries = [
            ScheduledTest("a", 0, 10, 2, 10.0),
            ScheduledTest("b", 5, 15, 2, 10.0),
        ]
        with pytest.raises(ValueError, match="overcommitted"):
            schedule.validate()


class TestBist:
    def test_march_c_is_10n(self):
        # 1 Kbit memory with 1-bit words: 1024 cells x 10 ops.
        assert memory_bist_cycles(1024, word_bits=1) == 10 * 1024

    def test_word_width_divides_work(self):
        assert memory_bist_cycles(1024, word_bits=32) == 10 * 32

    def test_algorithm_complexity_ordering(self):
        assert (
            MARCH_ALGORITHMS["mats+"].operations_per_cell
            < MARCH_ALGORITHMS["march_c-"].operations_per_cell
            < MARCH_ALGORITHMS["march_lr"].operations_per_cell
        )

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            memory_bist_cycles(1024, algorithm="march_xyzzy")

    def test_bist_time_for_platform_sram(self):
        """The StepNP 2MB eSRAM tests in well under a second at 100MHz."""
        assert memory_bist_time_ms(2.0) < 1000.0

    def test_logic_coverage_monotone(self):
        coverages = [logic_bist_coverage(n) for n in (0, 100, 1000, 10000)]
        assert coverages == sorted(coverages)
        assert coverages[0] == 0.0

    def test_logic_coverage_bounded_by_ceiling(self):
        assert logic_bist_coverage(10**7, ceiling=0.99) <= 0.99

    def test_patterns_for_coverage_inverse(self):
        patterns = patterns_for_coverage(0.95)
        assert logic_bist_coverage(patterns) >= 0.95
        assert logic_bist_coverage(patterns // 2) < 0.95

    def test_patterns_validation(self):
        with pytest.raises(ValueError):
            patterns_for_coverage(0.999, ceiling=0.99)
