"""The observability CLI surface: query, status, cache --stats."""

import json

import pytest

from repro.engine.cli import build_parser, main
from repro.engine.results import ScenarioResult
from repro.telemetry.warehouse import ResultsWarehouse


def seed_warehouse(path, rows=3):
    with ResultsWarehouse(path) as wh:
        for i in range(rows):
            wh.record_result(
                ScenarioResult(
                    name="E10",
                    spec_hash=f"hash-{i}",
                    verdict={"ratio": 1.0 + i},
                    elapsed_s=0.1 * (i + 1),
                ),
                job_id="job-cli",
            )
        wh.flush()


class TestParsing:
    def test_query_defaults(self):
        args = build_parser().parse_args(["query"])
        assert args.db is None and args.format == "table"
        assert args.group_by == "scenario" and args.agg is None

    def test_run_and_serve_gained_warehouse(self):
        args = build_parser().parse_args(
            ["run", "--names", "E10", "--warehouse", "wh.sqlite"]
        )
        assert args.warehouse == "wh.sqlite"
        args = build_parser().parse_args(
            ["coordinator", "--warehouse", "wh.sqlite"]
        )
        assert args.warehouse == "wh.sqlite"

    def test_status_defaults(self):
        args = build_parser().parse_args(["status", "--port", "7452"])
        assert args.port == 7452 and not args.watch
        assert args.interval == 2.0


class TestQueryCommand:
    def test_missing_warehouse_is_a_usage_error(self, tmp_path, capsys):
        rc = main(["query", "--db", str(tmp_path / "absent.sqlite")])
        assert rc == 2
        assert "no warehouse" in capsys.readouterr().err

    def test_rows_as_json_round_trip_types(self, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        seed_warehouse(db)
        rc = main(["query", "--db", str(db), "--format", "json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 3
        assert rows[0]["params"] == {}
        assert rows[0]["cached"] is False
        assert rows[0]["headline_value"] == pytest.approx(1.0)
        assert rows[0]["job_id"] == "job-cli"

    def test_table_output_and_filters(self, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        seed_warehouse(db)
        rc = main(["query", "--db", str(db), "--scenario", "E10",
                   "--limit", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E10" in out and "job-cli" in out
        assert out.count("\n") >= 3  # header + rule + 2 rows

    def test_count_and_spec_hash_filter(self, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        seed_warehouse(db)
        rc = main(["query", "--db", str(db), "--count",
                   "--spec-hash", "hash-1"])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_aggregate_json(self, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        seed_warehouse(db)
        rc = main(["query", "--db", str(db), "--agg", "mean:wall_time",
                   "--agg", "count:", "--format", "json"])
        assert rc == 0
        (row,) = json.loads(capsys.readouterr().out)
        assert row["scenario"] == "E10"
        assert row["count"] == 3
        assert row["mean_wall_time_s"] == pytest.approx(0.2)

    def test_bad_aggregate_is_a_usage_error(self, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        seed_warehouse(db)
        rc = main(["query", "--db", str(db), "--agg", "median:wall_time"])
        assert rc == 2
        assert "median" in capsys.readouterr().err

    def test_stats_json(self, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        seed_warehouse(db)
        rc = main(["query", "--db", str(db), "--stats"])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["results"] == 3 and stats["jobs"] == 1

    def test_ingest_trajectory(self, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        trajectory.write_text(json.dumps({"entries": [{
            "recorded_at": "2026-08-01T00:00:00Z",
            "code_version": "v1",
            "workers": 2,
            "tags": ["perf"],
            "per_scenario_wall_s": {"E10": 0.5},
        }]}))
        rc = main(["query", "--db", str(db),
                   "--ingest-trajectory", str(trajectory)])
        assert rc == 0
        assert "ingested 1" in capsys.readouterr().out
        rc = main(["query", "--db", str(db), "--bench-trend",
                   "--format", "json"])
        assert rc == 0
        (row,) = json.loads(capsys.readouterr().out)
        assert row["scenario"] == "E10"
        assert row["wall_time_s"] == pytest.approx(0.5)

    def test_env_fallback_for_the_db_path(self, tmp_path, capsys,
                                          monkeypatch):
        db = tmp_path / "wh.sqlite"
        seed_warehouse(db)
        monkeypatch.setenv("REPRO_WAREHOUSE", str(db))
        rc = main(["query", "--count"])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "3"


class TestCacheStats:
    def test_stats_flag_prints_json(self, tmp_path, capsys):
        rc = main(["cache", "--dir", str(tmp_path), "--stats"])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 0
        assert "code_version" in stats and "root" in stats


class TestRunWarehouse:
    def test_run_records_rows_and_keeps_stdout_clean(self, tmp_path,
                                                     capsys):
        from repro.engine.registry import scenario, unregister

        @scenario("_cli_wh", params={"n": 1})
        def _s(n=1):
            return {"rows": [{"n": n}], "verdict": {"value": 2.0}}

        db = tmp_path / "wh.sqlite"
        try:
            rc = main([
                "run", "--names", "_cli_wh", "--no-cache",
                "--warehouse", str(db),
            ])
        finally:
            unregister("_cli_wh")
        assert rc == 0
        captured = capsys.readouterr()
        # progress went to stderr; stdout is just the report
        assert "_cli_wh" in captured.err
        assert ": 1 executed," in captured.out
        with ResultsWarehouse(db) as wh:
            assert wh.count(scenario="_cli_wh") == 1


class TestStatusCommand:
    def test_status_prints_jobs_and_metrics(self, capsys):
        from repro.service.backend import LocalBackend
        from repro.service.server import BackgroundServer

        with BackgroundServer(LocalBackend(backend="serial")) as bg:
            rc = main(["status", "--port", str(bg.port),
                       "--timeout", "10"])
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {"jobs", "metrics", "cluster"}
        assert "counters" in snapshot["metrics"]

    def test_unreachable_listener_is_an_error(self, capsys):
        rc = main(["status", "--port", "1", "--timeout", "1"])
        assert rc == 2
        assert "service error" in capsys.readouterr().err


class _PreWatchServer:
    """A protocol-v1 listener that predates the ``watch`` frame.

    Answers ``watch`` with ``unknown-type`` (exactly what an old
    server's validator does) and serves ``status`` polls, so the CLI's
    fallback path can be exercised against the real wire behavior.
    """

    def __init__(self):
        import socket
        import threading

        self._sock = socket.create_server(("127.0.0.1", 0))
        self.host, self.port = self._sock.getsockname()
        self.status_polls = 0
        self.watch_refusals = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        import json as json_mod

        from repro.service import protocol

        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            with conn:
                reader = conn.makefile("rb")
                for line in reader:
                    frame = json_mod.loads(line)
                    if frame["type"] == "watch":
                        self.watch_refusals += 1
                        conn.sendall(protocol.encode_frame(
                            protocol.make_error(
                                "unknown-type",
                                "no request type 'watch'",
                            )
                        ))
                        break  # old servers drop nothing else here
                    if frame["type"] == "status":
                        self.status_polls += 1
                        conn.sendall(protocol.encode_frame(
                            protocol.make_status_reply(
                                {}, metrics={"counters": {}},
                            )
                        ))

    def close(self):
        self._stop.set()
        self._sock.close()


class TestStatusWatchFallback:
    def test_watch_falls_back_to_polling_on_unknown_type(self, capsys):
        import threading
        import time as time_mod

        stub = _PreWatchServer()
        try:
            thread = threading.Thread(
                target=main,
                args=(["status", "--host", stub.host,
                       "--port", str(stub.port), "--watch",
                       "--interval", "0.01", "--timeout", "5"],),
                daemon=True,
            )
            thread.start()
            deadline = time_mod.monotonic() + 15
            while (stub.status_polls < 2
                   and time_mod.monotonic() < deadline):
                time_mod.sleep(0.01)
        finally:
            stub.close()
        # the watch frame was refused once, then the CLI switched to
        # the classic polling loop for good
        assert stub.watch_refusals == 1
        assert stub.status_polls >= 2
        captured = capsys.readouterr()
        assert "falling back to polling" in captured.err
        assert '"jobs"' in captured.out

    def test_forced_poll_never_sends_a_watch_frame(self):
        import threading
        import time as time_mod

        stub = _PreWatchServer()
        try:
            thread = threading.Thread(
                target=main,
                args=(["status", "--host", stub.host,
                       "--port", str(stub.port), "--watch", "--poll",
                       "--interval", "0.01", "--timeout", "5"],),
                daemon=True,
            )
            thread.start()
            deadline = time_mod.monotonic() + 15
            while (stub.status_polls < 2
                   and time_mod.monotonic() < deadline):
                time_mod.sleep(0.01)
        finally:
            stub.close()
        assert stub.watch_refusals == 0
        assert stub.status_polls >= 2


class TestQueryServe:
    def test_serve_answers_over_http_with_cli_parity(self, tmp_path):
        import threading
        import urllib.request

        from repro.telemetry.httpd import WarehouseHTTP

        db = tmp_path / "wh.sqlite"
        seed_warehouse(db)
        with ResultsWarehouse(str(db)) as warehouse:
            endpoint = WarehouseHTTP(warehouse, port=0).start()
            try:
                with urllib.request.urlopen(
                    endpoint.url + "/count?scenario=E10", timeout=30
                ) as reply:
                    body = json.loads(reply.read())
                assert body["count"] == warehouse.count(scenario="E10")
            finally:
                endpoint.shutdown()
        assert threading.active_count() >= 1  # endpoint died cleanly

    def test_serve_flag_refuses_an_unbindable_port(self, tmp_path,
                                                   capsys):
        import socket

        db = tmp_path / "wh.sqlite"
        seed_warehouse(db)
        blocker = socket.create_server(("127.0.0.1", 0))
        try:
            port = blocker.getsockname()[1]
            rc = main(["query", "--db", str(db), "--serve",
                       "--http-port", str(port)])
        finally:
            blocker.close()
        assert rc == 2
        assert "cannot bind" in capsys.readouterr().err
