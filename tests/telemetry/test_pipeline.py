"""Telemetry through the real pipeline: backends, servers, the cluster.

These tests assert the PR's headline invariant: every result a sweep
streams back is also a warehouse row — whether it ran through a
``LocalBackend``, a ``ScenarioServer``, or a sharded cluster sweep —
and the warehouse's view (row count, headline metrics) matches the
merged report.
"""

import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.worker import BackgroundWorker
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service.backend import LocalBackend
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer
from repro.service.shard import expand_sweep
from repro.telemetry.events import BUS
from repro.telemetry.warehouse import ResultsWarehouse


@pytest.fixture(scope="module", autouse=True)
def pipeline_scenarios():
    @scenario("_wh_sq", params={"k": 1})
    def _sq(k=1):
        return {"rows": [{"k": k}], "verdict": {"sq": float(k * k)}}

    @scenario("_wh_bad", params={"k": 1})
    def _bad(k=1):
        raise RuntimeError("deliberate failure")

    yield
    unregister("_wh_sq")
    unregister("_wh_bad")


class TestLocalBackendRecording:
    def test_every_result_lands_as_a_row(self, tmp_path):
        wh = ResultsWarehouse(tmp_path / "wh.sqlite")
        backend = LocalBackend(backend="serial", cache=None, warehouse=wh)
        specs = expand_sweep(
            ScenarioSpec("_wh_sq", {"k": 1}), {"k": [1, 2, 3]}
        )
        results = backend.run(specs, label="job-x")
        wh.flush()
        assert len(results) == 3
        rows = wh.query(job="job-x")
        assert len(rows) == 3
        assert {r["headline_value"] for r in rows} == {1.0, 4.0, 9.0}
        wh.close()

    def test_failures_are_rows_with_hash_and_wall_time(self, tmp_path):
        wh = ResultsWarehouse(tmp_path / "wh.sqlite")
        backend = LocalBackend(backend="serial", cache=None, warehouse=wh)
        spec = ScenarioSpec("_wh_bad", {"k": 1})
        (res,) = backend.run([spec])
        wh.flush()
        (row,) = wh.query(status="error")
        assert row["spec_hash"] == spec.content_hash == res.spec_hash
        assert row["wall_time_s"] >= 0.0
        assert "deliberate failure" in row["error"]
        wh.close()

    def test_cache_replays_are_flagged(self, tmp_path):
        from repro.engine.cache import ResultCache

        wh = ResultsWarehouse(tmp_path / "wh.sqlite")
        cache = ResultCache(tmp_path / "cache")
        backend = LocalBackend(backend="serial", cache=cache, warehouse=wh)
        spec = ScenarioSpec("_wh_sq", {"k": 5})
        backend.run([spec])
        backend.run([spec])  # second run replays from the cache
        wh.flush()
        assert wh.count(spec_hash=spec.content_hash) == 2
        assert wh.count(spec_hash=spec.content_hash, cached=True) == 1
        wh.close()


class TestExecutorInstrumentation:
    def test_job_events_carry_the_spec_hash(self):
        from repro.engine.executor import execute

        seen = []
        BUS.subscribe(seen.append)
        try:
            spec = ScenarioSpec("_wh_sq", {"k": 2})
            execute([spec], backend="serial")
        finally:
            BUS.unsubscribe(seen.append)
        engine = [e for e in seen if e.component == "engine.executor"]
        kinds = [e.kind for e in engine]
        assert "job-start" in kinds and "job-finish" in kinds
        assert all(e.spec_hash == spec.content_hash for e in engine)

    def test_metrics_count_completions_and_failures(self):
        from repro.engine.executor import execute
        from repro.telemetry.metrics import METRICS

        before_ok = METRICS.counter("engine.jobs_completed").value
        before_bad = METRICS.counter("engine.jobs_failed").value
        execute(
            [ScenarioSpec("_wh_sq", {"k": 2}),
             ScenarioSpec("_wh_bad", {"k": 1})],
            backend="serial",
        )
        assert METRICS.counter("engine.jobs_completed").value \
            == before_ok + 1
        assert METRICS.counter("engine.jobs_failed").value \
            == before_bad + 1


class TestServerStatusFrame:
    def test_status_full_carries_metrics(self):
        with BackgroundServer(LocalBackend(backend="serial")) as bg:
            with ServiceClient(bg.host, bg.port, timeout=10) as client:
                client.submit([ScenarioSpec("_wh_sq", {"k": 2})])
                full = client.status_full()
        assert isinstance(full["metrics"], dict)
        counters = full["metrics"]["counters"]
        assert counters.get("service.submits", 0) >= 1
        assert counters.get("service.results_streamed", 0) >= 1
        assert full["cluster"] is None  # plain server, no pool


class TestClusterWarehouseParity:
    def test_sharded_sweep_report_matches_warehouse(self, tmp_path):
        """Row-count and headline-metric parity with the merged report."""
        wh_path = tmp_path / "wh.sqlite"
        coordinator = ClusterCoordinator(
            port=0, journal_path=None, lease_timeout_s=5.0,
            warehouse=wh_path,
        )
        with BackgroundServer(server=coordinator) as bg:
            workers = [
                BackgroundWorker(
                    bg.host, bg.port, name=f"wh-w{i}", cache=None,
                ).start()
                for i in range(2)
            ]
            try:
                with ServiceClient(bg.host, bg.port, timeout=30) as client:
                    results = client.submit(
                        [ScenarioSpec("_wh_sq", {"k": 1})],
                        sweep={"k": [1, 2, 3, 4, 5, 6]},
                        shards=3,
                    )
                    job_id = client.last_job
            finally:
                for w in workers:
                    w.stop()
        coordinator.warehouse.flush()
        assert len(results) == 6
        with ResultsWarehouse(wh_path) as reader:
            rows = reader.query(job=job_id)
            assert len(rows) == len(results)
            assert {r["headline_value"] for r in rows} == {
                float(k * k) for k in range(1, 7)
            }
            assert all(r["source"] == "coordinator" for r in rows)
            agg = reader.aggregate(
                ["count:", "mean:wall_time"], group_by="job_id",
                job=job_id,
            )
            assert agg[0]["count"] == 6

    def test_cluster_events_carry_correlation_ids(self, tmp_path):
        seen = []
        BUS.subscribe(seen.append)
        try:
            coordinator = ClusterCoordinator(
                port=0, journal_path=None, lease_timeout_s=5.0,
            )
            with BackgroundServer(server=coordinator) as bg:
                with BackgroundWorker(
                    bg.host, bg.port, name="ev-w", cache=None,
                ):
                    with ServiceClient(
                        bg.host, bg.port, timeout=30
                    ) as client:
                        client.submit(
                            [ScenarioSpec("_wh_sq", {"k": 3})]
                        )
                        job_id = client.last_job
        finally:
            BUS.unsubscribe(seen.append)
        kinds = {e.kind for e in seen}
        assert "worker-register" in kinds
        assert "lease-grant" in kinds
        assert "lease-complete" in kinds
        grants = [e for e in seen if e.kind == "lease-grant"]
        assert any(e.job_id == job_id for e in grants)
        lease_starts = [e for e in seen if e.kind == "lease-start"]
        assert lease_starts and all(
            e.job_id == job_id and e.spec_hash for e in lease_starts
        )

    def test_coordinator_status_includes_pool_state(self):
        coordinator = ClusterCoordinator(
            port=0, journal_path=None, lease_timeout_s=5.0,
        )
        with BackgroundServer(server=coordinator) as bg:
            with BackgroundWorker(
                bg.host, bg.port, name="st-w", cache=None,
            ):
                deadline = time.time() + 10
                cluster = None
                with ServiceClient(bg.host, bg.port, timeout=10) as client:
                    while time.time() < deadline:
                        cluster = client.status_full()["cluster"]
                        if cluster and cluster.get("workers"):
                            break
                        time.sleep(0.05)
        assert cluster is not None
        assert len(cluster["workers"]) == 1
        assert "steals" in cluster and "queued" in cluster
