"""Live event fan-out: bounded subscribers, hub lifecycle, the wire.

The contract under test (the issue's satellite c + acceptance bar):
a slow or dead watcher never backpressures the emitter — its bounded
queue drops the *oldest* event, the drop is counted and surfaced in
``status`` — and an unobserved bus keeps its one-attribute-load fast
path because the hub attaches to the bus only while watched.  The
acceptance test runs three concurrent watchers over a real federated
sweep and kills one mid-stream.
"""

import asyncio
import contextlib
import json
import socket
import threading
import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.federation import FederatedCoordinator
from repro.cluster.worker import BackgroundWorker
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.backend import LocalBackend
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import BackgroundServer
from repro.service.watch import MAX_QUEUE, WatchHub, WatchSubscriber
from repro.telemetry.events import BUS, Event, EventBus


def _event(kind="k", component="c", job_id="", **payload):
    return Event(ts=1.0, component=component, kind=kind,
                 job_id=job_id, payload=payload)


@pytest.fixture
def loop():
    loop = asyncio.new_event_loop()
    yield loop
    loop.close()


class TestWatchSubscriber:
    def test_filters_by_kind_component_and_job(self, loop):
        sub = WatchSubscriber(loop, kinds={"a", "b"},
                              components={"svc"}, job_id="j1")
        assert sub.matches(_event("a", "svc", "j1"))
        assert not sub.matches(_event("c", "svc", "j1"))
        assert not sub.matches(_event("a", "other", "j1"))
        assert not sub.matches(_event("a", "svc", "j2"))
        # no filters at all: everything matches
        assert WatchSubscriber(loop).matches(_event("z", "x", "j9"))

    def test_full_queue_drops_oldest_and_counts(self, loop):
        sub = WatchSubscriber(loop, maxlen=3)
        for i in range(7):
            sub.push(_event("k", i=i))
        assert sub.dropped == 4
        kept = [e.payload["i"] for e in sub.drain()]
        assert kept == [4, 5, 6]  # latest-wins: the oldest went first
        assert sub.delivered == 3

    def test_status_only_overflow_is_not_counted_as_loss(self, loop):
        sub = WatchSubscriber(loop, maxlen=1, count_drops=False)
        for _ in range(5):
            sub.push(_event())
        assert sub.dropped == 0  # a dirty flag, not a data stream
        assert len(sub.drain()) == 1

    def test_push_never_blocks_even_with_no_consumer(self, loop):
        sub = WatchSubscriber(loop, maxlen=2)
        started = time.monotonic()
        for _ in range(10_000):
            sub.push(_event())
        assert time.monotonic() - started < 2.0
        assert sub.dropped == 9_998

    def test_closed_subscriber_ignores_pushes(self, loop):
        sub = WatchSubscriber(loop, maxlen=4)
        sub.push(_event())
        sub.close()
        sub.push(_event())
        assert sub.drain() == []
        assert sub.dropped == 0

    def test_requested_queue_is_clamped(self, loop):
        assert WatchSubscriber(loop, maxlen=0).maxlen == 1
        assert WatchSubscriber(loop, maxlen=10 ** 9).maxlen == MAX_QUEUE

    def test_push_from_thread_wakes_the_owning_task(self):
        async def scenario():
            sub = WatchSubscriber(asyncio.get_running_loop())
            thread = threading.Thread(
                target=lambda: sub.push(_event("ping")), daemon=True
            )
            thread.start()
            assert await sub.wait(timeout=5.0)
            thread.join(timeout=5)
            return [e.kind for e in sub.drain()]

        assert asyncio.run(scenario()) == ["ping"]

    def test_wait_times_out_quietly(self):
        async def scenario():
            sub = WatchSubscriber(asyncio.get_running_loop())
            return await sub.wait(timeout=0.01)

        assert asyncio.run(scenario()) is False


class TestWatchHub:
    def test_attaches_to_bus_only_while_watched(self, loop):
        bus = EventBus()
        hub = WatchHub(bus)
        assert not bus.enabled          # nothing watching: free emit
        first = hub.add(loop)
        assert bus.enabled and hub.active
        second = hub.add(loop)
        hub.remove(first)
        assert bus.enabled              # one watcher left
        hub.remove(second)
        assert not bus.enabled          # fast path restored
        assert not hub.active

    def test_fan_out_honors_each_subscribers_filter(self, loop):
        bus = EventBus()
        hub = WatchHub(bus)
        everything = hub.add(loop)
        only_a = hub.add(loop, kinds={"a"})
        bus.emit("c", "a")
        bus.emit("c", "b")
        hub_events = [e.kind for e in everything.drain()]
        assert hub_events == ["a", "b"]
        assert [e.kind for e in only_a.drain()] == ["a"]
        hub.close()

    def test_dropped_total_survives_watcher_churn(self, loop):
        bus = EventBus()
        hub = WatchHub(bus)
        sub = hub.add(loop, maxlen=1)
        for _ in range(4):
            bus.emit("c", "k")
        assert sub.dropped == 3
        hub.remove(sub)                 # watcher goes away...
        status = hub.status()
        assert status["watchers"] == 0
        assert status["dropped_total"] == 3  # ...its drops do not

    def test_status_lists_per_subscriber_counters(self, loop):
        bus = EventBus()
        hub = WatchHub(bus)
        sub = hub.add(loop, kinds={"x"}, job_id="j1", maxlen=8)
        bus.emit("c", "x", job_id="j1")
        status = hub.status()["subscribers"][sub.id]
        assert status["kinds"] == ["x"]
        assert status["job"] == "j1"
        assert status["queue"] == 8
        assert status["queued"] == 1
        hub.close()
        assert not bus.enabled


@pytest.fixture(scope="module", autouse=True)
def watch_scenarios():
    @scenario("_watch_fast", params={"n": 2})
    def _fast(n=2):
        return {"rows": [{"i": i} for i in range(n)],
                "verdict": {"ok": True}}

    yield
    unregister("_watch_fast")


@pytest.fixture
def server():
    with BackgroundServer(LocalBackend(backend="serial")) as bg:
        yield bg


class TestWatchFrame:
    def test_watch_streams_filtered_live_events(self, server):
        seen = []
        done = threading.Event()

        def watcher():
            with ServiceClient(server.host, server.port,
                               timeout=30) as c:
                for event in c.watch_events(kinds=["submit",
                                                   "job-done"]):
                    seen.append(event)
                    if event["kind"] == "job-done":
                        done.set()
                        return

        thread = threading.Thread(target=watcher, daemon=True)
        thread.start()
        # the watcher must be subscribed before the job is submitted
        deadline = time.monotonic() + 10
        while not server.server.watch_hub.active:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        with ServiceClient(server.host, server.port, timeout=30) as c:
            c.submit([ScenarioSpec("_watch_fast")])
        assert done.wait(timeout=15)
        thread.join(timeout=10)
        kinds = [e["kind"] for e in seen]
        assert kinds == ["submit", "job-done"]   # filter held
        assert seen[0]["job_id"] == seen[1]["job_id"]

    def test_status_surfaces_watchers_and_their_drop_counters(
        self, server
    ):
        with ServiceClient(server.host, server.port, timeout=30) as w:
            w.send(protocol.make_watch(kinds=["_never"]))
            ack = w._recv_checked()
            assert ack["type"] == "watch-ack"
            sub = server.server.watch_hub._subs[0]
            sub.dropped = 7  # as if a burst outran this watcher
            with ServiceClient(server.host, server.port,
                               timeout=30) as c:
                status = c.status_full()
        watchers = status["watchers"]
        assert watchers["watchers"] >= 1
        assert watchers["dropped_total"] >= 7
        assert watchers["subscribers"][sub.id]["dropped"] == 7

    def test_unwatched_status_omits_the_watchers_block(self, server):
        with ServiceClient(server.host, server.port, timeout=30) as c:
            status = c.status_full()
        assert "watchers" not in status

    def test_dead_watcher_never_blocks_submissions(self, server):
        drop = socket.create_connection((server.host, server.port),
                                        timeout=10)
        drop.sendall(protocol.encode_frame(protocol.make_watch()))
        reader = drop.makefile("rb")
        assert json.loads(reader.readline())["type"] == "watch-ack"
        reader.close()  # the makefile dup would keep the fd alive
        drop.close()    # the watcher dies without unsubscribing
        with ServiceClient(server.host, server.port, timeout=30) as c:
            results = c.submit([ScenarioSpec("_watch_fast")])
            assert results[0].ok
        # the server noticed and detached the orphaned subscription
        deadline = time.monotonic() + 10
        while server.server.watch_hub.active:
            assert time.monotonic() < deadline
            time.sleep(0.01)

    def test_watch_status_pushes_snapshots(self, server):
        snapshots = []

        def watcher():
            with ServiceClient(server.host, server.port,
                               timeout=30) as c:
                for snap in c.watch_status(0.05):
                    snapshots.append(snap)
                    if any(j["state"] == "done"
                           for j in snap["jobs"].values()):
                        return
                    if len(snapshots) > 100:
                        return  # give up; the asserts will say why

        thread = threading.Thread(target=watcher, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while not server.server.watch_hub.active:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        with ServiceClient(server.host, server.port, timeout=30) as c:
            c.submit([ScenarioSpec("_watch_fast")])
        thread.join(timeout=15)
        # first frame is the immediate (empty) snapshot; the pushes
        # after it only exist because the submit dirtied the status
        assert len(snapshots) >= 2
        assert {"jobs", "metrics", "cluster"} <= set(snapshots[-1])
        assert any(j["state"] == "done"
                   for j in snapshots[-1]["jobs"].values())

    def test_watch_frame_validation_rejects_nonsense(self, server):
        bad = protocol.encode_frame({
            "v": protocol.PROTOCOL_VERSION, "type": "watch",
            "events": False,
        })
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            sock.sendall(bad)
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["type"] == "error"
        assert reply["code"] == "bad-message"


SLOW_S = 0.05
FED_AXES = {"k": [1, 2, 3, 4, 5, 6]}
FED_KW = dict(
    probe_interval_s=0.2,
    failure_threshold=2,
    poll_timeout_s=0.2,
    connect_timeout_s=2.0,
    chunk_specs=2,
)


@contextlib.contextmanager
def _pool(workers=1):
    coordinator = ClusterCoordinator(port=0, lease_timeout_s=5.0)
    with BackgroundServer(server=coordinator) as bg:
        fleet = []
        try:
            for index in range(workers):
                fleet.append(
                    BackgroundWorker(bg.host, bg.port,
                                     name=f"ww{index}").start()
                )
            yield bg
        finally:
            for worker in fleet:
                worker.stop()


@pytest.fixture(scope="module", autouse=True)
def federation_scenarios():
    @scenario("_watch_fed", params={"k": 1, "delay": SLOW_S})
    def _fed(k=1, delay=SLOW_S):
        time.sleep(delay)
        return {"rows": [{"k": k}], "verdict": {"ok": True}}

    yield
    unregister("_watch_fed")


class TestFederatedWatchAcceptance:
    """Three live watchers over a federated sweep; one dies mid-stream."""

    BASE = ScenarioSpec("_watch_fed", {"k": 1, "delay": SLOW_S})
    TOTAL = len(FED_AXES["k"])

    def test_three_watchers_one_killed_mid_stream(self):
        with _pool() as bga, _pool() as bgb:
            addrs = [(bga.host, bga.port), (bgb.host, bgb.port)]
            front = FederatedCoordinator(port=0, pools=addrs, **FED_KW)
            with BackgroundServer(server=front) as bg:
                collected = {0: [], 1: []}
                finished = []
                victim_got_one = threading.Event()

                def survivor(index):
                    with ServiceClient(bg.host, bg.port,
                                       timeout=60) as c:
                        for ev in c.watch_events(
                            kinds=["pool-complete"]
                        ):
                            collected[index].append(ev["spec_hash"])
                            if len(collected[index]) == self.TOTAL:
                                finished.append(index)
                                return

                def victim():
                    client = ServiceClient(bg.host, bg.port,
                                           timeout=60)
                    try:
                        for _ev in client.watch_events(
                            kinds=["pool-complete"]
                        ):
                            victim_got_one.set()
                            client._sock.close()  # die mid-stream
                            return
                    except (ServiceError, OSError):
                        victim_got_one.set()

                threads = [
                    threading.Thread(target=survivor, args=(0,),
                                     daemon=True),
                    threading.Thread(target=survivor, args=(1,),
                                     daemon=True),
                    threading.Thread(target=victim, daemon=True),
                ]
                for thread in threads:
                    thread.start()
                deadline = time.monotonic() + 10
                while (front.watch_hub.status()["watchers"] < 3
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
                assert front.watch_hub.status()["watchers"] == 3

                with ServiceClient(bg.host, bg.port,
                                   timeout=120) as client:
                    results = client.submit([self.BASE],
                                            sweep=FED_AXES)
                    # the killed watcher never dented the sweep
                    assert client.last_done["failed"] == 0
                    assert len(results) == self.TOTAL
                assert victim_got_one.wait(timeout=30)
                for thread in threads:
                    thread.join(timeout=30)
                assert sorted(finished) == [0, 1]

                expected = {r.spec_hash for r in results}
                # each survivor saw the complete filtered sequence
                assert set(collected[0]) == expected
                assert set(collected[1]) == expected
                assert len(collected[0]) == self.TOTAL
                assert len(collected[1]) == self.TOTAL
