"""Trace spans across the tiers: one trace id, one walkable path.

The contract: a spec submitted to a federated front can be traced
through every hop — front ``job`` → federation ``assign`` → pool
``job`` → pool ``lease`` → worker ``execute`` — by following parent
links between ``kind="span"`` events that all carry the same trace
id.  Emission is gated exactly like every other event: an unobserved
bus emits nothing, but the trace ids still ride the frames.
"""

import contextlib
import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.federation import FederatedCoordinator
from repro.cluster.worker import BackgroundWorker
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer
from repro.telemetry.events import BUS, EventBus
from repro.telemetry.spans import (
    SPAN_KIND,
    emit_span,
    new_span_id,
    new_trace_id,
    span_tree,
    trace_context,
)

FED_KW = dict(
    probe_interval_s=0.2,
    failure_threshold=2,
    poll_timeout_s=0.2,
    connect_timeout_s=2.0,
    chunk_specs=2,
)


class TestEmitSpan:
    def test_unobserved_bus_emits_nothing(self):
        bus = EventBus()
        assert emit_span("c", "job", trace_id="t1", span_id="s1",
                         bus=bus) is None

    def test_missing_trace_id_emits_nothing(self):
        bus = EventBus()
        bus.subscribe(lambda _e: None)
        assert emit_span("c", "job", trace_id="", span_id="s1",
                         bus=bus) is None

    def test_span_event_shape(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        event = emit_span(
            "cluster.worker", "execute", trace_id="t1", span_id="s2",
            parent_id="s1", job_id="j", spec_hash="h",
            duration_s=0.1234567, bus=bus, worker="w0", status="ok",
        )
        assert seen == [event]
        assert event.kind == SPAN_KIND
        assert event.payload == {
            "name": "execute", "trace": "t1", "span": "s2",
            "parent": "s1", "duration_s": 0.123457,
            "worker": "w0", "status": "ok",
        }

    def test_trace_context_wire_form(self):
        assert trace_context("t1") == {"id": "t1"}
        assert trace_context("t1", "s1") == {"id": "t1", "span": "s1"}
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8


class TestSpanTree:
    def test_tree_links_children_to_parents(self):
        events = [
            {"kind": "span", "component": "a", "job_id": "j",
             "payload": {"name": "job", "trace": "t", "span": "s1"}},
            {"kind": "span", "component": "b", "job_id": "j",
             "payload": {"name": "lease", "trace": "t", "span": "s2",
                         "parent": "s1"}},
            {"kind": "not-a-span", "payload": {"span": "s9"}},
        ]
        tree = span_tree(events)
        assert set(tree) == {"s1", "s2"}
        assert tree["s1"]["children"] == ["s2"]
        assert tree["s2"]["parent"] == "s1"
        assert tree["s2"]["component"] == "b"


@pytest.fixture(scope="module", autouse=True)
def span_scenarios():
    @scenario("_span_probe", params={"k": 1})
    def _probe(k=1):
        return {"rows": [{"k": k}], "verdict": {"ok": True}}

    yield
    unregister("_span_probe")


@contextlib.contextmanager
def recording_bus():
    """Capture every global-BUS event for the duration."""
    events = []
    BUS.subscribe(events.append)
    try:
        yield events
    finally:
        BUS.unsubscribe(events.append)


def spans_of(events, trace_id=None):
    spans = [e for e in events if e.kind == SPAN_KIND]
    if trace_id is not None:
        spans = [s for s in spans if s.payload["trace"] == trace_id]
    return spans


def wait_for_spans(events, names, trace_id=None, timeout=15.0):
    """Span emission trails the done frame; poll briefly for the set."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        got = {s.payload["name"] for s in spans_of(events, trace_id)}
        if names <= got:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"wanted spans {sorted(names)}, got {sorted(got)}"
    )


@contextlib.contextmanager
def _pool(workers=1):
    coordinator = ClusterCoordinator(port=0, lease_timeout_s=5.0)
    with BackgroundServer(server=coordinator) as bg:
        fleet = []
        try:
            for index in range(workers):
                fleet.append(
                    BackgroundWorker(bg.host, bg.port,
                                     name=f"sw{index}").start()
                )
            yield bg
        finally:
            for worker in fleet:
                worker.stop()


class TestClusterTrace:
    def test_job_lease_execute_share_one_trace(self):
        with recording_bus() as events:
            with _pool() as bg:
                with ServiceClient(bg.host, bg.port, timeout=60) as c:
                    results = c.submit([ScenarioSpec("_span_probe")])
                    assert results[0].ok
                wait_for_spans(events,
                               {"job", "lease", "execute"})
        spans = spans_of(events)
        by_name = {s.payload["name"]: s for s in spans}
        job, lease, execute = (by_name["job"], by_name["lease"],
                               by_name["execute"])
        # one trace end to end, parented hop by hop
        assert (job.payload["trace"] == lease.payload["trace"]
                == execute.payload["trace"])
        assert lease.payload["parent"] == job.payload["span"]
        assert execute.payload["parent"] == lease.payload["span"]
        assert job.component == "service.server"
        assert lease.component == "cluster.coordinator"
        assert execute.component == "cluster.worker"
        # every hop measured its own duration
        assert all(s.payload["duration_s"] >= 0 for s in spans)
        assert execute.spec_hash == results[0].spec_hash

    def test_client_supplied_trace_context_is_honored(self):
        with recording_bus() as events:
            with _pool() as bg:
                with ServiceClient(bg.host, bg.port, timeout=60) as c:
                    list(c.submit_iter(
                        [ScenarioSpec("_span_probe")],
                        trace={"id": "feedfacecafebeef", "span": "caller01"},
                    ))
                wait_for_spans(events, {"job"}, "feedfacecafebeef")
        (job,) = [s for s in spans_of(events, "feedfacecafebeef")
                  if s.payload["name"] == "job"]
        assert job.payload["parent"] == "caller01"

    def test_unobserved_bus_stays_silent_but_job_still_runs(self):
        with _pool() as bg:
            with ServiceClient(bg.host, bg.port, timeout=60) as c:
                results = c.submit([ScenarioSpec("_span_probe")])
        assert results[0].ok  # no subscriber, no spans, no harm


class TestFederatedTrace:
    def test_critical_path_walks_front_to_worker(self):
        base = ScenarioSpec("_span_probe", {"k": 1})
        with recording_bus() as events:
            with _pool() as bga:
                front = FederatedCoordinator(
                    port=0, pools=[(bga.host, bga.port)], **FED_KW
                )
                with BackgroundServer(server=front) as bg:
                    with ServiceClient(bg.host, bg.port,
                                       timeout=120) as c:
                        results = c.submit([base])
                        assert c.last_done["failed"] == 0
                    wait_for_spans(events, {"execute"})
                    trace_id = next(
                        s for s in spans_of(events)
                        if s.payload["name"] == "execute"
                    ).payload["trace"]
                    wait_for_spans(
                        events,
                        {"job", "assign", "lease", "execute"},
                        trace_id,
                    )
        spans = spans_of(events, trace_id)
        tree = span_tree(spans)
        execute = next(s for s in spans
                       if s.payload["name"] == "execute")
        # walk the parent chain from the worker's hop to the root
        path = []
        node = tree[execute.payload["span"]]
        while True:
            path.append((node["component"], node["name"]))
            parent = node.get("parent")
            if not parent or parent not in tree:
                break
            node = tree[parent]
        assert path == [
            ("cluster.worker", "execute"),
            ("cluster.coordinator", "lease"),
            ("service.server", "job"),        # the pool's own job
            ("cluster.federation", "assign"),
            ("service.server", "job"),        # the front's job
        ]
        # the root is the front's job span for the submitted job id
        assert path[-1] == ("service.server", "job")
        assert node["job_id"]
        assert results[0].spec_hash == execute.spec_hash
