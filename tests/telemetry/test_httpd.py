"""The warehouse HTTP read endpoint: parity with the query layer.

Every request is exercised with :mod:`urllib.request` against a real
:class:`WarehouseHTTP` on an ephemeral port, and the JSON answers are
compared with the warehouse's own method results — the endpoint reuses
the allowlisted filter/aggregate layer, so parity is the whole
contract.  Writes are refused, unknown routes 404, bad parameters 400.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine.results import ScenarioResult
from repro.telemetry.httpd import WarehouseHTTP
from repro.telemetry.warehouse import ResultsWarehouse


@pytest.fixture
def served(tmp_path):
    db = str(tmp_path / "wh.sqlite")
    with ResultsWarehouse(db) as warehouse:
        for i in range(6):
            warehouse.record_result(
                ScenarioResult(
                    name="E10" if i % 2 else "E12",
                    spec_hash=f"hash-{i}",
                    verdict={"ratio": 1.0 + i},
                    elapsed_s=0.1 * (i + 1),
                ),
                job_id=f"job-{i % 2}",
            )
        warehouse.flush()
        endpoint = WarehouseHTTP(warehouse, port=0).start()
        try:
            yield endpoint, warehouse
        finally:
            endpoint.shutdown()


def get_json(endpoint, path, expect=200):
    try:
        with urllib.request.urlopen(endpoint.url + path,
                                    timeout=30) as reply:
            assert reply.status == expect
            return json.loads(reply.read())
    except urllib.error.HTTPError as error:
        assert error.code == expect, error.read()
        return json.loads(error.read())


class TestRoutes:
    def test_root_lists_routes_and_db(self, served):
        endpoint, warehouse = served
        index = get_json(endpoint, "/")
        assert "/results" in index["routes"]
        assert index["db"] == str(warehouse.path)

    def test_results_parity_with_query(self, served):
        endpoint, warehouse = served
        body = get_json(endpoint, "/results?scenario=E10&limit=2")
        assert body["results"] == warehouse.query(scenario="E10",
                                                  limit=2)
        assert body["count"] == 2

    def test_filters_compose_like_the_cli(self, served):
        endpoint, warehouse = served
        body = get_json(endpoint, "/results?job=job-1&status=ok")
        assert body["results"] == warehouse.query(job="job-1",
                                                  status="ok")
        assert {r["job_id"] for r in body["results"]} == {"job-1"}

    def test_count_parity(self, served):
        endpoint, warehouse = served
        assert get_json(endpoint, "/count")["count"] == 6
        assert (get_json(endpoint, "/count?scenario=E12")["count"]
                == warehouse.count(scenario="E12"))

    def test_aggregate_parity_and_dash_tolerance(self, served):
        endpoint, warehouse = served
        body = get_json(
            endpoint,
            "/aggregate?agg=mean:wall_time_s&agg=count:"
            "&group-by=scenario",
        )
        assert body["group_by"] == "scenario"
        assert body["aggregate"] == warehouse.aggregate(
            ["mean:wall_time_s", "count:"], group_by="scenario"
        )

    def test_stats_parity(self, served):
        endpoint, warehouse = served
        assert get_json(endpoint, "/stats") == json.loads(
            json.dumps(warehouse.stats(), default=str)
        )

    def test_metrics_carries_http_counters(self, served):
        endpoint, _warehouse = served
        get_json(endpoint, "/count")
        body = get_json(endpoint, "/metrics")
        assert body["http"]["requests"] >= 2
        assert body["http"]["errors"] == 0

    def test_status_reports_liveness(self, served):
        endpoint, _warehouse = served
        body = get_json(endpoint, "/status")
        assert body["uptime_s"] >= 0
        assert body["warehouse"]["results"] == 6


class TestRefusals:
    def test_unknown_route_is_404_with_directions(self, served):
        endpoint, _warehouse = served
        body = get_json(endpoint, "/nope", expect=404)
        assert body["routes"]

    def test_bad_filter_field_is_400_not_500(self, served):
        endpoint, _warehouse = served
        body = get_json(endpoint, "/results?cached=maybe", expect=400)
        assert "cached" in body["error"]
        body = get_json(endpoint, "/results?limit=lots", expect=400)
        assert "limit" in body["error"]

    def test_disallowed_aggregate_is_400(self, served):
        endpoint, _warehouse = served
        body = get_json(endpoint, "/aggregate?agg=mean:error",
                        expect=400)
        assert "error" in body

    def test_writes_are_405(self, served):
        endpoint, _warehouse = served
        request = urllib.request.Request(
            endpoint.url + "/results", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 405

    def test_errors_count_in_metrics(self, served):
        endpoint, _warehouse = served
        get_json(endpoint, "/nope", expect=404)
        assert get_json(endpoint, "/metrics")["http"]["errors"] >= 1


class TestSerialization:
    def test_reads_see_writes_already_committed(self, served):
        """A read after record_result must include it: the query runs
        on the writer thread *behind* the pending insert."""
        endpoint, warehouse = served
        warehouse.record_result(
            ScenarioResult(name="E10", spec_hash="hash-late",
                           verdict={"ratio": 9.0}, elapsed_s=0.1),
            job_id="job-late",
        )
        # no flush: enqueue order alone must be enough
        body = get_json(endpoint, "/count?job=job-late")
        assert body["count"] == 1
