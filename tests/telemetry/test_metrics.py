"""The metrics registry: instruments, snapshots, thread safety."""

import json
import threading

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_counts(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5 and c.snapshot() == 5

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2.0

    def test_histogram_keeps_running_moments(self):
        h = Histogram()
        assert h.mean is None
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1.0 and snap["max"] == 3.0
        assert snap["mean"] == 2.0 and snap["last"] == 2.0

    def test_counter_is_thread_safe(self):
        c = Counter()
        threads = [
            threading.Thread(
                target=lambda: [c.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_is_a_type_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_groups_by_kind_and_is_json_able(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(2)
        reg.gauge("queue").set(7)
        reg.histogram("wall_s").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"jobs": 2}
        assert snap["gauges"] == {"queue": 7}
        assert snap["histograms"]["wall_s"]["count"] == 1
        json.dumps(snap)  # the status frame carries this verbatim

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
