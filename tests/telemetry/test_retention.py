"""Warehouse retention: compaction by age and row cap, plus vacuum.

A synthetic month-long campaign database (one result + one bench row
per day, timestamped by direct sqlite inserts) is compacted down and
cross-checked row by row: ``--retain-days`` drops by age from both
tables, ``--retain-rows`` keeps only the newest N results, and the
deletes run serialized on the writer thread so a live writer never
races them.
"""

import json
import sqlite3
import time

import pytest

from repro.engine.cli import main
from repro.telemetry.warehouse import ResultsWarehouse, WarehouseError

DAY_S = 86400.0
NOW = time.time()


def month_db(path, days=30):
    """One result + one bench row per day, oldest first.

    ``hash-NN`` is NN - 0.5 days old: the half-day offset keeps every
    row a clear 12 hours away from any whole-day cutoff, so the tests
    stay deterministic however long they take to reach ``retain``.
    """
    with ResultsWarehouse(path) as wh:
        wh.flush()  # schema exists
    conn = sqlite3.connect(path)
    with conn:
        for age in range(days, 0, -1):
            ts = NOW - age * DAY_S + DAY_S / 2
            conn.execute(
                "INSERT INTO results (recorded_at, scenario, spec_hash,"
                " status, wall_time_s) VALUES (?, ?, ?, 'ok', 0.1)",
                (ts, "E10", f"hash-{age:02d}"),
            )
            conn.execute(
                "INSERT INTO bench_history (recorded_at, code_version,"
                " scenario, wall_time_s) VALUES (?, 'v', 'E10', 0.1)",
                (ts,),
            )
    conn.close()
    return path


def surviving_hashes(path):
    conn = sqlite3.connect(path)
    rows = conn.execute(
        "SELECT spec_hash FROM results ORDER BY recorded_at"
    ).fetchall()
    conn.close()
    return [h for (h,) in rows]


class TestRetain:
    def test_days_window_drops_old_rows_from_both_tables(self, tmp_path):
        db = month_db(str(tmp_path / "wh.sqlite"))
        with ResultsWarehouse(db) as wh:
            summary = wh.retain(days=7)
        assert summary["removed_expired"] == 23
        assert summary["bench_removed"] == 23
        assert summary["remaining"] == 7
        assert summary["vacuumed"] is True
        # exactly the newest week survives: ages 7..1
        assert surviving_hashes(db) == [
            f"hash-{age:02d}" for age in range(7, 0, -1)
        ]

    def test_row_cap_keeps_the_newest_n(self, tmp_path):
        db = month_db(str(tmp_path / "wh.sqlite"))
        with ResultsWarehouse(db) as wh:
            summary = wh.retain(rows=5, vacuum=False)
        assert summary["removed_over_cap"] == 25
        assert summary["remaining"] == 5
        assert summary["vacuumed"] is False
        assert surviving_hashes(db) == [
            f"hash-{age:02d}" for age in range(5, 0, -1)
        ]

    def test_days_and_rows_compose(self, tmp_path):
        db = month_db(str(tmp_path / "wh.sqlite"))
        with ResultsWarehouse(db) as wh:
            summary = wh.retain(days=14, rows=3)
        assert summary["removed_expired"] == 16
        assert summary["removed_over_cap"] == 11
        assert summary["remaining"] == 3
        assert surviving_hashes(db) == ["hash-03", "hash-02", "hash-01"]

    def test_vacuum_reclaims_file_space(self, tmp_path):
        db = str(tmp_path / "wh.sqlite")
        with ResultsWarehouse(db) as wh:
            wh.flush()  # schema exists
            # bulk rows straight on the writer thread, so the later
            # delete actually frees pages worth vacuuming
            def _bulk(conn):
                conn.executemany(
                    "INSERT INTO results (recorded_at, scenario,"
                    " spec_hash, status, wall_time_s, error)"
                    " VALUES (?, 'E10', ?, 'ok', 0.1, ?)",
                    [(NOW - i, f"h{i}", "x" * 512)
                     for i in range(2000)],
                )
                conn.commit()

            wh.run_serialized(_bulk)

            def _pages(conn):
                return conn.execute("PRAGMA page_count").fetchone()[0]

            # the db runs WAL, so judge by page count, not file size
            before = wh.run_serialized(_pages)
            wh.retain(rows=10, vacuum=True)
            after = wh.run_serialized(_pages)
        assert after < before

    def test_retain_needs_at_least_one_knob(self, tmp_path):
        db = month_db(str(tmp_path / "wh.sqlite"))
        with ResultsWarehouse(db) as wh:
            with pytest.raises(WarehouseError):
                wh.retain()
            with pytest.raises(WarehouseError):
                wh.retain(days=-1)
            with pytest.raises(WarehouseError):
                wh.retain(rows=-5)
            # the writer survived all three refusals
            assert wh.retain(rows=30)["remaining"] == 30

    def test_failing_task_does_not_kill_the_writer(self, tmp_path):
        db = month_db(str(tmp_path / "wh.sqlite"))
        with ResultsWarehouse(db) as wh:
            with pytest.raises(WarehouseError):
                wh.run_serialized(
                    lambda conn: conn.execute("SELECT * FROM nope")
                )
            # a bad query earlier must not poison later retention
            assert wh.retain(days=7)["remaining"] == 7


class TestRetainCLI:
    def test_retain_days_prints_a_summary(self, tmp_path, capsys):
        db = month_db(str(tmp_path / "wh.sqlite"))
        rc = main(["query", "--db", db, "--retain-days", "7"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["removed_expired"] == 23
        assert summary["remaining"] == 7
        assert summary["vacuumed"] is True
        assert surviving_hashes(db) == [
            f"hash-{age:02d}" for age in range(7, 0, -1)
        ]

    def test_retain_rows_with_no_vacuum(self, tmp_path, capsys):
        db = month_db(str(tmp_path / "wh.sqlite"))
        rc = main(["query", "--db", db, "--retain-rows", "4",
                   "--no-vacuum"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["removed_over_cap"] == 26
        assert summary["vacuumed"] is False

    def test_negative_retention_is_a_structured_error(
        self, tmp_path, capsys
    ):
        db = month_db(str(tmp_path / "wh.sqlite"))
        rc = main(["query", "--db", db, "--retain-days", "-1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
