"""The sqlite results warehouse: round trips, filters, concurrency."""

import json
import threading
import time

import pytest

from repro.engine.results import ScenarioResult
from repro.telemetry.warehouse import (
    ResultsWarehouse,
    WarehouseError,
    parse_when,
)


def result(
    name="E10",
    *,
    spec_hash="hash-e10",
    status="ok",
    elapsed_s=0.25,
    cached=False,
    params=None,
    verdict=None,
    seed=7,
    error=None,
):
    return ScenarioResult(
        name=name,
        spec_hash=spec_hash,
        params=params if params is not None else {"n": 4},
        seed=seed,
        status=status,
        verdict=verdict if verdict is not None else {
            "reproduced": True, "ratio": 1.5,
        },
        rows=[{"i": 0}],
        elapsed_s=elapsed_s,
        backend="serial",
        cached=cached,
        error=error,
    )


class TestRoundTrip:
    def test_record_flush_query_preserves_types(self, tmp_path):
        with ResultsWarehouse(tmp_path / "wh.sqlite") as wh:
            wh.record_result(result(), job_id="job-1")
            wh.flush()
            rows = wh.query()
        assert len(rows) == 1
        row = rows[0]
        assert row["scenario"] == "E10"
        assert row["spec_hash"] == "hash-e10"
        assert row["params"] == {"n": 4}       # JSON text -> dict
        assert row["seed"] == 7
        assert row["cached"] is False          # INTEGER -> bool
        assert row["reproduced"] is True
        assert row["headline_name"] == "ratio"
        assert row["headline_value"] == pytest.approx(1.5)
        assert row["wall_time_s"] == pytest.approx(0.25)
        assert row["job_id"] == "job-1"
        assert row["source"] == "local"
        assert row["code_version"]             # stamped at record time

    def test_failed_results_keep_hash_and_wall_time(self, tmp_path):
        with ResultsWarehouse(tmp_path / "wh.sqlite") as wh:
            wh.record_result(result(
                status="error", elapsed_s=0.125, verdict={},
                error="Traceback: boom",
            ))
            wh.flush()
            rows = wh.query(status="error")
        assert len(rows) == 1
        assert rows[0]["spec_hash"] == "hash-e10"
        assert rows[0]["wall_time_s"] == pytest.approx(0.125)
        assert rows[0]["error"] == "Traceback: boom"
        assert rows[0]["reproduced"] is None

    def test_closed_warehouse_rejects_writes(self, tmp_path):
        wh = ResultsWarehouse(tmp_path / "wh.sqlite")
        wh.close()
        with pytest.raises(WarehouseError):
            wh.record_result(result())


class TestFiltersAndAggregates:
    @pytest.fixture()
    def seeded(self, tmp_path):
        wh = ResultsWarehouse(tmp_path / "wh.sqlite")
        for i in range(4):
            wh.record_result(
                result(elapsed_s=0.1 * (i + 1), cached=(i == 3)),
                job_id="job-a",
            )
        wh.record_result(
            result("E14", spec_hash="hash-e14", elapsed_s=1.0),
            job_id="job-b",
        )
        wh.record_result(
            result("E14", spec_hash="hash-e14", status="error",
                   verdict={}, elapsed_s=0.5),
            job_id="job-b",
        )
        wh.flush()
        yield wh
        wh.close()

    def test_scenario_and_status_filters(self, seeded):
        assert len(seeded.query(scenario="E10")) == 4
        assert len(seeded.query(scenario="E14", status="ok")) == 1
        assert seeded.count(job="job-b") == 2
        assert seeded.count(cached=True) == 1
        assert seeded.count(spec_hash="hash-e14") == 2

    def test_since_until_window(self, seeded):
        now = time.time()
        assert seeded.count(since=now - 60) == 6
        assert seeded.count(until=now - 60) == 0

    def test_aggregate_mean_and_count_by_scenario(self, seeded):
        rows = seeded.aggregate(
            ["mean:wall_time", "count:"], group_by="scenario",
            status="ok",
        )
        by_name = {r["scenario"]: r for r in rows}
        assert by_name["E10"]["count"] == 4
        assert by_name["E10"]["mean_wall_time_s"] == pytest.approx(0.25)
        assert by_name["E14"]["mean_wall_time_s"] == pytest.approx(1.0)

    def test_aggregate_rejects_unlisted_fields(self, seeded):
        with pytest.raises(WarehouseError):
            seeded.aggregate(["mean:error"])
        with pytest.raises(WarehouseError):
            seeded.aggregate(["mean:wall_time"], group_by="params")
        with pytest.raises(WarehouseError):
            seeded.aggregate(["median:wall_time"])

    def test_limit_and_ordering(self, seeded):
        rows = seeded.query(limit=2)
        assert len(rows) == 2
        all_rows = seeded.query()
        assert [r["id"] for r in all_rows] == sorted(
            r["id"] for r in all_rows
        )


class TestParseWhen:
    def test_accepts_epoch_and_iso(self):
        assert parse_when(1700000000) == 1700000000.0
        assert parse_when("1700000000.5") == 1700000000.5
        iso = parse_when("2026-08-01T00:00:00Z")
        assert iso == parse_when("2026-08-01")

    def test_rejects_garbage(self):
        with pytest.raises(WarehouseError):
            parse_when("not-a-time")


class TestConcurrency:
    def test_many_threads_one_warehouse_no_lost_rows(self, tmp_path):
        """A coordinator thread and local backends share one warehouse."""
        wh = ResultsWarehouse(tmp_path / "wh.sqlite")
        per_thread = 50
        threads = 6

        def produce(index):
            for i in range(per_thread):
                wh.record_result(
                    result(f"T{index}", spec_hash=f"hash-{index}-{i}"),
                    job_id=f"job-{index}",
                    source="coordinator" if index % 2 else "local",
                )

        pool = [
            threading.Thread(target=produce, args=(index,))
            for index in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        wh.flush()
        assert wh.count() == per_thread * threads
        for index in range(threads):
            assert wh.count(job=f"job-{index}") == per_thread
        hashes = {r["spec_hash"] for r in wh.query()}
        assert len(hashes) == per_thread * threads
        wh.close()

    def test_two_warehouse_handles_same_file(self, tmp_path):
        """Coordinator and a local run can share the sqlite file."""
        path = tmp_path / "wh.sqlite"
        a = ResultsWarehouse(path, source="coordinator")
        b = ResultsWarehouse(path, source="local")
        done = threading.Barrier(2)

        def produce(wh, tag):
            done.wait(timeout=10)
            for i in range(40):
                wh.record_result(
                    result(tag, spec_hash=f"{tag}-{i}"), job_id=tag
                )
            wh.flush()

        ta = threading.Thread(target=produce, args=(a, "coord"))
        tb = threading.Thread(target=produce, args=(b, "local"))
        ta.start()
        tb.start()
        ta.join(timeout=30)
        tb.join(timeout=30)
        assert not ta.is_alive() and not tb.is_alive()
        assert a.count() == 80
        assert a.count(source="coordinator") == 40
        assert a.count(source="local") == 40
        a.close()
        b.close()


class TestBenchIngest:
    def _trajectory(self, tmp_path, entries):
        path = tmp_path / "BENCH_TRAJECTORY.json"
        path.write_text(json.dumps({"entries": entries}))
        return path

    def test_ingest_is_idempotent(self, tmp_path):
        path = self._trajectory(tmp_path, [
            {
                "recorded_at": "2026-08-01T10:00:00Z",
                "code_version": "v1",
                "workers": 4,
                "tags": ["perf"],
                "per_scenario_wall_s": {"E10": 0.5, "E14": 1.25},
            },
            {
                "recorded_at": "2026-08-02T10:00:00Z",
                "code_version": "v2",
                "workers": 4,
                "tags": ["perf"],
                "per_scenario_wall_s": {"E10": 0.4},
            },
        ])
        with ResultsWarehouse(tmp_path / "wh.sqlite") as wh:
            assert wh.ingest_trajectory(path) == 3
            assert wh.ingest_trajectory(path) == 0
            trend = wh.bench_trend("E10")
            assert [r["code_version"] for r in trend] == ["v1", "v2"]
            assert trend[0]["wall_time_s"] == pytest.approx(0.5)
            assert wh.stats()["bench_history"] == 3

    def test_ingest_rejects_non_trajectory_payloads(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"whatever": 1}))
        with ResultsWarehouse(tmp_path / "wh.sqlite") as wh:
            with pytest.raises(WarehouseError):
                wh.ingest_trajectory(path)


class TestStats:
    def test_stats_counts_rows_jobs_versions(self, tmp_path):
        with ResultsWarehouse(tmp_path / "wh.sqlite") as wh:
            wh.record_result(result(), job_id="job-1")
            wh.record_result(result("E14", spec_hash="h2"), job_id="job-2")
            wh.flush()
            stats = wh.stats()
        assert stats["results"] == 2
        assert stats["jobs"] == 2
        assert stats["code_versions"] == 1
        assert stats["first_recorded_at"] <= stats["last_recorded_at"]
