"""The event bus: free when unobserved, fan-out when subscribed."""

import json
import threading

from repro.telemetry.events import (
    BUS,
    Event,
    EventBus,
    JsonlSink,
    attach_jsonl_sink,
)


class TestEventBus:
    def test_unobserved_emit_is_a_noop_returning_none(self):
        bus = EventBus()
        assert not bus.enabled
        assert bus.emit("c", "k", job_id="j", detail=1) is None

    def test_subscribed_emit_builds_and_delivers_the_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        assert bus.enabled
        event = bus.emit(
            "engine.executor", "job-finish",
            job_id="job-1", spec_hash="abc", status="ok",
        )
        assert seen == [event]
        assert event.component == "engine.executor"
        assert event.kind == "job-finish"
        assert event.job_id == "job-1" and event.spec_hash == "abc"
        assert event.payload == {"status": "ok"}
        assert event.ts > 0

    def test_unsubscribe_restores_the_free_path(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        assert not bus.enabled
        assert bus.emit("c", "k") is None
        assert seen == []

    def test_a_raising_subscriber_does_not_block_the_rest(self):
        bus = EventBus()
        seen = []

        def broken(event):
            raise RuntimeError("sink on fire")

        bus.subscribe(broken)
        bus.subscribe(seen.append)
        bus.emit("c", "k")
        assert len(seen) == 1

    def test_concurrent_subscribe_and_emit_is_safe(self):
        bus = EventBus()
        seen = []
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                fn = seen.append
                bus.subscribe(fn)
                bus.unsubscribe(fn)

        thread = threading.Thread(target=churn, daemon=True)
        thread.start()
        for _ in range(500):
            bus.emit("c", "k")
        stop.set()
        thread.join(timeout=5)

    def test_global_bus_exists_and_starts_unobserved_by_others(self):
        # other tests must leave the global BUS clean
        marker = []
        BUS.subscribe(marker.append)
        try:
            BUS.emit("t", "probe")
            assert len(marker) == 1
        finally:
            BUS.unsubscribe(marker.append)


class TestEventSerialization:
    def test_to_dict_omits_empty_correlation_ids(self):
        event = Event(ts=1.5, component="c", kind="k")
        assert event.to_dict() == {"ts": 1.5, "component": "c", "kind": "k"}

    def test_round_trip(self):
        event = Event(
            ts=2.0, component="cluster.worker", kind="lease-done",
            job_id="j", spec_hash="h", payload={"status": "ok"},
        )
        assert Event.from_dict(event.to_dict()) == event


class TestJsonlSink:
    def test_sink_appends_one_json_object_per_event(self, tmp_path):
        bus = EventBus()
        path = tmp_path / "events.jsonl"
        sink = attach_jsonl_sink(str(path), bus)
        try:
            bus.emit("a", "one", job_id="j1")
            bus.emit("b", "two", spec_hash="h2", n=3)
        finally:
            sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        assert [ln["kind"] for ln in lines] == ["one", "two"]
        assert lines[0]["job_id"] == "j1"
        assert lines[1]["payload"] == {"n": 3}

    def test_closed_sink_swallows_writes(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "ev.jsonl"))
        sink.close()
        sink(Event(ts=1.0, component="c", kind="k"))  # must not raise

    def test_configure_from_env_is_idempotent(self, tmp_path, monkeypatch):
        from repro.telemetry import events as events_mod

        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(events_mod.EVENTS_ENV, str(path))
        monkeypatch.setattr(events_mod, "_env_sink", None)
        bus = EventBus()
        first = events_mod.configure_from_env(bus)
        second = events_mod.configure_from_env(bus)
        try:
            assert first is second is not None
            bus.emit("c", "k")
            assert len(path.read_text().splitlines()) == 1
        finally:
            first.close()
            monkeypatch.setattr(events_mod, "_env_sink", None)


class TestJsonlRotation:
    def _fill(self, sink, events, size=40):
        for i in range(events):
            sink(Event(ts=float(i), component="c", kind="k",
                       payload={"pad": "x" * size}))

    def test_rotation_shifts_generations_and_keeps_valid_jsonl(
        self, tmp_path
    ):
        path = tmp_path / "ev.jsonl"
        sink = JsonlSink(str(path), max_bytes=200, backups=2)
        try:
            self._fill(sink, 12)
        finally:
            sink.close()
        assert sink.rotations > 2
        generations = [path, tmp_path / "ev.jsonl.1",
                       tmp_path / "ev.jsonl.2"]
        assert all(g.exists() for g in generations)
        assert not (tmp_path / "ev.jsonl.3").exists()  # oldest dropped
        timestamps = []
        for generation in generations:
            # whole-line rotation: every generation parses cleanly
            rows = [json.loads(line) for line
                    in generation.read_text().splitlines()]
            assert rows
            timestamps.append([r["ts"] for r in rows])
        # newest file holds the newest events, .2 the oldest surviving
        assert timestamps[0][-1] == 11.0
        assert timestamps[2][0] < timestamps[1][0] < timestamps[0][0]

    def test_an_oversized_event_never_rotates_an_empty_file(
        self, tmp_path
    ):
        path = tmp_path / "ev.jsonl"
        sink = JsonlSink(str(path), max_bytes=64)
        try:
            self._fill(sink, 2, size=500)  # each line alone > max_bytes
        finally:
            sink.close()
        assert sink.rotations == 1  # second event rotated, first wrote
        assert len(path.read_text().splitlines()) == 1

    def test_no_max_bytes_means_no_rotation(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sink = JsonlSink(str(path))
        try:
            self._fill(sink, 50)
        finally:
            sink.close()
        assert sink.rotations == 0
        assert not (tmp_path / "ev.jsonl.1").exists()
        assert len(path.read_text().splitlines()) == 50


class TestJsonlFlushPolicy:
    def test_default_flushes_every_event(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sink = JsonlSink(str(path))
        try:
            sink(Event(ts=1.0, component="c", kind="k"))
            # visible without close: the historical durability contract
            assert len(path.read_text().splitlines()) == 1
        finally:
            sink.close()

    def test_batched_flush_defers_until_the_nth_event(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sink = JsonlSink(str(path), flush_every=3)
        try:
            sink(Event(ts=1.0, component="c", kind="k"))
            sink(Event(ts=2.0, component="c", kind="k"))
            assert path.read_text() == ""       # still buffered
            sink(Event(ts=3.0, component="c", kind="k"))
            assert len(path.read_text().splitlines()) == 3
        finally:
            sink.close()

    def test_flush_zero_buffers_until_close(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sink = JsonlSink(str(path), flush_every=0)
        sink(Event(ts=1.0, component="c", kind="k"))
        assert path.read_text() == ""
        sink.close()                            # close still flushes
        assert len(path.read_text().splitlines()) == 1

    def test_env_knobs_configure_the_sink(self, tmp_path, monkeypatch):
        from repro.telemetry import events as events_mod

        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(events_mod.EVENTS_ENV, str(path))
        monkeypatch.setenv("REPRO_EVENTS_MAX_BYTES", "4096")
        monkeypatch.setenv("REPRO_EVENTS_BACKUPS", "5")
        monkeypatch.setenv("REPRO_EVENTS_FLUSH_EVERY", "10")
        monkeypatch.setattr(events_mod, "_env_sink", None)
        bus = EventBus()
        sink = events_mod.configure_from_env(bus)
        try:
            assert sink.max_bytes == 4096
            assert sink.backups == 5
            assert sink.flush_every == 10
        finally:
            sink.close()
            monkeypatch.setattr(events_mod, "_env_sink", None)

    def test_garbage_env_values_fall_back_to_defaults(
        self, tmp_path, monkeypatch
    ):
        from repro.telemetry import events as events_mod

        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(events_mod.EVENTS_ENV, str(path))
        monkeypatch.setenv("REPRO_EVENTS_MAX_BYTES", "a lot")
        monkeypatch.setattr(events_mod, "_env_sink", None)
        bus = EventBus()
        sink = events_mod.configure_from_env(bus)
        try:
            assert sink.max_bytes == 0
            assert sink.flush_every == 1
        finally:
            sink.close()
            monkeypatch.setattr(events_mod, "_env_sink", None)
