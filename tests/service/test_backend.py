"""Backend seam: LocalBackend wraps the executor+cache, RemoteBackend a peer."""

import pytest

from repro.engine.cache import ResultCache
from repro.engine.executor import run_spec
from repro.engine.registry import get
from repro.service.backend import (
    LocalBackend,
    RemoteBackend,
    make_service_backend,
)
from repro.service.server import BackgroundServer


class TestLocalBackend:
    def test_results_match_direct_execution(self):
        specs = [get("E1").spec, get("E5").spec]
        results = LocalBackend(backend="serial").run(specs)
        assert [r.name for r in results] == ["E1", "E5"]
        for spec, result in zip(specs, results):
            assert (
                result.comparable_payload()
                == run_spec(spec).comparable_payload()
            )

    def test_progress_fires_per_result_in_completion_order(self):
        seen = []
        results = LocalBackend(backend="serial").run(
            [get("E1").spec], progress=seen.append
        )
        assert seen == results

    def test_cache_round_trip(self, tmp_path):
        backend = LocalBackend(backend="serial", cache=tmp_path / "cache")
        first = backend.run([get("E1").spec])
        second = backend.run([get("E1").spec])
        assert not first[0].cached and second[0].cached
        assert (
            first[0].comparable_payload() == second[0].comparable_payload()
        )

    def test_cache_accepts_a_prebuilt_instance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert LocalBackend(cache=cache).cache is cache


class TestFactory:
    def test_local_kind(self, tmp_path):
        backend = make_service_backend(
            "local", workers=3, cache=tmp_path / "c"
        )
        assert isinstance(backend, LocalBackend) and backend.workers == 3

    def test_remote_kind_needs_an_address(self):
        with pytest.raises(ValueError, match="remote_host"):
            make_service_backend("remote")
        backend = make_service_backend(
            "remote", remote_host="127.0.0.1", remote_port=7341
        )
        assert isinstance(backend, RemoteBackend)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown service backend"):
            make_service_backend("mainframe")


class TestRemoteBackend:
    def test_remote_hop_matches_local_execution(self):
        spec = get("E1").spec
        with BackgroundServer(LocalBackend(backend="serial")) as peer:
            remote = RemoteBackend(peer.host, peer.port, connect_retries=5)
            seen = []
            results = remote.run([spec], progress=seen.append)
        assert len(results) == 1 and seen == results
        assert (
            results[0].comparable_payload()
            == run_spec(spec).comparable_payload()
        )

    def test_timeouts_are_finite_by_default(self):
        # a hung listener must not hang the caller forever: both the
        # dial and each read carry finite bounds out of the box
        backend = RemoteBackend("127.0.0.1", 7341)
        assert backend.timeout == RemoteBackend.DEFAULT_READ_TIMEOUT_S
        assert (
            backend.connect_timeout
            == RemoteBackend.DEFAULT_CONNECT_TIMEOUT_S
        )

    def test_explicit_none_still_means_unbounded_reads(self):
        backend = RemoteBackend("127.0.0.1", 7341, timeout=None,
                                connect_timeout=None)
        assert backend.timeout is None
        assert backend.connect_timeout is None
