"""Sweep expansion + sharding: determinism, partition laws, merge fidelity."""

import pytest

from repro.engine.executor import execute
from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service.shard import (
    expand_specs,
    expand_sweep,
    merge_results,
    parse_shard,
    shard_batches,
    shard_specs,
)


@pytest.fixture(scope="module")
def sweep_scenario():
    @scenario("_sweepable", params={"n": 1, "gain": 1.0})
    def _sweepable(n=1, gain=1.0):
        rows = [{"i": i, "value": i * gain} for i in range(n)]
        return {"rows": rows, "verdict": {"total": n * gain, "ok": True}}

    yield "_sweepable"
    unregister("_sweepable")


BASE = ScenarioSpec("_sweepable", {"n": 1, "gain": 1.0})
AXES = {"n": [1, 2, 3], "gain": [1.0, 2.0]}


class TestExpansion:
    def test_cross_product_size_and_order(self):
        specs = expand_sweep(BASE, AXES)
        assert len(specs) == 6
        # sorted axis names (gain before n), value order preserved
        assert [(s.params_dict()["gain"], s.params_dict()["n"])
                for s in specs] == [
            (1.0, 1), (1.0, 2), (1.0, 3), (2.0, 1), (2.0, 2), (2.0, 3),
        ]

    def test_expansion_is_deterministic_under_axis_ordering(self):
        forward = expand_sweep(BASE, {"n": [1, 2], "gain": [3.0]})
        backward = expand_sweep(BASE, {"gain": [3.0], "n": [1, 2]})
        assert [s.content_hash for s in forward] == [
            s.content_hash for s in backward
        ]

    def test_hashes_are_unique_across_the_grid(self):
        hashes = {s.content_hash for s in expand_sweep(BASE, AXES)}
        assert len(hashes) == 6
        # the grid point matching the base params hashes like the base:
        # override-to-same-value is identity, so caching still applies
        assert BASE.content_hash in hashes

    def test_tags_and_seed_survive_expansion(self):
        base = ScenarioSpec("_sweepable", {"n": 1}, seed=9, tags=("x",))
        for spec in expand_sweep(base, {"n": [4, 5]}):
            assert spec.seed == 9 and spec.tags == frozenset({"x"})

    def test_no_axes_is_identity(self):
        assert expand_sweep(BASE, {}) == [BASE]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            expand_sweep(BASE, {"n": []})

    def test_expand_specs_preserves_spec_order(self):
        other = ScenarioSpec("_sweepable", {"n": 9, "gain": 1.0})
        specs = expand_specs([BASE, other], {"gain": [1.0, 2.0]})
        assert [s.params_dict()["n"] for s in specs] == [1, 1, 9, 9]


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)

    @pytest.mark.parametrize("text", ["4/4", "-1/4", "0/0", "1", "a/b"])
    def test_parse_shard_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)

    def test_shards_partition_the_expansion(self):
        specs = expand_sweep(BASE, AXES)
        total = 4
        shards = [shard_specs(specs, i, total) for i in range(total)]
        flattened = [s for shard in shards for s in shard]
        assert sorted(s.content_hash for s in flattened) == sorted(
            s.content_hash for s in specs
        )
        seen = set()
        for shard in shards:
            hashes = {s.content_hash for s in shard}
            assert not (hashes & seen)
            seen |= hashes

    def test_round_robin_balances_within_one(self):
        specs = expand_sweep(BASE, {"n": list(range(1, 11))})
        sizes = [len(b) for b in shard_batches(specs, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_specs_leaves_empties(self):
        batches = shard_batches([BASE], 4)
        assert [len(b) for b in batches] == [1, 0, 0, 0]


class TestMergeFidelity:
    def test_sharded_sweep_merges_identical_to_serial(self, sweep_scenario):
        specs = expand_sweep(BASE, AXES)
        serial = execute(specs, backend="serial")

        total = 4
        shard_runs = [
            execute(shard_specs(specs, i, total), backend="serial").results
            for i in range(total)
        ]
        merged = merge_results(shard_runs, order=specs)

        assert len(merged) == len(serial)
        assert [r.comparable_payload() for r in merged] == [
            r.comparable_payload() for r in serial
        ]

    def test_merge_is_idempotent_on_duplicates(self, sweep_scenario):
        specs = expand_sweep(BASE, {"n": [1, 2]})
        results = execute(specs, backend="serial").results
        merged = merge_results([results, results], order=specs)
        assert len(merged) == 2
