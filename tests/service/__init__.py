"""Scenario-service tests: protocol framing, sharding, server, backends."""
