"""Protocol framing edge cases — no sockets anywhere in this file."""

import json

import pytest

from repro.service import protocol
from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    decode_frame,
    encode_frame,
    validate_request,
)


def frame_bytes(**fields) -> bytes:
    return (json.dumps({"v": PROTOCOL_VERSION, **fields}) + "\n").encode()


class TestCodec:
    @pytest.mark.parametrize(
        "message",
        [
            protocol.make_submit([{"name": "E1"}]),
            protocol.make_submit(
                [{"name": "DSE"}],
                sweep={"seed": [1, 2]},
                shards=4,
                shard=(1, 4),
                options={"note": "x"},
            ),
            protocol.make_status("job-1"),
            protocol.make_stream("job-1"),
            protocol.make_cancel("job-1"),
            protocol.make_shutdown(),
            protocol.make_ping(),
            protocol.make_ack("job-1", 3),
            protocol.make_result("job-1", 0, {"name": "E1", "rows": []}),
            protocol.make_done(
                "job-1", total=3, executed=2, cached=1, failed=0
            ),
            protocol.make_status_reply({"job-1": {"state": "done"}}),
            protocol.make_error("bad-spec", "nope", job="job-1",
                                detail={"index": 0}),
            protocol.make_pong(),
            protocol.make_bye(),
        ],
    )
    def test_every_message_round_trips(self, message):
        assert decode_frame(encode_frame(message).rstrip(b"\n")) == message

    def test_frames_are_single_lines(self):
        frame = encode_frame(protocol.make_submit([{"name": "E1"}]))
        assert frame.endswith(b"\n") and frame.count(b"\n") == 1

    def test_version_mismatch_rejected(self):
        line = json.dumps({"v": 99, "type": "ping"}).encode()
        with pytest.raises(ProtocolError) as info:
            decode_frame(line)
        assert info.value.code == "version-mismatch"

    def test_non_object_frame_rejected(self):
        with pytest.raises(ProtocolError) as info:
            decode_frame(b"[1,2,3]")
        assert info.value.code == "bad-frame"

    def test_missing_type_rejected(self):
        with pytest.raises(ProtocolError) as info:
            decode_frame(json.dumps({"v": PROTOCOL_VERSION}).encode())
        assert info.value.code == "bad-frame"

    def test_oversized_outgoing_frame_rejected(self):
        huge = {"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)}
        with pytest.raises(ProtocolError) as info:
            encode_frame(protocol.make_result("j", 0, huge))
        assert info.value.code == "frame-too-large" and info.value.fatal


class TestFrameDecoder:
    def test_partial_frame_held_until_newline(self):
        decoder = FrameDecoder()
        whole = frame_bytes(type="ping")
        decoder.feed(whole[:5])
        assert decoder.next_frame() is None
        decoder.feed(whole[5:-1])
        assert decoder.next_frame() is None  # still no terminator
        decoder.feed(b"\n")
        assert decoder.next_frame()["type"] == "ping"
        assert decoder.next_frame() is None

    def test_many_frames_in_one_chunk(self):
        decoder = FrameDecoder()
        decoder.feed(
            frame_bytes(type="ping") + frame_bytes(type="status")
            + frame_bytes(type="shutdown")
        )
        types = [decoder.next_frame()["type"] for _ in range(3)]
        assert types == ["ping", "status", "shutdown"]
        assert decoder.next_frame() is None

    def test_byte_at_a_time_stream(self):
        decoder = FrameDecoder()
        seen = []
        for byte in frame_bytes(type="ping") + frame_bytes(type="status"):
            decoder.feed(bytes([byte]))
            message = decoder.next_frame()
            if message:
                seen.append(message["type"])
        assert seen == ["ping", "status"]

    def test_blank_lines_are_tolerated(self):
        decoder = FrameDecoder()
        decoder.feed(b"\n  \n" + frame_bytes(type="ping"))
        assert decoder.next_frame()["type"] == "ping"

    def test_oversized_unterminated_payload_is_fatal(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(ProtocolError) as info:
            decoder.feed(b"x" * 65)
        assert info.value.code == "frame-too-large" and info.value.fatal

    def test_oversized_terminated_line_is_fatal(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        decoder.feed(b"x" * 30)
        decoder.feed(b"y" * 40 + b"\n")
        with pytest.raises(ProtocolError) as info:
            decoder.next_frame()
        assert info.value.code == "frame-too-large" and info.value.fatal

    def test_bad_json_consumes_one_line_and_recovers(self):
        decoder = FrameDecoder()
        decoder.feed(b"{not json}\n" + frame_bytes(type="ping"))
        with pytest.raises(ProtocolError) as info:
            decoder.next_frame()
        assert info.value.code == "bad-json" and not info.value.fatal
        assert decoder.next_frame()["type"] == "ping"


class TestRequestValidation:
    def test_known_requests_pass(self):
        assert validate_request(protocol.make_ping()) == "ping"
        assert validate_request(
            protocol.make_submit([{"name": "E1"}])
        ) == "submit"

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError) as info:
            validate_request({"v": PROTOCOL_VERSION, "type": "frobnicate"})
        assert info.value.code == "unknown-type"

    def test_responses_are_not_requests(self):
        with pytest.raises(ProtocolError) as info:
            validate_request(protocol.make_pong())
        assert info.value.code == "unknown-type"

    @pytest.mark.parametrize(
        "mutation",
        [
            {"specs": []},
            {"specs": "E1"},
            {"specs": ["E1"]},
            {"sweep": {"seed": []}},
            {"sweep": [1, 2]},
            {"shards": 0},
            {"shards": True},
            {"shard": [1]},
            {"shard": "0/4"},
        ],
    )
    def test_malformed_submit_fields_rejected(self, mutation):
        message = protocol.make_submit([{"name": "E1"}])
        message.update(mutation)
        with pytest.raises(ProtocolError) as info:
            validate_request(message)
        assert info.value.code == "bad-message"

    def test_stream_and_cancel_need_a_job_id(self):
        for type_ in ("stream", "cancel"):
            with pytest.raises(ProtocolError):
                validate_request({"v": PROTOCOL_VERSION, "type": type_})


class TestWorkerFrames:
    @pytest.mark.parametrize(
        "message",
        [
            protocol.make_register("wk-1", capacity=2),
            protocol.make_registered("w1", heartbeat_s=1.5,
                                     lease_timeout_s=6.0),
            protocol.make_lease("lease-9", {"name": "E1", "params": {}}),
            protocol.make_lease_result("lease-9", {"name": "E1",
                                                   "spec_hash": "ab"}),
            protocol.make_heartbeat("w1"),
        ],
    )
    def test_worker_messages_round_trip(self, message):
        assert decode_frame(encode_frame(message).rstrip(b"\n")) == message

    def test_worker_requests_validate(self):
        assert validate_request(
            protocol.make_register("wk-1", capacity=1)
        ) == "register"
        assert validate_request(protocol.make_heartbeat("w1")) == "heartbeat"
        assert validate_request(
            protocol.make_lease_result("lease-1", {"name": "E1"})
        ) == "lease-result"

    @pytest.mark.parametrize(
        "message",
        [
            {"type": "register", "capacity": 1},            # no name
            {"type": "register", "name": "w", "capacity": 0},
            {"type": "register", "name": "w", "capacity": True},
            {"type": "lease-result", "result": {}},          # no lease id
            {"type": "lease-result", "lease": "l1"},         # no result
            {"type": "lease-result", "lease": "l1", "result": [1]},
        ],
    )
    def test_malformed_worker_frames_rejected(self, message):
        with pytest.raises(ProtocolError) as info:
            validate_request({"v": PROTOCOL_VERSION, **message})
        assert info.value.code == "bad-message"

    def test_coordinator_pushed_frames_are_not_requests(self):
        for message in (
            protocol.make_registered("w1", 1.0, 4.0),
            protocol.make_lease("l1", {"name": "E1"}),
        ):
            with pytest.raises(ProtocolError) as info:
                validate_request(message)
            assert info.value.code == "unknown-type"


class TestAuthToken:
    def test_open_listener_accepts_everything(self):
        protocol.check_token(protocol.make_ping(), None)
        protocol.check_token({"type": "submit"}, None)

    def test_matching_token_passes(self):
        message = protocol.attach_token(protocol.make_ping(), "s3cret")
        assert message["token"] == "s3cret"
        protocol.check_token(message, "s3cret")

    @pytest.mark.parametrize(
        "message",
        [
            protocol.make_ping(),                            # missing
            {**protocol.make_ping(), "token": "wrong"},
            {**protocol.make_ping(), "token": 42},           # non-string
            {**protocol.make_ping(), "token": ""},
        ],
    )
    def test_unauthenticated_frames_rejected(self, message):
        with pytest.raises(ProtocolError) as info:
            protocol.check_token(message, "s3cret")
        assert info.value.code == "unauthorized"
        assert not info.value.fatal  # the connection may try again

    def test_attach_token_is_a_noop_without_a_secret(self):
        message = protocol.attach_token(protocol.make_ping(), None)
        assert "token" not in message


class TestFederationFrames:
    @pytest.mark.parametrize(
        "message",
        [
            protocol.make_pool_register("10.0.0.5", 7450),
            protocol.make_pool_register("10.0.0.5", 7450, name="pool-a"),
            protocol.make_pool_health(),
            protocol.make_pool_health_reply(
                {"pool-1": {"breaker": {"state": "closed"}}}
            ),
            protocol.make_pool_rehome("pool-1"),
        ],
    )
    def test_federation_messages_round_trip(self, message):
        assert decode_frame(encode_frame(message).rstrip(b"\n")) == message

    def test_federation_requests_validate(self):
        assert validate_request(
            protocol.make_pool_register("10.0.0.5", 7450)
        ) == "pool-register"
        assert validate_request(
            protocol.make_pool_health()
        ) == "pool-health"
        assert validate_request(
            protocol.make_pool_rehome("pool-1")
        ) == "pool-rehome"

    @pytest.mark.parametrize(
        "message",
        [
            {"type": "pool-register", "port": 7450},          # no host
            {"type": "pool-register", "host": "h"},           # no port
            {"type": "pool-register", "host": "h", "port": 0},
            {"type": "pool-register", "host": "h", "port": 70000},
            {"type": "pool-register", "host": "h", "port": True},
            {"type": "pool-register", "host": "h", "port": 7450,
             "name": 3},
            {"type": "pool-rehome"},                          # no pool
            {"type": "pool-rehome", "pool": 7},
        ],
    )
    def test_malformed_federation_frames_rejected(self, message):
        with pytest.raises(ProtocolError) as info:
            validate_request({"v": PROTOCOL_VERSION, **message})
        assert info.value.code == "bad-message"

    def test_pool_health_reply_is_not_a_request(self):
        with pytest.raises(ProtocolError) as info:
            validate_request(
                protocol.make_pool_health_reply({})
            )
        assert info.value.code == "unknown-type"


class TestWatchFrames:
    @pytest.mark.parametrize(
        "message",
        [
            protocol.make_watch(),
            protocol.make_watch(kinds=["submit", "job-done"],
                                job="job-1", queue=64),
            protocol.make_watch(components=["cluster.federation"]),
            protocol.make_watch(events=False, status_interval=2.0),
            protocol.make_watch_ack("w1", 512),
            protocol.make_event("w1", {"kind": "submit", "ts": 1.0}),
        ],
    )
    def test_watch_messages_round_trip(self, message):
        assert decode_frame(encode_frame(message).rstrip(b"\n")) == message

    def test_watch_requests_validate(self):
        assert validate_request(protocol.make_watch()) == "watch"
        assert validate_request(
            protocol.make_watch(kinds=["submit"], queue=8)
        ) == "watch"

    @pytest.mark.parametrize(
        "message",
        [
            {"type": "watch", "kinds": "submit"},      # not a list
            {"type": "watch", "kinds": [7]},
            {"type": "watch", "components": "svc"},
            {"type": "watch", "job": 42},
            {"type": "watch", "queue": 0},
            {"type": "watch", "queue": True},
            {"type": "watch", "events": "yes"},
            {"type": "watch", "status_interval": 0},
            {"type": "watch", "status_interval": True},
            # a watch that neither streams events nor pushes status
            # would be a silent connection: refused outright
            {"type": "watch", "events": False},
        ],
    )
    def test_malformed_watch_frames_rejected(self, message):
        with pytest.raises(ProtocolError) as info:
            validate_request({"v": PROTOCOL_VERSION, **message})
        assert info.value.code == "bad-message"

    def test_watch_pushed_frames_are_not_requests(self):
        for message in (
            protocol.make_watch_ack("w1", 512),
            protocol.make_event("w1", {"kind": "submit"}),
        ):
            with pytest.raises(ProtocolError) as info:
                validate_request(message)
            assert info.value.code == "unknown-type"


class TestTraceFields:
    def test_submit_carries_an_optional_trace(self):
        message = protocol.make_submit(
            [{"name": "E1"}], trace={"id": "t" * 16, "span": "s1"}
        )
        assert message["trace"] == {"id": "t" * 16, "span": "s1"}
        assert validate_request(message) == "submit"
        assert "trace" not in protocol.make_submit([{"name": "E1"}])

    def test_lease_carries_an_optional_trace(self):
        message = protocol.make_lease(
            "lease-1", {"name": "E1"}, job="job-1",
            trace={"id": "t" * 16, "span": "s2"},
        )
        assert decode_frame(
            encode_frame(message).rstrip(b"\n")
        ) == message
        assert "trace" not in protocol.make_lease("l", {"name": "E1"})

    @pytest.mark.parametrize(
        "trace",
        [
            "t1",                      # not an object
            {},                        # no id
            {"id": 7},                 # non-string id
            {"id": "t1", "span": 5},   # non-string span
        ],
    )
    def test_malformed_submit_trace_rejected(self, trace):
        message = protocol.make_submit([{"name": "E1"}])
        message["trace"] = trace
        with pytest.raises(ProtocolError) as info:
            validate_request(message)
        assert info.value.code == "bad-message"
