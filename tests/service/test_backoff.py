"""The shared jittered-exponential-backoff policy, in isolation."""

import random

import pytest

from repro.service.backoff import Backoff, jittered_delay


class TestJitteredDelay:
    def test_no_jitter_is_plain_capped_exponential(self):
        delays = [
            jittered_delay(a, 0.1, 5.0, jitter=0.0) for a in range(8)
        ]
        assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
        assert delays[-1] == 5.0  # ceiling holds

    def test_jitter_scales_into_the_documented_band(self):
        rng = random.Random(7)
        for attempt in range(6):
            raw = min(5.0, 0.1 * 2 ** attempt)
            delay = jittered_delay(attempt, 0.1, 5.0, rng=rng)
            # default jitter=0.5 draws from [0.5, 1.0) of the raw delay
            assert 0.5 * raw <= delay < raw

    def test_seeded_rng_makes_the_schedule_reproducible(self):
        first = [
            jittered_delay(a, 0.1, 5.0, rng=random.Random(42))
            for a in range(5)
        ]
        second = [
            jittered_delay(a, 0.1, 5.0, rng=random.Random(42))
            for a in range(5)
        ]
        assert first == second

    def test_negative_attempt_clamps_to_base(self):
        assert jittered_delay(-3, 0.2, 5.0, jitter=0.0) == 0.2


class TestBackoff:
    def test_ramps_then_resets(self):
        backoff = Backoff(base_s=0.1, max_s=5.0, jitter=0.0)
        assert [backoff.next_delay() for _ in range(3)] == [0.1, 0.2, 0.4]
        backoff.reset()
        assert backoff.next_delay() == 0.1

    def test_peek_does_not_advance(self):
        backoff = Backoff(base_s=0.1, max_s=5.0, jitter=0.0)
        assert backoff.peek() == backoff.peek() == 0.1
        assert backoff.attempt == 0

    def test_sticks_at_the_ceiling(self):
        backoff = Backoff(base_s=1.0, max_s=4.0, jitter=0.0)
        delays = [backoff.next_delay() for _ in range(6)]
        assert delays[-3:] == [4.0, 4.0, 4.0]

    def test_injected_rng_is_used(self):
        a = Backoff(base_s=0.1, max_s=5.0, rng=random.Random(3))
        b = Backoff(base_s=0.1, max_s=5.0, rng=random.Random(3))
        assert [a.next_delay() for _ in range(4)] == [
            b.next_delay() for _ in range(4)
        ]


class TestSharedConsumers:
    def test_client_busy_retry_goes_through_the_shared_helper(self):
        from repro.service import client as client_mod

        assert client_mod.jittered_delay is jittered_delay

    def test_worker_reconnect_uses_backoff(self):
        import inspect

        from repro.cluster import worker as worker_mod

        assert worker_mod.Backoff is Backoff
        source = inspect.getsource(worker_mod.ClusterWorker.run)
        assert "backoff.next_delay()" in source
