"""Listener hardening: shared-secret auth and pending-queue backpressure."""

import time

import pytest

from repro.engine.registry import scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service.backend import LocalBackend
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import BackgroundServer, ScenarioServer

SLOW_S = 0.5


@pytest.fixture(scope="module", autouse=True)
def hardening_scenarios():
    @scenario("_hd_fast", params={"n": 2})
    def _fast(n=2):
        return {"rows": [{"i": i} for i in range(n)],
                "verdict": {"ok": True}}

    @scenario("_hd_slow", params={"delay": SLOW_S})
    def _slow(delay=SLOW_S):
        time.sleep(delay)
        return {"rows": [{"slept": delay}], "verdict": {"ok": True}}

    yield
    for name in ("_hd_fast", "_hd_slow"):
        unregister(name)


def guarded_server(**kwargs):
    return BackgroundServer(
        server=ScenarioServer(LocalBackend(backend="serial"), port=0,
                              **kwargs)
    )


class TestAuth:
    def test_tokenless_frames_get_a_structured_error(self):
        with guarded_server(auth_token="s3cret") as bg:
            with ServiceClient(bg.host, bg.port, timeout=10) as client:
                with pytest.raises(ServiceError) as info:
                    client.ping()
                assert info.value.code == "unauthorized"

    def test_wrong_token_rejected_but_connection_survives(self):
        with guarded_server(auth_token="s3cret") as bg:
            with ServiceClient(bg.host, bg.port, timeout=10,
                               auth_token="wrong") as client:
                with pytest.raises(ServiceError) as info:
                    client.ping()
                assert info.value.code == "unauthorized"
                # same connection, right token now: accepted
                client.auth_token = "s3cret"
                assert client.ping()

    def test_matching_token_submits_normally(self):
        with guarded_server(auth_token="s3cret") as bg:
            with ServiceClient(bg.host, bg.port, timeout=30,
                               auth_token="s3cret") as client:
                results = client.submit([ScenarioSpec("_hd_fast")])
                assert results[0].ok

    def test_open_listener_ignores_stray_tokens(self):
        with guarded_server() as bg:
            with ServiceClient(bg.host, bg.port, timeout=30,
                               auth_token="whatever") as client:
                assert client.ping()


class TestBackpressure:
    """Deterministic choreography: a slow job occupies the 1-spec cap
    (its ack is read synchronously, so the server definitely holds it)
    while a contender submits against the full queue."""

    @staticmethod
    def _occupy(client):
        from repro.service import protocol

        client.send(
            protocol.make_submit([ScenarioSpec("_hd_slow").to_dict()])
        )
        ack = client._recv_checked()
        assert ack["type"] == "ack"

    @staticmethod
    def _drain(client):
        results = []
        while True:
            frame = client._recv_checked()
            if frame["type"] == "done":
                return results
            results.append(frame["result"])

    def test_over_limit_submit_is_rejected_busy_with_detail(self):
        with guarded_server(max_pending=1) as bg:
            with ServiceClient(bg.host, bg.port, timeout=30) as blocker, \
                 ServiceClient(bg.host, bg.port, timeout=30,
                               busy_retries=0) as second:
                self._occupy(blocker)
                with pytest.raises(ServiceError) as info:
                    second.submit([ScenarioSpec("_hd_fast")])
                assert info.value.code == "busy"
                assert info.value.detail == {
                    "pending": 1, "submitted": 1, "max_pending": 1
                }
                self._drain(blocker)

    def test_capacity_frees_once_the_job_completes(self):
        with guarded_server(max_pending=1) as bg:
            with ServiceClient(bg.host, bg.port, timeout=30) as client:
                self._occupy(client)
                assert len(self._drain(client)) == 1
                # nothing pends anymore: the same cap admits new work
                results = client.submit([ScenarioSpec("_hd_fast")])
                assert results[0].ok

    def test_busy_client_retries_with_backoff_until_admitted(self):
        with guarded_server(max_pending=1) as bg:
            blocker = ServiceClient(bg.host, bg.port, timeout=60)
            self._occupy(blocker)
            with ServiceClient(bg.host, bg.port, timeout=60,
                               busy_retries=8) as contender:
                start = time.monotonic()
                results = contender.submit([ScenarioSpec("_hd_fast")])
                elapsed = time.monotonic() - start
            assert results[0].ok
            # it could not have been admitted instantly: at least one
            # backoff sleep happened while the slow job held the cap
            assert elapsed >= 0.05
            self._drain(blocker)
            blocker.close()

    def test_sweep_expansion_counts_against_the_cap(self):
        with guarded_server(max_pending=4) as bg:
            with ServiceClient(bg.host, bg.port, timeout=30,
                               busy_retries=0) as client:
                with pytest.raises(ServiceError) as info:
                    client.submit(
                        [ScenarioSpec("_hd_fast")],
                        sweep={"n": [1, 2, 3, 4, 5]},
                    )
                assert info.value.code == "busy"
                assert info.value.detail["submitted"] == 5
