"""The asyncio service end-to-end: fidelity, streaming, faults, sharding.

Every test runs a real server on an ephemeral localhost port via
:class:`BackgroundServer`; the registry is shared process state, so the
slow/fast scenarios registered here are visible server-side too.
"""

import json
import socket
import time

import pytest

from repro.engine.executor import execute, run_spec
from repro.engine.registry import get, scenario, unregister
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.backend import LocalBackend
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import BackgroundServer
from repro.service.shard import expand_sweep

SLOW_S = 0.5


@pytest.fixture(scope="module", autouse=True)
def service_scenarios():
    @scenario("_svc_fast", params={"n": 3})
    def _fast(n=3):
        return {"rows": [{"i": i} for i in range(n)],
                "verdict": {"ok": True}}

    @scenario("_svc_slow", params={"delay": SLOW_S})
    def _slow(delay=SLOW_S):
        time.sleep(delay)
        return {"rows": [{"slept": delay}], "verdict": {"ok": True}}

    @scenario("_svc_sweep", params={"n": 1, "gain": 1.0})
    def _sweep(n=1, gain=1.0):
        return {"rows": [{"value": i * gain} for i in range(n)],
                "verdict": {"ok": True}}

    yield
    for name in ("_svc_fast", "_svc_slow", "_svc_sweep"):
        unregister(name)


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(LocalBackend(backend="serial")) as bg:
        yield bg


@pytest.fixture
def client(server):
    with ServiceClient(server.host, server.port, timeout=30) as c:
        yield c


def raw_exchange(server, payload: bytes, frames: int = 1):
    """Push raw bytes at the server; collect reply lines."""
    with socket.create_connection((server.host, server.port),
                                  timeout=10) as sock:
        sock.sendall(payload)
        reader = sock.makefile("rb")
        return [json.loads(reader.readline()) for _ in range(frames)]


class TestRoundTripFidelity:
    def test_smoke_spec_matches_local_run(self, client):
        spec = get("E1").spec  # smoke-tagged, cheap
        results = client.submit([spec])
        assert len(results) == 1
        assert (
            results[0].comparable_payload()
            == run_spec(spec).comparable_payload()
        )
        assert client.last_done["total"] == 1
        assert client.last_done["failed"] == 0

    def test_spec_hash_survives_the_wire(self, client):
        spec = get("E5").spec
        results = client.submit([spec])
        assert results[0].spec_hash == spec.content_hash

    def test_ping(self, client):
        assert client.ping()


class TestStreaming:
    def test_first_result_arrives_before_last_job_finishes(self, client):
        arrivals = []
        results = client.submit(
            [ScenarioSpec("_svc_fast"), ScenarioSpec("_svc_slow")],
            progress=lambda _r: arrivals.append(time.monotonic()),
        )
        assert [r.name for r in results] == ["_svc_fast", "_svc_slow"]
        # batched-at-the-end delivery would put both frames within a few
        # ms; incremental streaming separates them by the slow job's
        # full runtime
        assert arrivals[1] - arrivals[0] > SLOW_S * 0.6

    def test_reattach_replays_and_follows(self, server):
        with ServiceClient(server.host, server.port, timeout=30) as first:
            first.send(
                protocol.make_submit(
                    [{"name": "_svc_fast"}, {"name": "_svc_slow"}],
                    stream=False,
                )
            )
            job = first._recv_checked()["job"]
            with ServiceClient(server.host, server.port,
                               timeout=30) as second:
                second.send(protocol.make_stream(job))
                names = []
                while True:
                    frame = second._recv_checked()
                    if frame["type"] == "done":
                        break
                    names.append(frame["result"]["name"])
        assert names == ["_svc_fast", "_svc_slow"]

    def test_status_reports_job_states(self, client):
        client.submit([ScenarioSpec("_svc_fast")])
        jobs = client.status()
        assert jobs[client.last_job]["state"] == "done"
        assert jobs[client.last_job]["failed"] == 0

    def test_cancel_stops_mid_sweep(self, server):
        with ServiceClient(server.host, server.port, timeout=30) as c:
            # distinct delays => distinct spec hashes => four real jobs
            specs = [
                ScenarioSpec("_svc_slow", {"delay": 0.3 + i * 1e-6})
                for i in range(4)
            ]
            results = []
            for result in c.submit_iter(specs):
                results.append(result)
                if len(results) == 1:
                    c.send(protocol.make_cancel(c.last_job))
            assert c.last_done["cancelled"]
            assert len(results) < 4


class TestFaults:
    def test_unknown_scenario_is_a_structured_error(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit([{"name": "E999"}])
        assert info.value.code == "unknown-scenario"
        # the connection (and server) survive: an immediate retry works
        assert client.submit([get("E1").spec])

    def test_malformed_spec_is_a_structured_error(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit([{"params": {"n": 1}}])  # no name at all
        assert info.value.code == "bad-spec"
        with pytest.raises(ServiceError) as info:
            client.submit([{"name": "E1", "params": 7}])
        assert info.value.code == "bad-spec"

    def test_unknown_message_type_keeps_connection_alive(self, server):
        bad = json.dumps(
            {"v": protocol.PROTOCOL_VERSION, "type": "frobnicate"}
        ).encode() + b"\n"
        ping = protocol.encode_frame(protocol.make_ping())
        error, pong = raw_exchange(server, bad + ping, frames=2)
        assert error["type"] == "error" and error["code"] == "unknown-type"
        assert pong["type"] == "pong"

    def test_version_mismatch_reported(self, server):
        bad = json.dumps({"v": 99, "type": "ping"}).encode() + b"\n"
        (error,) = raw_exchange(server, bad, frames=1)
        assert error["code"] == "version-mismatch"

    def test_garbage_line_reported_then_recovered(self, server):
        ping = protocol.encode_frame(protocol.make_ping())
        error, pong = raw_exchange(server, b"not json\n" + ping, frames=2)
        assert error["code"] == "bad-json"
        assert pong["type"] == "pong"

    def test_oversized_payload_is_fatal_but_contained(self, server):
        huge = b"x" * (protocol.MAX_FRAME_BYTES + 2)
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            sock.sendall(huge)
            reader = sock.makefile("rb")
            error = json.loads(reader.readline())
            assert error["code"] == "frame-too-large"
            assert reader.readline() == b""  # server closed this conn
        # ...but the server itself is fine
        with ServiceClient(server.host, server.port, timeout=30) as c:
            assert c.ping()

    def test_client_disconnect_mid_stream_leaves_server_healthy(
        self, server
    ):
        drop = socket.create_connection((server.host, server.port),
                                        timeout=10)
        drop.sendall(
            protocol.encode_frame(
                protocol.make_submit([{"name": "_svc_slow"}])
            )
        )
        # read the ack so the job is definitely scheduled, then vanish
        drop.makefile("rb").readline()
        drop.close()
        with ServiceClient(server.host, server.port, timeout=30) as c:
            results = c.submit([ScenarioSpec("_svc_fast")])
            assert results[0].ok
            # the orphaned job ran to completion in the background
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                states = {j["state"] for j in c.status().values()}
                if "running" not in states:
                    break
                time.sleep(0.05)
            assert "running" not in states

    def test_unknown_job_ids_rejected(self, client):
        client.send(protocol.make_stream("job-999999"))
        with pytest.raises(ServiceError) as info:
            client._recv_checked()
        assert info.value.code == "unknown-job"


class TestShardedSweep:
    AXES = {"n": [1, 2, 3, 4], "gain": [1.0, 2.0]}
    BASE = ScenarioSpec("_svc_sweep", {"n": 1, "gain": 1.0})

    def test_sharded_sweep_matches_serial_sweep(self, client):
        serial = execute(
            expand_sweep(self.BASE, self.AXES), backend="serial"
        )
        streamed = client.submit(
            [self.BASE], sweep=self.AXES, shards=4
        )
        assert client.last_done["total"] == 8
        assert sorted(
            json.dumps(r.comparable_payload(), sort_keys=True)
            for r in streamed
        ) == sorted(
            json.dumps(r.comparable_payload(), sort_keys=True)
            for r in serial
        )

    def test_server_side_shard_selection(self, client):
        expanded = expand_sweep(self.BASE, self.AXES)
        streamed = client.submit(
            [self.BASE], sweep=self.AXES, shard=(1, 4)
        )
        wanted = expanded[1::4]
        assert [r.spec_hash for r in streamed] == [
            s.content_hash for s in wanted
        ]


class TestLifecycle:
    def test_shutdown_message_stops_the_server(self):
        with BackgroundServer(LocalBackend(backend="serial")) as bg:
            with ServiceClient(bg.host, bg.port, timeout=30) as c:
                assert c.ping()
                c.shutdown()
            bg._thread.join(timeout=10)
            assert not bg._thread.is_alive()
            with pytest.raises(ServiceError):
                ServiceClient(bg.host, bg.port, timeout=1)

    def test_cache_replay_executes_zero(self, tmp_path):
        backend = LocalBackend(backend="serial", cache=tmp_path / "cache")
        with BackgroundServer(backend) as bg:
            with ServiceClient(bg.host, bg.port, timeout=30) as c:
                first = c.submit([get("E1").spec, get("E5").spec])
                assert c.last_done["executed"] == 2
                second = c.submit([get("E1").spec, get("E5").spec])
                assert c.last_done["executed"] == 0
                assert c.last_done["cached"] == 2
        assert all(r.cached for r in second)
        assert [r.comparable_payload() for r in first] == [
            r.comparable_payload() for r in second
        ]
