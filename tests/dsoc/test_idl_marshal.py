"""Unit and property tests for the DSOC IDL and wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.dsoc.idl import IdlError, Interface, Method, Param
from repro.dsoc.marshal import (
    MarshalError,
    WIRE_HEADER_BYTES,
    dumps,
    loads,
    wire_flits,
)


class TestParam:
    def test_unknown_type_rejected(self):
        with pytest.raises(IdlError, match="unknown type"):
            Param("x", "quaternion")

    def test_u32_bounds(self):
        p = Param("x", "u32")
        p.check(0)
        p.check(2**32 - 1)
        with pytest.raises(IdlError):
            p.check(2**32)
        with pytest.raises(IdlError):
            p.check(-1)

    def test_list_type(self):
        p = Param("xs", "list<u8>")
        p.check([1, 2, 255])
        with pytest.raises(IdlError):
            p.check([256])
        with pytest.raises(IdlError):
            p.check("not a list")

    def test_bytes_type(self):
        p = Param("blob", "bytes")
        p.check(b"\x00\x01")
        with pytest.raises(IdlError):
            p.check("string")


class TestMethod:
    def test_duplicate_params_rejected(self):
        with pytest.raises(IdlError, match="duplicate"):
            Method("m", (Param("x", "u32"), Param("x", "u32")))

    def test_arg_count_checked(self):
        m = Method("m", (Param("x", "u32"),))
        with pytest.raises(IdlError, match="takes 1"):
            m.check_args((1, 2))

    def test_oneway_cannot_return(self):
        with pytest.raises(IdlError, match="oneway"):
            Method("m", (), returns="u32", oneway=True)


class TestInterface:
    def test_duplicate_methods_rejected(self):
        with pytest.raises(IdlError, match="duplicate"):
            Interface("I", (Method("m"), Method("m")))

    def test_unknown_method_lists_available(self):
        iface = Interface("I", (Method("ping"),))
        with pytest.raises(IdlError, match="ping"):
            iface.method("pong")

    def test_empty_name_rejected(self):
        with pytest.raises(IdlError):
            Interface("")

    def test_method_names(self):
        iface = Interface("I", (Method("a"), Method("b")))
        assert iface.method_names() == ["a", "b"]


class TestMarshalBasics:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            2**40,
            -(2**40),
            0.0,
            3.14159,
            -2.5e300,
            b"",
            b"\x00\xff" * 10,
            "",
            "hello",
            "ünïcødé ✓",
            [],
            [1, "two", None, [3.0]],
            {},
            {"k": 1, "nested": {"a": [True]}},
        ],
    )
    def test_roundtrip(self, value):
        assert loads(dumps(value)) == value

    def test_tuple_becomes_list(self):
        assert loads(dumps((1, 2))) == [1, 2]

    def test_unsupported_type_rejected(self):
        with pytest.raises(MarshalError):
            dumps(object())

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(MarshalError):
            dumps({1: "x"})

    def test_trailing_bytes_rejected(self):
        with pytest.raises(MarshalError, match="trailing"):
            loads(dumps(1) + b"\x00")

    def test_truncated_data_rejected(self):
        blob = dumps("hello world")
        with pytest.raises(MarshalError):
            loads(blob[:-3])

    def test_unknown_tag_rejected(self):
        with pytest.raises(MarshalError, match="tag"):
            loads(b"\xee")

    def test_compactness_small_int_two_bytes(self):
        assert len(dumps(5)) == 2

    def test_wire_flits_includes_header(self):
        assert wire_flits(b"", flit_bytes=8) == WIRE_HEADER_BYTES // 8
        assert wire_flits(b"x" * 9, flit_bytes=8) == 3  # 17 bytes -> 3 flits

    def test_wire_flits_validation(self):
        with pytest.raises(MarshalError):
            wire_flits(b"", flit_bytes=0)


# Recursive strategy over exactly the wire-format domain.
_json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63)
    | st.floats(allow_nan=False, allow_infinity=True)
    | st.binary(max_size=64)
    | st.text(max_size=64),
    lambda children: st.lists(children, max_size=8)
    | st.dictionaries(st.text(max_size=16), children, max_size=8),
    max_leaves=30,
)


@given(value=_json_like)
def test_property_roundtrip(value):
    """dumps/loads is the identity over the full supported domain
    (tuples aside, which the strategy does not generate)."""
    assert loads(dumps(value)) == value


@given(value=_json_like)
def test_property_flit_count_positive_and_monotone_in_size(value):
    blob = dumps(value)
    assert wire_flits(blob) >= 1
    assert wire_flits(blob + b"xxxxxxxxx") >= wire_flits(blob)
