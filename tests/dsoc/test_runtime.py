"""Unit tests for DSOC objects, broker and runtime."""

import pytest

from repro.dsoc.broker import ObjectBroker, ReplicaPolicy
from repro.dsoc.idl import IdlError, Interface, Method, Param
from repro.dsoc.objects import DsocObject
from repro.dsoc.runtime import DsocRuntime
from repro.platform.fppa import build_platform
from repro.platform.stepnp import stepnp_spec
from repro.sim.core import Timeout


class Counter(DsocObject):
    interface = Interface(
        "Counter",
        (
            Method("bump", (Param("amount", "u32"),)),
            Method("read", ()),
            Method("fire", (), oneway=True),
        ),
    )

    def __init__(self):
        super().__init__()
        self.value = 0
        self.fired = 0

    def serve_bump(self, ctx, svc, amount):
        yield from ctx.compute(10)
        self.value += amount
        return self.value

    def serve_read(self, ctx, svc):
        yield from ctx.compute(2)
        return self.value

    def serve_fire(self, ctx, svc):
        yield from ctx.compute(1)
        self.fired += 1
        return None


def make_runtime(num_pes=4, threads=4, policy=ReplicaPolicy.ROUND_ROBIN):
    platform = build_platform(stepnp_spec(num_pes=num_pes, threads=threads))
    return platform, DsocRuntime(platform, policy=policy)


class TestServantValidation:
    def test_missing_interface_rejected(self):
        class Bad(DsocObject):
            pass

        with pytest.raises(IdlError, match="interface"):
            Bad()

    def test_missing_servant_method_rejected(self):
        class Incomplete(DsocObject):
            interface = Interface("I", (Method("m"),))

        with pytest.raises(IdlError, match="serve_m"):
            Incomplete()

    def test_dispatch_unknown_method(self):
        counter = Counter()
        with pytest.raises(IdlError):
            counter.dispatch("missing")


class TestInvocation:
    def test_call_and_response(self):
        platform, runtime = make_runtime()
        servant = Counter()
        runtime.deploy("counter", servant, platform.pes[0], server_threads=2)
        proxy = runtime.proxy(platform.line_interfaces[0].terminal, "counter")
        out = []

        def client():
            value = yield proxy.call("bump", 5)
            out.append(value)
            value = yield proxy.call("bump", 3)
            out.append(value)

        platform.sim.spawn(client())
        platform.run(until=50_000)
        assert out == [5, 8]
        assert servant.value == 8

    def test_argument_validation_at_caller(self):
        platform, runtime = make_runtime()
        runtime.deploy("counter", Counter(), platform.pes[0])
        proxy = runtime.proxy(platform.line_interfaces[0].terminal, "counter")
        with pytest.raises(IdlError):
            proxy.call("bump", "not an int")
        with pytest.raises(IdlError):
            proxy.call("bump")  # missing argument

    def test_oneway_returns_immediately(self):
        platform, runtime = make_runtime()
        servant = Counter()
        runtime.deploy("counter", servant, platform.pes[0])
        proxy = runtime.proxy(platform.line_interfaces[0].terminal, "counter")
        event = proxy.call("fire")
        assert event.triggered  # oneway completes at issue time
        platform.run(until=20_000)
        assert servant.fired == 1

    def test_unknown_object_rejected(self):
        platform, runtime = make_runtime()
        runtime.deploy("counter", Counter(), platform.pes[0])
        with pytest.raises(IdlError, match="counter"):
            runtime.proxy(0, "missing_object")


class TestReplication:
    def test_round_robin_spreads_requests(self):
        platform, runtime = make_runtime(num_pes=4)
        servants = []

        def factory():
            servant = Counter()
            servants.append(servant)
            return servant

        runtime.deploy_replicated("counter", factory, server_threads=2)
        proxy = runtime.proxy(platform.line_interfaces[0].terminal, "counter")

        def client():
            for _ in range(40):
                yield proxy.call("bump", 1)

        platform.sim.spawn(client())
        platform.run(until=200_000)
        assert sum(s.value for s in servants) == 40
        assert all(s.value == 10 for s in servants)

    def test_total_served(self):
        platform, runtime = make_runtime(num_pes=2)
        runtime.deploy_replicated("counter", Counter, server_threads=1)
        proxy = runtime.proxy(platform.line_interfaces[0].terminal, "counter")

        def client():
            for _ in range(6):
                yield proxy.call("read")

        platform.sim.spawn(client())
        platform.run(until=100_000)
        assert runtime.total_served("counter") == 6

    def test_interface_mismatch_on_reregister(self):
        broker = ObjectBroker()

        class Other(DsocObject):
            interface = Interface("Other", (Method("m"),))

            def serve_m(self, ctx, svc):
                yield from ctx.compute(1)

        platform, runtime = make_runtime(num_pes=2)
        runtime.deploy("obj", Counter(), platform.pes[0])
        with pytest.raises(IdlError, match="interface"):
            runtime.deploy("obj", Other(), platform.pes[1])


class TestPolicies:
    def test_shortest_queue_policy_runs(self):
        platform, runtime = make_runtime(policy=ReplicaPolicy.SHORTEST_QUEUE)
        runtime.deploy_replicated("counter", Counter, server_threads=1)
        proxy = runtime.proxy(platform.line_interfaces[0].terminal, "counter")
        done = []

        def client():
            for _ in range(12):
                yield proxy.call("bump", 1)
            done.append(True)

        platform.sim.spawn(client())
        platform.run(until=200_000)
        assert done == [True]

    def test_broker_lookup_error_lists_registered(self):
        broker = ObjectBroker()
        with pytest.raises(IdlError, match="none"):
            broker.lookup("ghost")


class TestServiceContext:
    def test_servant_can_read_platform_memory(self):
        platform, runtime = make_runtime()
        mem_terminal = platform.memory_terminal("esram")

        class TableReader(DsocObject):
            interface = Interface("TableReader", (Method("get", (Param("k", "u32"),)),))

            def serve_get(self, ctx, svc, k):
                yield from ctx.compute(5)
                value = yield from svc.read(mem_terminal, k)
                return {"key": k, "value": value}

        runtime.deploy("reader", TableReader(), platform.pes[0])
        proxy = runtime.proxy(platform.line_interfaces[0].terminal, "reader")
        out = []

        def client():
            result = yield proxy.call("get", 7)
            out.append(result)

        platform.sim.spawn(client())
        platform.run(until=50_000)
        assert out == [{"key": 7, "value": None}]
