"""Unit tests for the lightweight RTOS."""

import math

import pytest

from repro.rtos.kernel import RtosKernel, TaskState
from repro.rtos.schedulability import (
    PeriodicTaskSpec,
    liu_layland_bound,
    max_context_switch_cost,
    response_time_analysis,
    rm_schedulable_by_bound,
    schedulable,
    utilization,
)
from repro.rtos.sync import Mailbox, Semaphore
from repro.sim.core import Simulator


def make_kernel(switch_cost=1.0):
    sim = Simulator()
    kernel = RtosKernel(sim, context_switch_cycles=switch_cost)
    return sim, kernel


class TestKernelBasics:
    def test_single_task_runs_to_completion(self):
        sim, kernel = make_kernel()
        log = []

        def body():
            yield ("compute", 10)
            log.append(sim.now)

        kernel.create_task("t", 1, body)
        kernel.start()
        sim.run()
        assert log == [10.0]
        assert kernel.tasks["t"].state is TaskState.FINISHED

    def test_priority_order(self):
        """Higher-priority (lower number) tasks run first."""
        sim, kernel = make_kernel(switch_cost=0.0)
        order = []

        def body(tag):
            def gen():
                yield ("compute", 5)
                order.append(tag)

            return gen

        kernel.create_task("low", 5, body("low"))
        kernel.create_task("high", 1, body("high"))
        kernel.create_task("mid", 3, body("mid"))
        kernel.start()
        sim.run()
        assert order == ["high", "mid", "low"]

    def test_sleep_releases_cpu(self):
        sim, kernel = make_kernel(switch_cost=0.0)
        log = []

        def sleeper():
            yield ("sleep", 100)
            log.append(("sleeper", sim.now))

        def worker():
            yield ("compute", 20)
            log.append(("worker", sim.now))

        kernel.create_task("sleeper", 1, sleeper)
        kernel.create_task("worker", 2, worker)
        kernel.start()
        sim.run()
        # Worker completes during the sleeper's sleep despite priority.
        assert log[0] == ("worker", 20.0)
        assert log[1] == ("sleeper", 100.0)

    def test_context_switch_cost_accumulates(self):
        sim, kernel = make_kernel(switch_cost=50.0)

        def body():
            yield ("compute", 10)
            yield ("compute", 10)

        kernel.create_task("a", 1, body)
        kernel.create_task("b", 2, body)
        kernel.start()
        sim.run()
        assert kernel.switches >= 1
        assert kernel.overhead_cycles >= 50.0
        assert kernel.overhead_fraction() > 0

    def test_negative_switch_cost_rejected(self):
        with pytest.raises(ValueError):
            RtosKernel(Simulator(), context_switch_cycles=-1.0)

    def test_duplicate_task_rejected(self):
        _sim, kernel = make_kernel()
        kernel.create_task("t", 1, lambda: iter([("compute", 1)]))
        with pytest.raises(ValueError, match="duplicate"):
            kernel.create_task("t", 1, lambda: iter([("compute", 1)]))

    def test_double_start_rejected(self):
        _sim, kernel = make_kernel()
        kernel.start()
        with pytest.raises(RuntimeError):
            kernel.start()

    def test_utilization_accounting(self):
        sim, kernel = make_kernel(switch_cost=0.0)

        def body():
            yield ("compute", 30)
            yield ("sleep", 70)

        kernel.create_task("t", 1, body)
        kernel.start()
        sim.run(until=100)
        assert kernel.utilization() == pytest.approx(0.3)


class TestSemaphore:
    def test_mutual_exclusion_serializes(self):
        sim, kernel = make_kernel(switch_cost=0.0)
        sem = Semaphore(1)
        spans = []

        def body(tag):
            def gen():
                yield ("acquire", sem)
                start = sim.now
                yield ("compute", 10)
                yield ("release", sem)
                spans.append((tag, start, start + 10))

            return gen

        kernel.create_task("a", 1, body("a"))
        kernel.create_task("b", 2, body("b"))
        kernel.start()
        sim.run()
        assert len(spans) == 2
        (_, s1, e1), (_, s2, e2) = sorted(spans, key=lambda x: x[1])
        assert s2 >= e1  # critical sections do not overlap

    def test_release_wakes_highest_priority_waiter(self):
        sim, kernel = make_kernel(switch_cost=0.0)
        sem = Semaphore(0)
        order = []

        def waiter(tag):
            def gen():
                yield ("acquire", sem)
                order.append(tag)

            return gen

        def releaser():
            yield ("compute", 5)
            yield ("release", sem)
            yield ("release", sem)

        kernel.create_task("low", 9, waiter("low"))
        kernel.create_task("high", 1, waiter("high"))
        kernel.create_task("rel", 5, releaser)
        kernel.start()
        sim.run()
        assert order == ["high", "low"]

    def test_counting_semantics(self):
        sem = Semaphore(2)
        assert sem.try_acquire()
        assert sem.try_acquire()
        assert not sem.try_acquire()

    def test_validation(self):
        with pytest.raises(ValueError):
            Semaphore(-1)


class TestMailbox:
    def test_send_then_recv(self):
        sim, kernel = make_kernel(switch_cost=0.0)
        mbox = Mailbox()
        got = []

        def producer():
            yield ("compute", 5)
            yield ("send", mbox, "ping")

        def consumer():
            message = yield ("recv", mbox)
            got.append((message, sim.now))

        kernel.create_task("prod", 2, producer)
        kernel.create_task("cons", 1, consumer)
        kernel.start()
        sim.run()
        assert got == [("ping", 5.0)]

    def test_buffered_messages_fifo(self):
        sim, kernel = make_kernel(switch_cost=0.0)
        mbox = Mailbox()
        got = []

        def producer():
            for i in range(3):
                yield ("send", mbox, i)

        def consumer():
            yield ("sleep", 10)
            for _ in range(3):
                message = yield ("recv", mbox)
                got.append(message)

        kernel.create_task("prod", 1, producer)
        kernel.create_task("cons", 2, consumer)
        kernel.start()
        sim.run()
        assert got == [0, 1, 2]

    def test_counters(self):
        sim, kernel = make_kernel(switch_cost=0.0)
        mbox = Mailbox()

        def producer():
            yield ("send", mbox, "x")

        kernel.create_task("p", 1, producer)
        kernel.start()
        sim.run()
        assert mbox.sent == 1
        assert mbox.depth == 1


class TestSchedulability:
    def test_liu_layland_classic_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.828, abs=0.001)
        assert liu_layland_bound(100) == pytest.approx(math.log(2), abs=0.01)

    def test_utilization(self):
        tasks = [
            PeriodicTaskSpec("a", period=10, wcet=2),
            PeriodicTaskSpec("b", period=20, wcet=4),
        ]
        assert utilization(tasks) == pytest.approx(0.4)

    def test_bound_test_sufficient(self):
        tasks = [
            PeriodicTaskSpec("a", period=10, wcet=3),
            PeriodicTaskSpec("b", period=20, wcet=5),
        ]
        assert rm_schedulable_by_bound(tasks)
        assert schedulable(tasks)

    def test_rta_worked_example(self):
        """T=(50,100,200), C=(12,40,35), hand-iterated fixpoints:
        R1 = 12;
        R2: 40 -> 52 -> 64 -> 64 (one extra t1 preemption past t=50);
        R3: 35 -> 87 -> 99 -> 99."""
        tasks = [
            PeriodicTaskSpec("t1", period=50, wcet=12),
            PeriodicTaskSpec("t2", period=100, wcet=40),
            PeriodicTaskSpec("t3", period=200, wcet=35),
        ]
        responses = response_time_analysis(tasks)
        assert responses["t1"] == 12
        assert responses["t2"] == 64
        assert responses["t3"] == 99

    def test_overutilized_set_unschedulable(self):
        tasks = [
            PeriodicTaskSpec("a", period=10, wcet=6),
            PeriodicTaskSpec("b", period=10, wcet=6),
        ]
        assert not schedulable(tasks)
        assert response_time_analysis(tasks)["b"] == math.inf

    def test_context_switch_cost_can_break_schedulability(self):
        """The paper's hardware-OS-services argument, quantified: this
        set schedules with a cheap (hardware) scheduler but not with an
        expensive software one."""
        tasks = [
            PeriodicTaskSpec("fast", period=100, wcet=40),
            PeriodicTaskSpec("slow", period=250, wcet=60),
        ]
        assert schedulable(tasks, context_switch=1.0)
        assert not schedulable(tasks, context_switch=30.0)
        limit = max_context_switch_cost(tasks)
        assert 1.0 < limit < 30.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PeriodicTaskSpec("bad", period=0, wcet=1)
        with pytest.raises(ValueError):
            PeriodicTaskSpec("bad", period=10, wcet=20)
