"""Federated coordinators: one sweep sharded across peer pools.

A :class:`FederatedCoordinator` is a front-end listener that executes
nothing itself and owns no workers: every submitted spec goes onto a
federation queue and is granted, chunk by chunk, to N *peer
coordinator pools* — ordinary ``repro coordinator`` listeners, each
with its own worker fleet, journal, and supervisor — over the same
client protocol a ``repro submit`` would use.  Each pool keeps
tracking only its local state; the front composes their health
signals instead of centralizing them.

Failure model (composing with the pool-level story in
:mod:`repro.cluster.coordinator`):

* **pool dark** — a dedicated prober pings every pool; failures feed
  a per-pool :class:`CircuitBreaker` (closed → open on consecutive
  failures, half-open trial probes on a jittered exponential
  schedule from :mod:`repro.service.backoff`).  A forwarder mid-chunk
  aborts as soon as its stream breaks or its breaker opens, and the
  chunk's uncompleted specs are *re-homed*: returned to the front of
  the federation queue and re-granted to surviving pools.  Every
  involuntary re-home is charged against ``max_spec_retries``, so a
  spec that keeps killing whole pools terminates as a structured
  quarantine error instead of cycling forever;
* **front crash** — the front journals ``submit`` / ``assign`` /
  ``complete`` / ``job-done`` through the same
  :class:`~repro.cluster.journal.JobJournal` as a coordinator
  (``assign`` is the cross-hop analogue of ``lease``, folded into the
  same audit trail), so ``repro federate --resume`` re-enters only
  the specs no pool completed — merged reports stay identical to an
  uninterrupted serial run with zero re-executions of completed
  hashes;
* **hung peer** — every hop to a pool uses finite connect and poll
  timeouts; a pool that accepts TCP but stops answering fails its
  probes, opens the breaker, and its chunk re-homes.  A pool is only
  granted work while its breaker is closed (a probe success closes
  it), so a flapping pool cannot strand specs;
* **operator drain** — a ``pool-rehome`` frame marks a pool draining:
  no further chunks, and its in-flight specs return to the queue
  *uncharged* (a voluntary drain, like a worker ``release``).  A
  ``pool-register`` frame re-attaches it.

The scheduler itself is thread-based, not asyncio: the front's event
loop serves clients, while one forwarder thread per pool drives the
blocking :class:`~repro.service.client.ServiceClient` hop, because
the hop is exactly the synchronous submit/stream protocol.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.coordinator import (
    DEFAULT_MAX_SPEC_RETRIES,
    JournaledServer,
    WorkItem,
    quarantine_result,
)
from repro.cluster.journal import JobJournal
from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.backend import Backend
from repro.service.backoff import Backoff
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import ProtocolError
from repro.service.server import DEFAULT_HOST
from repro.telemetry.events import BUS
from repro.telemetry.metrics import METRICS
from repro.telemetry.spans import emit_span, new_span_id

DEFAULT_PORT = 7460
DEFAULT_PROBE_INTERVAL_S = 2.0
DEFAULT_FAILURE_THRESHOLD = 3
DEFAULT_CHUNK_SPECS = 4
#: per-read poll bound on a pool stream; a slow spec streams nothing
#: for a while, so a timeout is a *tick* (re-check breaker/drain/close
#: state), not a failure.
DEFAULT_POLL_TIMEOUT_S = 0.5
DEFAULT_CONNECT_TIMEOUT_S = 5.0

_COMPONENT = "cluster.federation"

PoolAddress = Union[str, Tuple[str, int]]


class CircuitBreaker:
    """Closed → open → half-open failure gate for one peer pool.

    ``record_failure`` trips the breaker after ``failure_threshold``
    consecutive failures (immediately when half-open); while open,
    :meth:`allow` denies until a reopen delay — drawn from the shared
    jittered exponential :class:`~repro.service.backoff.Backoff` —
    has elapsed, then grants exactly one half-open trial.  A success
    closes the breaker and resets the backoff; a failed trial re-opens
    it with a longer delay.  ``clock`` is injectable for fake-clock
    tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        backoff: Optional[Backoff] = None,
        clock=time.monotonic,
    ):
        self.failure_threshold = max(1, failure_threshold)
        self.backoff = backoff or Backoff(base_s=1.0, max_s=30.0)
        self.clock = clock
        self.state = self.CLOSED
        self.failures = 0          # consecutive
        self.opened_total = 0
        self.retry_at = 0.0

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0
        self.backoff.reset()

    def record_failure(self) -> None:
        self.failures += 1
        if (self.state == self.HALF_OPEN
                or self.failures >= self.failure_threshold):
            if self.state != self.OPEN:
                self.opened_total += 1
            self.state = self.OPEN
            self.retry_at = self.clock() + self.backoff.next_delay()

    def allow(self) -> bool:
        """May the caller try the peer right now?

        Closed: always.  Open: only once the reopen delay elapsed,
        which transitions to half-open (that call *is* the trial).
        Half-open: no — one trial is already out.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN and self.clock() >= self.retry_at:
            self.state = self.HALF_OPEN
            return True
        return False

    def status(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.failures,
            "opened_total": self.opened_total,
        }


class PoolPeer:
    """Front-side state for one federated coordinator pool."""

    def __init__(self, name: str, host: str, port: int,
                 breaker: CircuitBreaker):
        self.name = name
        self.host = host
        self.port = port
        self.breaker = breaker
        self.draining = False
        self.removed = False
        self.assigned = 0
        self.completed = 0
        self.rehomed = 0
        #: the chunk currently streaming on this pool (forwarder-owned,
        #: mutated under the federation lock).
        self.inflight: List[WorkItem] = []
        self.thread: Optional[threading.Thread] = None

    def status(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "breaker": self.breaker.status(),
            "draining": self.draining,
            "assigned": self.assigned,
            "completed": self.completed,
            "rehomed": self.rehomed,
            "inflight": len(self.inflight),
        }


class FederationPool:
    """Chunked spec scheduler over peer coordinator pools.

    The thread-based sibling of :class:`~repro.cluster.coordinator.
    ClusterPool`: batches arrive via :meth:`submit_batch` (called from
    the server's executor threads), items wait on one deque guarded by
    a condition, and one forwarder thread per peer takes chunks while
    that peer's breaker is closed.  Results are delivered to the
    batch's thread-safe sink, completions are journaled by the server
    hooks, and pool grants are journaled here as ``assign`` events.
    """

    def __init__(
        self,
        journal: Optional[JobJournal] = None,
        *,
        max_spec_retries: Optional[int] = None,
        chunk_specs: int = DEFAULT_CHUNK_SPECS,
        probe_interval_s: float = DEFAULT_PROBE_INTERVAL_S,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        poll_timeout_s: float = DEFAULT_POLL_TIMEOUT_S,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
        auth_token: Optional[str] = None,
    ):
        self.journal = journal
        self.max_spec_retries = (
            DEFAULT_MAX_SPEC_RETRIES
            if max_spec_retries is None else max(0, max_spec_retries)
        )
        self.chunk_specs = max(1, chunk_specs)
        self.probe_interval_s = probe_interval_s
        self.failure_threshold = failure_threshold
        self.poll_timeout_s = poll_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.auth_token = auth_token
        #: callable ``job_id -> (trace_id, job_span_id) | None`` set by
        #: the owning front so chunk ``assign`` spans parent on the
        #: front job span and pools inherit the trace over the wire.
        self.trace_resolver = None
        self.peers: Dict[str, PoolPeer] = {}
        self.closed = False
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._batches: Dict[str, List[WorkItem]] = {}
        self._batch_counter = 0
        self._peer_counter = 0
        self._started = False
        self._stop = threading.Event()
        self._prober: Optional[threading.Thread] = None
        self.total_completed = 0
        self.total_rehomed = 0
        self.total_quarantined = 0
        self.total_assigned = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._started or self.closed:
                return
            self._started = True
            peers = list(self.peers.values())
        self._prober = threading.Thread(
            target=self._probe_loop, name="fed-prober", daemon=True
        )
        self._prober.start()
        for peer in peers:
            self._start_forwarder(peer)

    def _start_forwarder(self, peer: PoolPeer) -> None:
        peer.thread = threading.Thread(
            target=self._forward_loop, args=(peer,),
            name=f"fed-forward-{peer.name}", daemon=True,
        )
        peer.thread.start()

    def shutdown(self) -> None:
        """Stop scheduling; wake every blocked batch with an abort."""
        with self._cond:
            if self.closed:
                return
            self.closed = True
            for items in self._batches.values():
                for item in items:
                    item.abandoned = True
                if items:
                    items[0].sink.put(
                        ("abort", "federation front stopped")
                    )
            self._batches.clear()
            self._cond.notify_all()
        self._stop.set()

    def describe(self) -> str:
        return (
            f"pools={len(self.peers)}, queued={len(self._queue)}, "
            f"chunk={self.chunk_specs}"
        )

    # -- pools ---------------------------------------------------------------

    def add_pool(self, host: str, port: int,
                 name: Optional[str] = None) -> PoolPeer:
        """Attach (or re-attach) a peer pool; idempotent by name.

        Re-registering an existing name clears its drain flag, closes
        its breaker, and re-points it at ``host:port`` — the recovery
        path after an operator ``pool-rehome``.
        """
        with self._cond:
            peer = self.peers.get(name) if name else None
            if peer is None:
                for existing in self.peers.values():
                    if (existing.host, existing.port) == (host, int(port)):
                        peer = existing
                        break
            if peer is not None:
                peer.host = host
                peer.port = int(port)
                peer.draining = False
                peer.breaker.record_success()
                self._cond.notify_all()
                started = False
            else:
                self._peer_counter += 1
                peer = PoolPeer(
                    name or f"pool-{self._peer_counter}",
                    host, int(port),
                    CircuitBreaker(
                        failure_threshold=self.failure_threshold
                    ),
                )
                self.peers[peer.name] = peer
                started = self._started
            METRICS.gauge("federation.pools").set(len(self.peers))
        if BUS.enabled:
            BUS.emit(_COMPONENT, "pool-register", pool=peer.name,
                     host=peer.host, port=peer.port)
        if started:
            self._start_forwarder(peer)
        return peer

    def rehome_pool(self, name: str) -> int:
        """Drain a pool by name; returns its in-flight spec count.

        The named pool stops receiving chunks immediately; its current
        chunk's uncompleted specs return to the queue (uncharged) as
        soon as the forwarder observes the drain flag — within one
        poll tick.  Raises ``KeyError`` for an unknown pool.
        """
        with self._cond:
            peer = self.peers[name]
            peer.draining = True
            pending = [
                i for i in peer.inflight
                if not i.delivered and not i.abandoned
            ]
            self._cond.notify_all()
        if BUS.enabled:
            BUS.emit(_COMPONENT, "pool-drain", pool=name,
                     inflight=len(pending))
        return len(pending)

    def pool_health(self) -> Dict[str, Dict[str, Any]]:
        with self._cond:
            return {p.name: p.status() for p in self.peers.values()}

    def status(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "pools": {
                    p.name: p.status() for p in self.peers.values()
                },
                "queued": len(self._queue),
                "inflight": sum(
                    len(p.inflight) for p in self.peers.values()
                ),
                "completed": self.total_completed,
                "rehomed": self.total_rehomed,
                "quarantined": self.total_quarantined,
                "assigned": self.total_assigned,
            }

    # -- batches (FederationBackend face) ------------------------------------

    def submit_batch(self, specs: Sequence[ScenarioSpec], sink,
                     label: Optional[str] = None) -> str:
        """Queue one backend batch; thread-safe; returns the batch id."""
        with self._cond:
            self._batch_counter += 1
            batch_id = f"fbatch-{self._batch_counter}"
            if self.closed:
                sink.put(("abort", "federation front stopped"))
                return batch_id
            items = [
                WorkItem(spec, job_id=label or "", sink=sink,
                         batch_id=batch_id)
                for spec in specs
            ]
            self._batches[batch_id] = items
            self._queue.extend(items)
            self._cond.notify_all()
        return batch_id

    def abandon_batch(self, batch_id: str) -> None:
        with self._cond:
            for item in self._batches.pop(batch_id, ()):
                item.abandoned = True

    def _batch_done_locked(self, item: WorkItem) -> None:
        items = self._batches.get(item.batch_id)
        if items is not None and all(i.delivered for i in items):
            del self._batches[item.batch_id]

    # -- probing -------------------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_interval_s):
            for peer in list(self.peers.values()):
                if self.closed:
                    return
                if peer.draining or peer.removed:
                    continue
                breaker = peer.breaker
                if breaker.state == CircuitBreaker.CLOSED or breaker.allow():
                    self._probe(peer)

    def _probe(self, peer: PoolPeer) -> None:
        was_open = peer.breaker.state != CircuitBreaker.CLOSED
        try:
            with ServiceClient(
                peer.host, peer.port,
                timeout=self.connect_timeout_s,
                connect_timeout=self.connect_timeout_s,
                auth_token=self.auth_token,
            ) as client:
                ok = client.ping()
        except (ServiceError, OSError):
            ok = False
        if ok:
            peer.breaker.record_success()
            if was_open:
                METRICS.counter("federation.pool_recoveries").inc()
                if BUS.enabled:
                    BUS.emit(_COMPONENT, "pool-recovered",
                             pool=peer.name)
                with self._cond:
                    self._cond.notify_all()
        else:
            self._record_peer_failure(peer)

    def _record_peer_failure(self, peer: PoolPeer) -> None:
        was_dark = peer.breaker.state == CircuitBreaker.OPEN
        peer.breaker.record_failure()
        METRICS.counter("federation.probe_failures").inc()
        if peer.breaker.state == CircuitBreaker.OPEN and not was_dark:
            METRICS.counter("federation.breaker_opens").inc()
            if BUS.enabled:
                BUS.emit(_COMPONENT, "pool-dark", pool=peer.name,
                         failures=peer.breaker.failures)
            with self._cond:
                self._cond.notify_all()

    # -- forwarding ----------------------------------------------------------

    def _forward_loop(self, peer: PoolPeer) -> None:
        while True:
            chunk = self._next_chunk(peer)
            if chunk is None:
                return
            self._run_chunk(peer, chunk)

    def _next_chunk(self, peer: PoolPeer) -> Optional[List[WorkItem]]:
        """Block until this peer may take work; None ends the thread."""
        with self._cond:
            while True:
                if self.closed or peer.removed:
                    return None
                if (not peer.draining
                        and peer.breaker.state == CircuitBreaker.CLOSED
                        and self._queue):
                    items: List[WorkItem] = []
                    while self._queue and len(items) < self.chunk_specs:
                        item = self._queue.popleft()
                        if item.abandoned or item.delivered:
                            continue
                        items.append(item)
                    if items:
                        for item in items:
                            peer.assigned += 1
                            self.total_assigned += 1
                            if self.journal is not None:
                                self.journal.record_assign(
                                    item.job_id,
                                    item.spec.content_hash,
                                    peer.name,
                                )
                            METRICS.counter("federation.assigned").inc()
                            if BUS.enabled:
                                BUS.emit(
                                    _COMPONENT, "pool-assign",
                                    job_id=item.job_id,
                                    spec_hash=item.spec.content_hash,
                                    pool=peer.name,
                                )
                        # the roster must be its own list: delivery
                        # removes items from it while the forwarder
                        # still iterates the chunk
                        peer.inflight = list(items)
                        return items
                # the timed wait doubles as the breaker-reopen clock:
                # a notify is not guaranteed when retry_at elapses
                self._cond.wait(timeout=0.25)

    def _chunk_trace(self, items: List[WorkItem]):
        """Mint this chunk's ``assign`` span under the front job span.

        Returns ``(wire_trace, span_id, parent_id)`` — all empty when
        the job carries no trace (e.g. journal-restored work).  The
        wire trace names the *chunk* span as parent, so the pool-side
        job span nests under this hop.
        """
        if self.trace_resolver is not None:
            for item in items:
                if not item.job_id:
                    continue
                context = self.trace_resolver(item.job_id)
                if context:
                    trace_id, parent_id = context
                    span_id = new_span_id()
                    return ({"id": trace_id, "span": span_id},
                            span_id, parent_id)
        return None, "", ""

    def _run_chunk(self, peer: PoolPeer, items: List[WorkItem]) -> None:
        pending: Dict[str, deque] = {}
        for item in items:
            pending.setdefault(item.spec.content_hash,
                               deque()).append(item)
        outstanding = set(items)
        trace_ctx, chunk_span, trace_parent = self._chunk_trace(items)
        chunk_started = time.monotonic()
        try:
            client = ServiceClient(
                peer.host, peer.port,
                timeout=self.poll_timeout_s,
                connect_timeout=self.connect_timeout_s,
                auth_token=self.auth_token,
            )
        except ServiceError:
            self._record_peer_failure(peer)
            self._rehome(peer, outstanding, charged=True)
            return
        try:
            with client:
                client.send(protocol.make_submit(
                    [i.spec.to_dict() for i in items], stream=True,
                    trace=trace_ctx,
                ))
                while outstanding:
                    try:
                        frame = client.recv()
                    except ServiceError as exc:
                        if exc.code != "timeout":
                            raise
                        if self.closed:
                            return
                        if peer.draining:
                            self._rehome(peer, outstanding,
                                         charged=False)
                            return
                        if peer.breaker.state == CircuitBreaker.OPEN:
                            # the prober declared the pool dark while
                            # this stream sat silent
                            self._rehome(peer, outstanding,
                                         charged=True)
                            return
                        if all(i.abandoned for i in outstanding):
                            return  # nobody wants these results
                        continue
                    type_ = frame.get("type")
                    if type_ == "error":
                        raise ServiceError(
                            frame.get("code", "error"),
                            frame.get("message", "pool error"),
                        )
                    if type_ == "result":
                        result = ScenarioResult.from_dict(
                            frame["result"]
                        )
                        queue = pending.get(result.spec_hash)
                        if queue:
                            item = queue.popleft()
                            outstanding.discard(item)
                            self._deliver(peer, item, result)
                    elif type_ == "done":
                        break
                    # ack / pong frames are stream noise; ignore
            # a 'done' with specs still outstanding means the pool
            # finished the job without returning them (server-side
            # cancel): treat as an involuntary loss
            if outstanding:
                self._rehome(peer, outstanding, charged=True)
        except (ServiceError, OSError, KeyError, TypeError,
                ValueError) as exc:
            busy = isinstance(exc, ServiceError) and exc.code == "busy"
            if not busy:
                self._record_peer_failure(peer)
            if BUS.enabled:
                BUS.emit(_COMPONENT, "pool-chunk-failed",
                         pool=peer.name, specs=len(outstanding),
                         error=f"{type(exc).__name__}: {exc}")
            # a busy pool did nothing wrong and neither did the specs:
            # requeue uncharged and let another pool (or a later
            # chunk) take them
            self._rehome(peer, outstanding, charged=not busy)
            if busy:
                self._stop.wait(self.poll_timeout_s)
        finally:
            with self._cond:
                peer.inflight = []
            if trace_ctx and BUS.enabled:
                # one span per chunk (not per spec): the federation's
                # unit of assignment is the chunk, and its duration is
                # the pool hop the critical path actually paid
                emit_span(
                    _COMPONENT, "assign",
                    trace_id=trace_ctx["id"], span_id=chunk_span,
                    parent_id=trace_parent, job_id=items[0].job_id,
                    duration_s=time.monotonic() - chunk_started,
                    pool=peer.name, specs=len(items),
                    completed=len(items) - len(outstanding),
                )

    def _deliver(self, peer: PoolPeer, item: WorkItem,
                 result: ScenarioResult) -> None:
        with self._cond:
            if item.abandoned or item.delivered:
                return
            item.delivered = True
            # leave the inflight roster under the same lock: a client
            # that has every result must see inflight == 0 in status,
            # not wait on the forwarder reaching its chunk epilogue
            if item in peer.inflight:
                peer.inflight.remove(item)
            peer.completed += 1
            self.total_completed += 1
            self._batch_done_locked(item)
        peer.breaker.record_success()
        METRICS.counter("federation.completed").inc()
        if BUS.enabled:
            BUS.emit(_COMPONENT, "pool-complete", job_id=item.job_id,
                     spec_hash=item.spec.content_hash, pool=peer.name,
                     status=result.status)
        item.sink.put(("result", result))

    def _rehome(self, peer: PoolPeer, items, *, charged: bool) -> None:
        """Return a failed/drained chunk's specs to the queue.

        ``charged`` burns one retry per spec (involuntary loss: dark
        pool, broken stream); past ``max_spec_retries`` the spec is
        quarantined as a structured error.  Uncharged re-homes
        (operator drain, busy pool) are free, mirroring a worker's
        graceful ``release``.
        """
        rehomed = 0
        quarantined: List[WorkItem] = []
        with self._cond:
            for item in items:
                if item.abandoned or item.delivered:
                    continue
                if charged:
                    item.requeues += 1
                    if item.requeues > self.max_spec_retries:
                        quarantined.append(item)
                        continue
                self._queue.appendleft(item)
                rehomed += 1
            peer.rehomed += rehomed
            self.total_rehomed += rehomed
            for item in quarantined:
                item.delivered = True
                self.total_quarantined += 1
                self._batch_done_locked(item)
            self._cond.notify_all()
        if rehomed:
            METRICS.counter("federation.rehomed").inc(rehomed)
            if BUS.enabled:
                BUS.emit(_COMPONENT, "pool-rehome", pool=peer.name,
                         specs=rehomed, charged=charged)
        for item in quarantined:
            METRICS.counter("federation.quarantined").inc()
            if BUS.enabled:
                BUS.emit(_COMPONENT, "quarantine", job_id=item.job_id,
                         spec_hash=item.spec.content_hash,
                         requeues=item.requeues)
            item.sink.put((
                "result",
                quarantine_result(
                    item.spec, item.requeues, self.max_spec_retries,
                    backend="federation", suspect="pools",
                ),
            ))


class FederationBackend(Backend):
    """The federation queue as a :class:`Backend`: forward everything.

    The thread-side twin of :class:`~repro.service.backend.
    PoolBackend`: ``run`` executes on the server's executor thread,
    hands the batch to the :class:`FederationPool` directly (it is
    already thread-safe — no event-loop hop needed), and drains the
    sink until every spec has a result or the federation stops.
    """

    name = "federation"

    def __init__(self, fed: FederationPool):
        self.fed = fed

    def run(self, specs, progress=None, *, label=None):
        import queue as stdlib_queue

        specs = list(specs)
        if not specs:
            return []
        sink: "stdlib_queue.Queue" = stdlib_queue.Queue()
        batch_id = self.fed.submit_batch(specs, sink, label=label)
        completed: List[ScenarioResult] = []
        try:
            while len(completed) < len(specs):
                try:
                    kind, payload = sink.get(timeout=1.0)
                except stdlib_queue.Empty:
                    if self.fed.closed:
                        raise RuntimeError(
                            "federation front stopped while the batch "
                            "was in flight"
                        ) from None
                    continue
                if kind == "abort":
                    raise RuntimeError(
                        f"federation aborted the batch: {payload}"
                    )
                completed.append(payload)
                if progress:
                    progress(payload)
        finally:
            if len(completed) < len(specs):
                self.fed.abandon_batch(batch_id)
        return completed

    def describe(self) -> str:
        return f"federation({self.fed.describe()})"


def _parse_pool_address(entry: PoolAddress) -> Tuple[str, int]:
    if isinstance(entry, str):
        host, _colon, port = entry.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"pool address {entry!r} must be HOST:PORT"
            )
        return host, int(port)
    host, port = entry
    return str(host), int(port)


class FederatedCoordinator(JournaledServer):
    """The front-end listener: clients submit here, pools execute.

    Speaks the full client protocol (``submit`` / ``status`` /
    ``stream`` / ``cancel`` / ``shutdown``) plus the federation admin
    frames (``pool-register`` / ``pool-health`` / ``pool-rehome``).
    ``pools`` seeds the peer set; more can be attached at runtime via
    ``repro submit --pool``.  Durability composes with the pools':
    this front journals assignments and completions, each pool
    journals its own leases, and ``--resume`` here re-enters only
    specs no pool completed.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        pools: Sequence[PoolAddress] = (),
        journal_path: Optional[str] = None,
        resume: bool = False,
        auth_token: Optional[str] = None,
        pool_auth_token: Optional[str] = None,
        max_pending: Optional[int] = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        warehouse=None,
        max_spec_retries: Optional[int] = None,
        compact_every: Optional[int] = None,
        chunk_specs: int = DEFAULT_CHUNK_SPECS,
        probe_interval_s: float = DEFAULT_PROBE_INTERVAL_S,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        poll_timeout_s: float = DEFAULT_POLL_TIMEOUT_S,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
    ):
        journal = (
            JobJournal(journal_path, compact_every=compact_every)
            if journal_path else None
        )
        self.fed = FederationPool(
            journal=journal,
            max_spec_retries=max_spec_retries,
            chunk_specs=chunk_specs,
            probe_interval_s=probe_interval_s,
            failure_threshold=failure_threshold,
            poll_timeout_s=poll_timeout_s,
            connect_timeout_s=connect_timeout_s,
            auth_token=(
                pool_auth_token if pool_auth_token is not None
                else auth_token
            ),
        )
        for entry in pools:
            pool_host, pool_port = _parse_pool_address(entry)
            self.fed.add_pool(pool_host, pool_port)
        super().__init__(
            FederationBackend(self.fed),
            journal=journal,
            resume=resume,
            warehouse=warehouse,
            warehouse_source="federation",
            host=host,
            port=port,
            max_frame_bytes=max_frame_bytes,
            auth_token=auth_token,
            max_pending=max_pending,
        )
        # chunk assign spans parent on the front job's span, and the
        # wire trace makes pool-side jobs nest under the chunk
        self.fed.trace_resolver = self._job_trace

    # -- lifecycle ----------------------------------------------------------

    def _serving_started(self, loop) -> None:
        self.fed.start()

    def _interrupted(self) -> bool:
        return self.fed.closed

    def request_stop(self) -> None:
        self.fed.shutdown()
        super().request_stop()

    # -- server hooks -------------------------------------------------------

    def _job_batches(self, specs, shards):
        # the federation chunks specs itself; shard batching here
        # would only serialize the pool fan-out
        return [list(specs)]

    def _cluster_status(self) -> Optional[Dict[str, Any]]:
        status = self.fed.status()
        status["federation"] = True
        if self.journal is not None and self.journal.last_compaction:
            status["last_compaction"] = dict(
                self.journal.last_compaction
            )
        return status

    # -- federation admin frames --------------------------------------------

    async def _handle_fed_frame(self, type_, message, writer,
                                lock) -> bool:
        if type_ == "pool-register":
            peer = self.fed.add_pool(
                message["host"], message["port"], message.get("name")
            )
            await self._send(
                writer, lock, protocol.make_ack(peer.name, 0)
            )
            return False
        if type_ == "pool-health":
            await self._send(
                writer, lock,
                protocol.make_pool_health_reply(self.fed.pool_health()),
            )
            return False
        # pool-rehome
        try:
            count = self.fed.rehome_pool(message["pool"])
        except KeyError:
            await self._send_error(
                writer, lock,
                ProtocolError(
                    "unknown-pool",
                    f"no pool {message['pool']!r} registered on this "
                    "front",
                ),
            )
            return False
        await self._send(
            writer, lock, protocol.make_ack(message["pool"], count)
        )
        return False
