"""The cluster worker: lease in, :class:`ScenarioResult` out.

``repro worker --connect host:port`` runs one of these.  A worker is
deliberately stateless: it registers with the coordinator, heartbeats
on the interval the coordinator dictates, executes one leased spec at
a time through an ordinary :class:`~repro.service.backend.LocalBackend`
(so the on-disk result cache and deterministic seeding are exactly the
``repro run`` ones), and streams each result back as a
``lease-result`` frame.  Everything durable lives coordinator-side in
the journal; killing a worker loses nothing but the leases it held,
which the coordinator requeues.

Execution is strictly serial per worker even when ``capacity > 1``
(capacity only prefetches the next lease into the socket buffer):
scenario seeding goes through the process-global RNGs, so in-process
concurrency would break bit-reproducibility.  Scale-out is more
workers, not threads.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Optional

from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.backend import Backend, LocalBackend
from repro.service.backoff import Backoff
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import ProtocolError
from repro.telemetry.events import BUS, diag
from repro.telemetry.metrics import METRICS
from repro.telemetry.spans import emit_span, new_span_id

_COMPONENT = "cluster.worker"


class WorkerError(Exception):
    """The coordinator refused this worker (auth, protocol, version)."""


class ClusterWorker:
    """One registered worker: connect, lease, execute, report, repeat."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        capacity: int = 1,
        backend: Optional[Backend] = None,
        cache=None,
        max_cache_entries: Optional[int] = None,
        auth_token: Optional[str] = None,
        connect_retries: int = 25,
        retry_delay_s: float = 0.2,
        reconnects: int = 5,
        reconnect_delay_s: float = 1.0,
        quiet: bool = True,
        chaos=None,
    ):
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.capacity = max(1, capacity)
        self.backend = backend if backend is not None else LocalBackend(
            backend="serial", cache=cache,
            max_cache_entries=max_cache_entries,
        )
        self.auth_token = auth_token
        self.connect_retries = connect_retries
        self.retry_delay_s = retry_delay_s
        self.reconnects = reconnects
        self.reconnect_delay_s = reconnect_delay_s
        self.quiet = quiet
        #: optional :class:`repro.cluster.chaos.ChaosMonkey` whose
        #: fire() calls gate the fault-injection hook points below.
        self.chaos = chaos
        self.executed = 0
        self.released = 0
        self.worker_id: Optional[str] = None
        self._stop = threading.Event()
        self._drain = threading.Event()
        self._send_lock = threading.Lock()
        self._client: Optional[ServiceClient] = None

    # -- control ------------------------------------------------------------

    def stop(self) -> None:
        """Exit by severing the connection — there is no goodbye frame;
        the coordinator treats every disconnect the same way, requeueing
        whatever this worker had leased."""
        self._stop.set()
        self._drop_connection()

    #: alias: stopping *is* vanishing abruptly (the fault-injection
    #: tests use this name as the in-process stand-in for SIGKILL).
    kill = stop

    def drain(self) -> None:
        """Graceful exit: finish the in-flight lease, hand unstarted
        leases back with a ``release`` frame, then stop.  This is the
        SIGTERM path — the difference from :meth:`kill` is that the
        coordinator gets the buffered leases back immediately instead
        of waiting out the lease timeout."""
        self._drain.set()

    def _drop_connection(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            client.close()

    def _log(self, text: str) -> None:
        if not self.quiet:
            # diagnostics go to stderr; stdout stays machine-readable
            diag(f"worker {self.name}", text)

    # -- main loop ----------------------------------------------------------

    def run(self) -> int:
        """Serve leases until stopped; returns specs executed.

        Reconnects up to ``reconnects`` times after a lost coordinator
        (the budget resets on every successful registration), pacing
        retries with the shared jittered exponential backoff —
        ``reconnect_delay_s`` is the base delay — so a restarted
        coordinator is not stampeded by its whole fleet at once.
        """
        budget = self.reconnects
        backoff = Backoff(base_s=self.reconnect_delay_s, max_s=30.0)
        while not self._stop.is_set() and not self._drain.is_set():
            try:
                self._serve_one_connection()
                budget = self.reconnects
                backoff.reset()
            except (ServiceError, OSError) as exc:
                if self._stop.is_set():
                    break
                self._log(f"connection lost: {exc}")
            finally:
                self._drop_connection()
            if (self._stop.is_set() or self._drain.is_set()
                    or budget <= 0):
                break
            budget -= 1
            # interruptible backoff: a stop or drain signal landing
            # mid-wait must not sit out a 30s reconnect delay
            deadline = time.monotonic() + backoff.next_delay()
            while (time.monotonic() < deadline
                   and not self._drain.is_set()
                   and not self._stop.wait(0.1)):
                pass
        return self.executed

    def _serve_one_connection(self) -> None:
        client = ServiceClient(
            self.host,
            self.port,
            timeout=0.5,  # short poll so stop() is honored promptly
            # the dial gets its own (looser) bound: the 0.5s poll is a
            # read cadence, not a sane limit for TCP setup under load
            connect_timeout=5.0,
            retries=self.connect_retries,
            retry_delay_s=self.retry_delay_s,
            auth_token=self.auth_token,
        )
        self._client = client
        self._send(protocol.make_register(self.name, self.capacity))
        registered = self._await_frame(client, "registered")
        self.worker_id = registered.get("worker")
        heartbeat_s = float(registered.get("heartbeat_s") or 5.0)
        self._log(
            f"registered as {self.worker_id} "
            f"(heartbeat every {heartbeat_s:g}s)"
        )
        pulse = threading.Thread(
            target=self._heartbeat_loop, args=(client, heartbeat_s),
            daemon=True,
        )
        pulse.start()
        try:
            while not self._stop.is_set():
                if self._drain.is_set():
                    self._graceful_release(client)
                    return
                try:
                    frame = client.recv()
                except ServiceError as exc:
                    if exc.code == "timeout":
                        continue
                    raise
                type_ = frame.get("type")
                if type_ == "lease":
                    self._execute_lease(frame)
                elif type_ in ("bye", "pong"):
                    if type_ == "bye":
                        return
                elif type_ == "error":
                    raise WorkerError(
                        f"{frame.get('code')}: {frame.get('message')}"
                    )
        finally:
            pulse.join(timeout=2.0)

    def _graceful_release(self, client: ServiceClient) -> None:
        """Drain exit: return every buffered (unstarted) lease.

        Leases the coordinator pushed beyond the one just finished sit
        decoded-but-unread in the client; a short read drains them
        (the 0.5s recv timeout doubles as the \"no more buffered
        frames\" signal), then one ``release`` frame hands them all
        back so the coordinator can re-grant immediately instead of
        waiting out the lease timeout.
        """
        leases = []
        while True:
            try:
                frame = client.recv()
            except ServiceError as exc:
                if exc.code == "timeout":
                    break
                return  # connection already gone; timeout recovers them
            if frame.get("type") == "lease" and frame.get("lease"):
                leases.append(str(frame["lease"]))
        if not leases:
            return
        self.released += len(leases)
        METRICS.counter("worker.leases_released").inc(len(leases))
        if BUS.enabled:
            BUS.emit(_COMPONENT, "drain-release", worker=self.name,
                     released=len(leases))
        self._log(f"draining: releasing {len(leases)} unstarted leases")
        try:
            self._send(protocol.make_release(leases, self.worker_id))
            # bounded wait for the ack so the hand-off lands before we
            # close; a dead coordinator must not wedge the drain (the
            # lease timeout recovers the specs either way)
            for _ in range(10):
                try:
                    if client.recv().get("type") == "ack":
                        break
                except ServiceError as exc:
                    if exc.code != "timeout":
                        break
        except (ServiceError, OSError):
            pass

    def _await_frame(self, client: ServiceClient, wanted: str) -> dict:
        while True:
            try:
                frame = client.recv()
            except ServiceError as exc:
                if exc.code == "timeout":
                    if self._stop.is_set():
                        raise
                    continue
                raise
            if frame.get("type") == "error":
                raise WorkerError(
                    f"{frame.get('code')}: {frame.get('message')}"
                )
            if frame.get("type") == wanted:
                return frame

    def _heartbeat_loop(self, client: ServiceClient,
                        heartbeat_s: float) -> None:
        while not self._stop.is_set() and self._client is client:
            delay = (self.chaos.heartbeat_delay()
                     if self.chaos is not None else 0.0)
            time.sleep(heartbeat_s + delay)
            if (self.chaos is not None
                    and self.chaos.fire("skip-heartbeat")):
                continue  # chaos: suppress this pulse
            try:
                self._send(protocol.make_heartbeat(self.worker_id))
            except (ServiceError, OSError):
                return  # main loop notices the dead socket on its own

    def _send(self, message: dict) -> None:
        client = self._client
        if client is None:
            raise ServiceError("connection-lost", "worker stopped")
        with self._send_lock:
            client.send(message)

    # -- execution ----------------------------------------------------------

    def _execute_lease(self, frame: dict) -> None:
        lease_id = frame["lease"]
        job_id = str(frame.get("job") or "")
        trace = frame.get("trace") or {}
        try:
            spec = ScenarioSpec.from_dict(frame["spec"])
        except (KeyError, TypeError, ValueError):
            self._log(f"undecodable lease {lease_id!r}; dropping")
            return
        if BUS.enabled:
            BUS.emit(_COMPONENT, "lease-start", job_id=job_id,
                     spec_hash=spec.content_hash, worker=self.name,
                     lease=lease_id, scenario=spec.name)
        started = time.perf_counter()
        try:
            results = self.backend.run([spec], label=job_id or None)
            result = results[0] if results else self._failure(
                spec, "backend returned no result",
                elapsed_s=time.perf_counter() - started,
            )
        except Exception:
            result = self._failure(
                spec, traceback.format_exc(),
                elapsed_s=time.perf_counter() - started,
            )
        self.executed += 1
        METRICS.counter("worker.leases_executed").inc()
        if not result.ok:
            METRICS.counter("worker.leases_failed").inc()
        if BUS.enabled:
            BUS.emit(_COMPONENT, "lease-done", job_id=job_id,
                     spec_hash=spec.content_hash, worker=self.name,
                     lease=lease_id, scenario=spec.name,
                     status=result.status,
                     wall_time_s=round(result.elapsed_s, 6))
            if trace.get("id"):
                emit_span(
                    _COMPONENT, "execute",
                    trace_id=str(trace["id"]), span_id=new_span_id(),
                    parent_id=str(trace.get("span") or ""),
                    job_id=job_id, spec_hash=spec.content_hash,
                    duration_s=result.elapsed_s,
                    worker=self.name, status=result.status,
                )
        self._log(
            f"{spec.name} -> {result.status} ({result.elapsed_s:.2f}s)"
        )
        if (self.chaos is not None
                and self.chaos.fire("kill-worker")):
            # chaos: die with the result unsent and leases stranded —
            # the in-schedule stand-in for SIGKILL mid-sweep
            self._log("chaos: kill-worker fired; dying abruptly")
            self.kill()
            return
        try:
            self._send(
                protocol.make_lease_result(lease_id, result.to_dict())
            )
        except ProtocolError as exc:
            # a result too large to frame must not kill the worker (the
            # requeue would cascade the same poison spec through the
            # whole fleet): report a slim error result instead
            self._send(protocol.make_lease_result(
                lease_id,
                self._failure(
                    spec,
                    f"result dropped: {exc.code}: {exc}",
                    elapsed_s=result.elapsed_s,
                ).to_dict(),
            ))
        if (self.chaos is not None
                and self.chaos.fire("drop-conn")):
            # chaos: sever the link right after the result lands; the
            # ordinary reconnect budget brings the worker back
            self._log("chaos: drop-conn fired; severing connection")
            raise ServiceError(
                "chaos-drop", "connection dropped by chaos schedule"
            )

    @staticmethod
    def _failure(
        spec: ScenarioSpec, error: str, elapsed_s: float = 0.0
    ) -> ScenarioResult:
        # failures keep their spec hash and wall time so they are
        # queryable in the warehouse, not just printable tracebacks
        return ScenarioResult(
            name=spec.name,
            spec_hash=spec.content_hash,
            params=spec.params_dict(),
            seed=spec.seed,
            tags=tuple(sorted(spec.tags)),
            status="error",
            backend="worker",
            elapsed_s=elapsed_s,
            error=error,
        )


class BackgroundWorker:
    """Run a :class:`ClusterWorker` on a daemon thread (tests, CI).

    ``kill()`` severs the connection without any farewell — the
    in-process equivalent of SIGKILLing a worker mid-lease.
    """

    def __init__(self, host: str, port: int, **kwargs):
        kwargs.setdefault("reconnects", 0)
        self.worker = ClusterWorker(host, port, **kwargs)
        self._thread = threading.Thread(target=self.worker.run,
                                        daemon=True)

    def start(self) -> "BackgroundWorker":
        self._thread.start()
        return self

    def stop(self) -> None:
        self.worker.stop()
        self._thread.join(timeout=10)

    def kill(self) -> None:
        self.worker.kill()
        self._thread.join(timeout=10)

    def drain(self) -> None:
        """SIGTERM stand-in: graceful drain, then wait for exit."""
        self.worker.drain()
        self._thread.join(timeout=10)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def __enter__(self) -> "BackgroundWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
