"""The cluster worker: lease in, :class:`ScenarioResult` out.

``repro worker --connect host:port`` runs one of these.  A worker is
deliberately stateless: it registers with the coordinator, heartbeats
on the interval the coordinator dictates, executes one leased spec at
a time through an ordinary :class:`~repro.service.backend.LocalBackend`
(so the on-disk result cache and deterministic seeding are exactly the
``repro run`` ones), and streams each result back as a
``lease-result`` frame.  Everything durable lives coordinator-side in
the journal; killing a worker loses nothing but the leases it held,
which the coordinator requeues.

Execution is strictly serial per worker even when ``capacity > 1``
(capacity only prefetches the next lease into the socket buffer):
scenario seeding goes through the process-global RNGs, so in-process
concurrency would break bit-reproducibility.  Scale-out is more
workers, not threads.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Optional

from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.backend import Backend, LocalBackend
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import ProtocolError
from repro.telemetry.events import BUS, diag
from repro.telemetry.metrics import METRICS

_COMPONENT = "cluster.worker"


class WorkerError(Exception):
    """The coordinator refused this worker (auth, protocol, version)."""


class ClusterWorker:
    """One registered worker: connect, lease, execute, report, repeat."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        capacity: int = 1,
        backend: Optional[Backend] = None,
        cache=None,
        max_cache_entries: Optional[int] = None,
        auth_token: Optional[str] = None,
        connect_retries: int = 25,
        retry_delay_s: float = 0.2,
        reconnects: int = 5,
        reconnect_delay_s: float = 1.0,
        quiet: bool = True,
    ):
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.capacity = max(1, capacity)
        self.backend = backend if backend is not None else LocalBackend(
            backend="serial", cache=cache,
            max_cache_entries=max_cache_entries,
        )
        self.auth_token = auth_token
        self.connect_retries = connect_retries
        self.retry_delay_s = retry_delay_s
        self.reconnects = reconnects
        self.reconnect_delay_s = reconnect_delay_s
        self.quiet = quiet
        self.executed = 0
        self.worker_id: Optional[str] = None
        self._stop = threading.Event()
        self._send_lock = threading.Lock()
        self._client: Optional[ServiceClient] = None

    # -- control ------------------------------------------------------------

    def stop(self) -> None:
        """Exit by severing the connection — there is no goodbye frame;
        the coordinator treats every disconnect the same way, requeueing
        whatever this worker had leased."""
        self._stop.set()
        self._drop_connection()

    #: alias: stopping *is* vanishing abruptly (the fault-injection
    #: tests use this name as the in-process stand-in for SIGKILL).
    kill = stop

    def _drop_connection(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            client.close()

    def _log(self, text: str) -> None:
        if not self.quiet:
            # diagnostics go to stderr; stdout stays machine-readable
            diag(f"worker {self.name}", text)

    # -- main loop ----------------------------------------------------------

    def run(self) -> int:
        """Serve leases until stopped; returns specs executed.

        Reconnects up to ``reconnects`` times after a lost coordinator
        (the budget resets on every successful registration), then
        returns.
        """
        budget = self.reconnects
        while not self._stop.is_set():
            try:
                self._serve_one_connection()
                budget = self.reconnects
            except (ServiceError, OSError) as exc:
                if self._stop.is_set():
                    break
                self._log(f"connection lost: {exc}")
            finally:
                self._drop_connection()
            if self._stop.is_set() or budget <= 0:
                break
            budget -= 1
            time.sleep(self.reconnect_delay_s)
        return self.executed

    def _serve_one_connection(self) -> None:
        client = ServiceClient(
            self.host,
            self.port,
            timeout=0.5,  # short poll so stop() is honored promptly
            retries=self.connect_retries,
            retry_delay_s=self.retry_delay_s,
            auth_token=self.auth_token,
        )
        self._client = client
        self._send(protocol.make_register(self.name, self.capacity))
        registered = self._await_frame(client, "registered")
        self.worker_id = registered.get("worker")
        heartbeat_s = float(registered.get("heartbeat_s") or 5.0)
        self._log(
            f"registered as {self.worker_id} "
            f"(heartbeat every {heartbeat_s:g}s)"
        )
        pulse = threading.Thread(
            target=self._heartbeat_loop, args=(client, heartbeat_s),
            daemon=True,
        )
        pulse.start()
        try:
            while not self._stop.is_set():
                try:
                    frame = client.recv()
                except ServiceError as exc:
                    if exc.code == "timeout":
                        continue
                    raise
                type_ = frame.get("type")
                if type_ == "lease":
                    self._execute_lease(frame)
                elif type_ in ("bye", "pong"):
                    if type_ == "bye":
                        return
                elif type_ == "error":
                    raise WorkerError(
                        f"{frame.get('code')}: {frame.get('message')}"
                    )
        finally:
            pulse.join(timeout=2.0)

    def _await_frame(self, client: ServiceClient, wanted: str) -> dict:
        while True:
            try:
                frame = client.recv()
            except ServiceError as exc:
                if exc.code == "timeout":
                    if self._stop.is_set():
                        raise
                    continue
                raise
            if frame.get("type") == "error":
                raise WorkerError(
                    f"{frame.get('code')}: {frame.get('message')}"
                )
            if frame.get("type") == wanted:
                return frame

    def _heartbeat_loop(self, client: ServiceClient,
                        heartbeat_s: float) -> None:
        while not self._stop.is_set() and self._client is client:
            time.sleep(heartbeat_s)
            try:
                self._send(protocol.make_heartbeat(self.worker_id))
            except (ServiceError, OSError):
                return  # main loop notices the dead socket on its own

    def _send(self, message: dict) -> None:
        client = self._client
        if client is None:
            raise ServiceError("connection-lost", "worker stopped")
        with self._send_lock:
            client.send(message)

    # -- execution ----------------------------------------------------------

    def _execute_lease(self, frame: dict) -> None:
        lease_id = frame["lease"]
        job_id = str(frame.get("job") or "")
        try:
            spec = ScenarioSpec.from_dict(frame["spec"])
        except (KeyError, TypeError, ValueError):
            self._log(f"undecodable lease {lease_id!r}; dropping")
            return
        if BUS.enabled:
            BUS.emit(_COMPONENT, "lease-start", job_id=job_id,
                     spec_hash=spec.content_hash, worker=self.name,
                     lease=lease_id, scenario=spec.name)
        started = time.perf_counter()
        try:
            results = self.backend.run([spec], label=job_id or None)
            result = results[0] if results else self._failure(
                spec, "backend returned no result",
                elapsed_s=time.perf_counter() - started,
            )
        except Exception:
            result = self._failure(
                spec, traceback.format_exc(),
                elapsed_s=time.perf_counter() - started,
            )
        self.executed += 1
        METRICS.counter("worker.leases_executed").inc()
        if not result.ok:
            METRICS.counter("worker.leases_failed").inc()
        if BUS.enabled:
            BUS.emit(_COMPONENT, "lease-done", job_id=job_id,
                     spec_hash=spec.content_hash, worker=self.name,
                     lease=lease_id, scenario=spec.name,
                     status=result.status,
                     wall_time_s=round(result.elapsed_s, 6))
        self._log(
            f"{spec.name} -> {result.status} ({result.elapsed_s:.2f}s)"
        )
        try:
            self._send(
                protocol.make_lease_result(lease_id, result.to_dict())
            )
        except ProtocolError as exc:
            # a result too large to frame must not kill the worker (the
            # requeue would cascade the same poison spec through the
            # whole fleet): report a slim error result instead
            self._send(protocol.make_lease_result(
                lease_id,
                self._failure(
                    spec,
                    f"result dropped: {exc.code}: {exc}",
                    elapsed_s=result.elapsed_s,
                ).to_dict(),
            ))

    @staticmethod
    def _failure(
        spec: ScenarioSpec, error: str, elapsed_s: float = 0.0
    ) -> ScenarioResult:
        # failures keep their spec hash and wall time so they are
        # queryable in the warehouse, not just printable tracebacks
        return ScenarioResult(
            name=spec.name,
            spec_hash=spec.content_hash,
            params=spec.params_dict(),
            seed=spec.seed,
            tags=tuple(sorted(spec.tags)),
            status="error",
            backend="worker",
            elapsed_s=elapsed_s,
            error=error,
        )


class BackgroundWorker:
    """Run a :class:`ClusterWorker` on a daemon thread (tests, CI).

    ``kill()`` severs the connection without any farewell — the
    in-process equivalent of SIGKILLing a worker mid-lease.
    """

    def __init__(self, host: str, port: int, **kwargs):
        kwargs.setdefault("reconnects", 0)
        self.worker = ClusterWorker(host, port, **kwargs)
        self._thread = threading.Thread(target=self.worker.run,
                                        daemon=True)

    def start(self) -> "BackgroundWorker":
        self._thread.start()
        return self

    def stop(self) -> None:
        self.worker.stop()
        self._thread.join(timeout=10)

    def kill(self) -> None:
        self.worker.kill()
        self._thread.join(timeout=10)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def __enter__(self) -> "BackgroundWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
