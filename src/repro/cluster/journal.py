"""Append-only JSONL job journal: crash-durable coordinator state.

Every state transition the coordinator must survive is one JSON line:

``{"e": "submit", "job": .., "specs": [..]}``
    a job was accepted, with its full (already sweep-expanded,
    already shard-selected) spec list;
``{"e": "lease", "job": .., "spec": <hash>, "worker": ..}``
    a spec was leased to a worker (informational — requeue state is
    derived from submit minus complete, but the lease trail is what
    the crash-resume tests use to prove completed specs never run
    again);
``{"e": "complete", "job": .., "result": {..}}``
    a :class:`ScenarioResult` landed;
``{"e": "job-done", "job": .., "state": "done"|"cancelled"|"error"}``
    the job finished;
``{"e": "resume"}``
    a coordinator restarted against this journal.

:meth:`JobJournal.replay` folds the log back into per-job state: which
specs each unfinished job still owes (its *pending* set) and the
results already banked, in completion order.  A torn final line — the
signature of a crash mid-write — is tolerated and dropped.  Writes are
flushed per record so an abrupt coordinator death loses at most the
record being written.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, TextIO

from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec


@dataclass
class JournaledJob:
    """One job's folded journal state.

    Bookkeeping is by content-hash *multiplicity*, not bare hash
    membership: a sweep may legitimately contain duplicate specs (e.g.
    ``--sweep seed=1,1,2``), and a resume must owe exactly as many
    executions per hash as were submitted minus completed — while a
    replayed duplicate ``complete`` record for a single-copy spec
    stays idempotent.  Counters keep the whole fold linear in journal
    length.
    """

    id: str
    specs: List[ScenarioSpec] = field(default_factory=list)
    #: results in journaled completion order (stream replay order).
    results: List[ScenarioResult] = field(default_factory=list)
    state: str = "running"
    _spec_counts: Counter = field(default_factory=Counter, repr=False)
    _result_counts: Counter = field(default_factory=Counter, repr=False)

    def __post_init__(self) -> None:
        self._spec_counts = Counter(s.content_hash for s in self.specs)
        self._result_counts = Counter(r.spec_hash for r in self.results)

    @property
    def finished(self) -> bool:
        return self.state != "running"

    def completed_hashes(self) -> set:
        return set(self._result_counts)

    def add_result(self, result: ScenarioResult) -> bool:
        """Bank a completion (capped at the hash's submit multiplicity)."""
        if (self._result_counts[result.spec_hash]
                >= self._spec_counts[result.spec_hash]):
            return False
        self._result_counts[result.spec_hash] += 1
        self.results.append(result)
        return True

    def pending_specs(self) -> List[ScenarioSpec]:
        """Specs still owed, in submit order, respecting multiplicity."""
        banked = Counter(self._result_counts)
        pending: List[ScenarioSpec] = []
        for spec in self.specs:
            if banked[spec.content_hash] > 0:
                banked[spec.content_hash] -= 1
            else:
                pending.append(spec)
        return pending


@dataclass
class JournalState:
    """Everything :meth:`JobJournal.replay` recovers from a log."""

    jobs: Dict[str, JournaledJob] = field(default_factory=dict)
    #: lease events as (job, spec_hash, worker) in log order.
    leases: List[tuple] = field(default_factory=list)
    resumes: int = 0
    dropped_lines: int = 0

    def unfinished(self) -> List[JournaledJob]:
        return [j for j in self.jobs.values() if not j.finished]

    def max_job_number(self) -> int:
        """Highest ``job-N`` counter seen (0 when empty/unnumbered)."""
        highest = 0
        for job_id in self.jobs:
            _prefix, _dash, tail = job_id.rpartition("-")
            if tail.isdigit():
                highest = max(highest, int(tail))
        return highest


class JobJournal:
    """The writer half: one coordinator appending to one JSONL file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[TextIO] = None

    def _write(self, event: Mapping[str, Any]) -> None:
        if self._fh is None:
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(dict(event), separators=(",", ":"),
                                  default=str) + "\n")
        self._fh.flush()

    # -- events -------------------------------------------------------------

    def record_submit(self, job_id: str, specs: List[ScenarioSpec]) -> None:
        self._write({
            "e": "submit",
            "job": job_id,
            "specs": [s.to_dict() for s in specs],
            "t": time.time(),
        })

    def record_lease(self, job_id: str, spec_hash: str,
                     worker: str) -> None:
        self._write({"e": "lease", "job": job_id, "spec": spec_hash,
                     "worker": worker})

    def record_complete(self, job_id: str, result: ScenarioResult) -> None:
        self._write({"e": "complete", "job": job_id,
                     "result": result.to_dict()})

    def record_job_done(self, job_id: str, state: str) -> None:
        self._write({"e": "job-done", "job": job_id, "state": state})

    def record_resume(self) -> None:
        self._write({"e": "resume", "t": time.time()})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- replay -------------------------------------------------------------

    @classmethod
    def replay(cls, path: str | Path) -> JournalState:
        """Fold a journal file back into coordinator state.

        Unparseable lines are counted and skipped: the only expected
        one is a torn final line from a crash mid-write, but a corrupt
        middle line must not take the whole recovery down either.
        Events for jobs with no ``submit`` record (lost to the same
        torn write) are likewise dropped.
        """
        state = JournalState()
        path = Path(path)
        if not path.exists():
            return state
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                    kind = event["e"]
                except (ValueError, KeyError, TypeError):
                    state.dropped_lines += 1
                    continue
                try:
                    cls._fold(state, kind, event)
                except (KeyError, TypeError, ValueError):
                    state.dropped_lines += 1
        return state

    @staticmethod
    def _fold(state: JournalState, kind: str,
              event: Mapping[str, Any]) -> None:
        if kind == "submit":
            job_id = event["job"]
            state.jobs[job_id] = JournaledJob(
                id=job_id,
                specs=[ScenarioSpec.from_dict(s) for s in event["specs"]],
            )
        elif kind == "lease":
            state.leases.append(
                (event["job"], event["spec"], event.get("worker", ""))
            )
        elif kind == "complete":
            job = state.jobs.get(event["job"])
            if job is not None:
                job.add_result(ScenarioResult.from_dict(event["result"]))
        elif kind == "job-done":
            job = state.jobs.get(event["job"])
            if job is not None:
                job.state = event.get("state", "done")
        elif kind == "resume":
            state.resumes += 1
        # unknown event kinds are ignored: forward compatibility
