"""Append-only JSONL job journal: crash-durable coordinator state.

Every state transition the coordinator must survive is one JSON line:

``{"e": "submit", "job": .., "specs": [..]}``
    a job was accepted, with its full (already sweep-expanded,
    already shard-selected) spec list;
``{"e": "lease", "job": .., "spec": <hash>, "worker": ..}``
    a spec was leased to a worker (informational — requeue state is
    derived from submit minus complete, but the lease trail is what
    the crash-resume tests use to prove completed specs never run
    again);
``{"e": "assign", "job": .., "spec": <hash>, "pool": ..}``
    the federation front granted a spec to a peer coordinator pool —
    the cross-hop analogue of ``lease``, folded into the same lease
    trail (with ``pool:<name>`` in the worker slot) so
    ``scripts/check_no_reexecution.py`` audits a front journal
    unchanged;
``{"e": "complete", "job": .., "result": {..}}``
    a :class:`ScenarioResult` landed;
``{"e": "job-done", "job": .., "state": "done"|"cancelled"|"error"}``
    the job finished;
``{"e": "resume"}``
    a coordinator restarted against this journal.

:meth:`JobJournal.replay` folds the log back into per-job state: which
specs each unfinished job still owes (its *pending* set) and the
results already banked, in completion order.  A torn final line — the
signature of a crash mid-write — is tolerated and dropped.  Writes are
flushed per record so an abrupt coordinator death loses at most the
record being written.

Compaction keeps replay O(live jobs) instead of O(history): every
``compact_every`` appended records (or on an explicit
:meth:`JobJournal.compact` call) the folded state is written as one
atomic JSON **snapshot** beside the journal and the journal itself is
swapped for a fresh tail holding only a ``{"e": "compacted",
"gen": G}`` marker.  Replay loads the snapshot and folds just the
tail.  The write order — snapshot to a temp file, fsync, atomic
rename, *then* the journal swap — means a crash can never leave a
torn snapshot installed; and if the snapshot is nonetheless
missing/corrupt (or its generation does not match the tail marker),
replay falls back to folding whatever the journal holds rather than
failing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, TextIO

from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec


@dataclass
class JournaledJob:
    """One job's folded journal state.

    Bookkeeping is by content-hash *multiplicity*, not bare hash
    membership: a sweep may legitimately contain duplicate specs (e.g.
    ``--sweep seed=1,1,2``), and a resume must owe exactly as many
    executions per hash as were submitted minus completed — while a
    replayed duplicate ``complete`` record for a single-copy spec
    stays idempotent.  Counters keep the whole fold linear in journal
    length.
    """

    id: str
    specs: List[ScenarioSpec] = field(default_factory=list)
    #: results in journaled completion order (stream replay order).
    results: List[ScenarioResult] = field(default_factory=list)
    state: str = "running"
    _spec_counts: Counter = field(default_factory=Counter, repr=False)
    _result_counts: Counter = field(default_factory=Counter, repr=False)

    def __post_init__(self) -> None:
        self._spec_counts = Counter(s.content_hash for s in self.specs)
        self._result_counts = Counter(r.spec_hash for r in self.results)

    @property
    def finished(self) -> bool:
        return self.state != "running"

    def completed_hashes(self) -> set:
        return set(self._result_counts)

    def add_result(self, result: ScenarioResult) -> bool:
        """Bank a completion (capped at the hash's submit multiplicity)."""
        if (self._result_counts[result.spec_hash]
                >= self._spec_counts[result.spec_hash]):
            return False
        self._result_counts[result.spec_hash] += 1
        self.results.append(result)
        return True

    def pending_specs(self) -> List[ScenarioSpec]:
        """Specs still owed, in submit order, respecting multiplicity."""
        banked = Counter(self._result_counts)
        pending: List[ScenarioSpec] = []
        for spec in self.specs:
            if banked[spec.content_hash] > 0:
                banked[spec.content_hash] -= 1
            else:
                pending.append(spec)
        return pending

    def to_snapshot(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "state": self.state,
            "specs": [s.to_dict() for s in self.specs],
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "JournaledJob":
        job = cls(
            id=str(data["id"]),
            specs=[ScenarioSpec.from_dict(s) for s in data["specs"]],
            state=str(data.get("state", "running")),
        )
        for result in data.get("results", ()):
            job.add_result(ScenarioResult.from_dict(result))
        return job


@dataclass
class JournalState:
    """Everything :meth:`JobJournal.replay` recovers from a log."""

    jobs: Dict[str, JournaledJob] = field(default_factory=dict)
    #: lease/assign events as (job, spec_hash, worker-or-pool) in log
    #: order (tail only after a compaction — the snapshot keeps no
    #: lease trail); federation pool grants carry ``pool:<name>``.
    leases: List[tuple] = field(default_factory=list)
    resumes: int = 0
    dropped_lines: int = 0
    #: compaction generation this state descends from (0 = never).
    generation: int = 0
    #: True when a snapshot seeded the fold (tail-only journal read).
    from_snapshot: bool = False
    #: True when a tail marker referenced a snapshot that was missing
    #: or unreadable — replay fell back to the tail journal alone.
    torn_snapshot: bool = False
    #: journal records actually folded (the O(live) replay-cost proof:
    #: after a compaction this counts tail lines, not history).
    replayed_records: int = 0
    #: job-counter floor carried by the snapshot, so compacting away
    #: old finished jobs can never recycle their ids.
    job_number_floor: int = 0
    #: at the *last* ``resume`` marker: how many leases had been
    #: folded, and which spec hashes were already completed — the
    #: zero-re-execution audit (scripts/check_no_reexecution.py).
    leases_at_last_resume: int = 0
    completed_at_last_resume: set = field(default_factory=set)

    def unfinished(self) -> List[JournaledJob]:
        return [j for j in self.jobs.values() if not j.finished]

    def max_job_number(self) -> int:
        """Highest ``job-N`` counter seen (0 when empty/unnumbered)."""
        highest = self.job_number_floor
        for job_id in self.jobs:
            _prefix, _dash, tail = job_id.rpartition("-")
            if tail.isdigit():
                highest = max(highest, int(tail))
        return highest

    def leases_after_last_resume(self) -> List[tuple]:
        return self.leases[self.leases_at_last_resume:]


class JobJournal:
    """The writer half: one coordinator appending to one JSONL file.

    ``compact_every=N`` auto-compacts after every N appended records;
    ``None``/0 leaves compaction to explicit :meth:`compact` calls.
    ``keep_finished`` bounds how many finished jobs a snapshot retains
    (mirroring the server's ``MAX_FINISHED_JOBS`` history cap), which
    is what keeps snapshot size — and hence resume replay work —
    proportional to *live* jobs.
    """

    SNAPSHOT_FORMAT = 1

    def __init__(
        self,
        path: str | Path,
        *,
        compact_every: Optional[int] = None,
        keep_finished: int = 64,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.compact_every = compact_every or None
        self.keep_finished = keep_finished
        self._fh: Optional[TextIO] = None
        self._appended = 0
        #: a federation front appends from forwarder threads while the
        #: event loop journals completions; reentrant because _write
        #: may auto-compact (which re-enters the lock).
        self._lock = threading.RLock()
        #: set by :meth:`compact`; surfaced in coordinator status.
        self.last_compaction: Optional[Dict[str, Any]] = None

    @property
    def snapshot_path(self) -> Path:
        return self.path.with_name(self.path.name + ".snapshot")

    def _write(self, event: Mapping[str, Any]) -> None:
        with self._lock:
            if self._fh is None:
                self._fh = self.path.open("a")
            self._fh.write(json.dumps(dict(event), separators=(",", ":"),
                                      default=str) + "\n")
            self._fh.flush()
            self._appended += 1
            if self.compact_every and self._appended >= self.compact_every:
                self.compact()

    # -- events -------------------------------------------------------------

    def record_submit(self, job_id: str, specs: List[ScenarioSpec]) -> None:
        self._write({
            "e": "submit",
            "job": job_id,
            "specs": [s.to_dict() for s in specs],
            "t": time.time(),
        })

    def record_lease(self, job_id: str, spec_hash: str,
                     worker: str) -> None:
        self._write({"e": "lease", "job": job_id, "spec": spec_hash,
                     "worker": worker})

    def record_assign(self, job_id: str, spec_hash: str,
                      pool: str) -> None:
        """A federation front granted a spec to a peer pool."""
        self._write({"e": "assign", "job": job_id, "spec": spec_hash,
                     "pool": pool})

    def record_complete(self, job_id: str, result: ScenarioResult) -> None:
        self._write({"e": "complete", "job": job_id,
                     "result": result.to_dict()})

    def record_job_done(self, job_id: str, state: str) -> None:
        self._write({"e": "job-done", "job": job_id, "state": state})

    def record_resume(self) -> None:
        self._write({"e": "resume", "t": time.time()})

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- compaction ---------------------------------------------------------

    def compact(self) -> Dict[str, Any]:
        """Fold the journal into an atomic snapshot + a fresh tail.

        Ordering is the crash-safety argument: (1) the snapshot is
        written to a temp file, fsynced, and atomically renamed into
        place — a crash before the rename leaves the old snapshot (or
        none) and the untouched full journal; (2) only then is the
        journal swapped (same temp-write + rename) for a tail holding
        just the ``compacted`` generation marker.  A crash between
        (1) and (2) leaves a new snapshot whose generation the old
        journal's marker does *not* carry, so replay ignores it and
        folds the full journal — never wrong, merely uncompacted.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> Dict[str, Any]:
        self.close()
        state = self.replay(self.path)
        generation = state.generation + 1
        jobs = list(state.jobs.values())
        finished = [j for j in jobs if j.finished]
        drop = (
            set()
            if len(finished) <= self.keep_finished
            else {j.id for j in finished[: len(finished)
                                         - self.keep_finished]}
        )
        snapshot = {
            "format": self.SNAPSHOT_FORMAT,
            "generation": generation,
            "t": time.time(),
            "resumes": state.resumes,
            "job_number_floor": state.max_job_number(),
            "jobs": [
                j.to_snapshot() for j in jobs if j.id not in drop
            ],
        }
        self._replace(self.snapshot_path,
                      json.dumps(snapshot, default=str))
        marker = json.dumps(
            {"e": "compacted", "gen": generation, "t": snapshot["t"]},
            separators=(",", ":"),
        )
        self._replace(self.path, marker + "\n")
        self._appended = 0
        self.last_compaction = {
            "t": snapshot["t"],
            "generation": generation,
            "live_jobs": len(state.unfinished()),
            "snapshot_jobs": len(snapshot["jobs"]),
            "dropped_finished_jobs": len(drop),
        }
        return self.last_compaction

    @staticmethod
    def _replace(path: Path, text: str) -> None:
        """Write *text* to *path* via temp file + fsync + atomic rename."""
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # -- replay -------------------------------------------------------------

    @classmethod
    def replay(cls, path: str | Path) -> JournalState:
        """Fold a journal (snapshot + tail, or full log) back into state.

        Unparseable lines are counted and skipped: the only expected
        one is a torn final line from a crash mid-write, but a corrupt
        middle line must not take the whole recovery down either.
        Events for jobs with no ``submit`` record (lost to the same
        torn write) are likewise dropped.

        The snapshot beside the journal is used only when its
        generation matches the journal's leading ``compacted`` marker;
        on any mismatch — torn snapshot, missing snapshot, crash
        between snapshot rename and journal swap — replay falls back
        to folding the journal alone.
        """
        path = Path(path)
        state = JournalState()
        if not path.exists():
            return state
        marker_gen = cls._peek_marker_generation(path)
        if marker_gen is not None:
            snapshot = cls._load_snapshot(
                path.with_name(path.name + ".snapshot")
            )
            if snapshot is not None and snapshot.generation == marker_gen:
                state = snapshot
                state.from_snapshot = True
            else:
                # the tail says "I am generation N's tail" but no
                # matching snapshot exists: tolerate, fold the tail
                state.torn_snapshot = True
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                state.replayed_records += 1
                try:
                    event = json.loads(line)
                    kind = event["e"]
                except (ValueError, KeyError, TypeError):
                    state.dropped_lines += 1
                    continue
                try:
                    cls._fold(state, kind, event)
                except (KeyError, TypeError, ValueError):
                    state.dropped_lines += 1
        return state

    @staticmethod
    def _peek_marker_generation(path: Path) -> Optional[int]:
        """Generation of a leading ``compacted`` marker, else None."""
        try:
            with path.open() as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    if event.get("e") == "compacted":
                        return int(event["gen"])
                    return None
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return None

    @classmethod
    def _load_snapshot(cls, path: Path) -> Optional[JournalState]:
        """A state seeded from a snapshot file; None if torn/absent."""
        try:
            data = json.loads(path.read_text())
            if data.get("format") != cls.SNAPSHOT_FORMAT:
                return None
            state = JournalState(
                generation=int(data["generation"]),
                resumes=int(data.get("resumes", 0)),
                job_number_floor=int(data.get("job_number_floor", 0)),
            )
            for job_data in data.get("jobs", ()):
                job = JournaledJob.from_snapshot(job_data)
                state.jobs[job.id] = job
            return state
        except (OSError, ValueError, KeyError, TypeError):
            return None

    @staticmethod
    def _fold(state: JournalState, kind: str,
              event: Mapping[str, Any]) -> None:
        if kind == "submit":
            job_id = event["job"]
            state.jobs[job_id] = JournaledJob(
                id=job_id,
                specs=[ScenarioSpec.from_dict(s) for s in event["specs"]],
            )
        elif kind == "lease":
            state.leases.append(
                (event["job"], event["spec"], event.get("worker", ""))
            )
        elif kind == "assign":
            # a federation pool grant joins the lease trail so the
            # no-re-execution audit sees cross-hop grants too
            state.leases.append(
                (event["job"], event["spec"],
                 f"pool:{event.get('pool', '')}")
            )
        elif kind == "complete":
            job = state.jobs.get(event["job"])
            if job is not None:
                job.add_result(ScenarioResult.from_dict(event["result"]))
        elif kind == "job-done":
            job = state.jobs.get(event["job"])
            if job is not None:
                job.state = event.get("state", "done")
        elif kind == "resume":
            state.resumes += 1
            state.leases_at_last_resume = len(state.leases)
            state.completed_at_last_resume = set()
            for job in state.jobs.values():
                state.completed_at_last_resume |= job.completed_hashes()
        elif kind == "compacted":
            state.generation = max(state.generation, int(event["gen"]))
        # unknown event kinds are ignored: forward compatibility
