"""Spec-granular work-stealing queue: per-worker deques + a backlog.

The scheduling unit is one spec, never an ``i/N`` shard: a fixed shard
pins its tail to whichever worker drew it, so one slow worker strands
the whole sweep.  Here every worker owns a deque; new work lands on
the shortest deque (or the backlog when no workers are registered),
owners pop from the *front* of their own deque, and an idle worker
steals from the *back* of the longest other deque — the classic
Chase–Lev shape, which keeps an owner's cache-warm front intact while
thieves skim the cold tail.

The queue is a plain data structure with no locking or I/O of its own;
the coordinator drives it from its (single-threaded) event loop, and
the tests drive it directly.  All tie-breaks are by registration
order, so scheduling decisions are deterministic for a given sequence
of operations.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional


class WorkStealingQueue:
    """Per-worker deques with steal-from-the-back and a global backlog."""

    def __init__(self) -> None:
        self._deques: Dict[str, Deque[Any]] = {}
        self._backlog: Deque[Any] = deque()
        #: lifetime steal count, and whether the most recent pop() was
        #: a steal — the coordinator reads these for telemetry.
        self.steals = 0
        self.stole_last = False

    # -- membership ---------------------------------------------------------

    def add_worker(self, worker_id: str) -> None:
        self._deques.setdefault(worker_id, deque())

    def remove_worker(self, worker_id: str) -> List[Any]:
        """Drop a worker's deque; its unstarted items go to the backlog."""
        leftover = list(self._deques.pop(worker_id, ()))
        self._backlog.extend(leftover)
        return leftover

    def workers(self) -> List[str]:
        return list(self._deques)

    # -- producing ----------------------------------------------------------

    def push(self, item: Any, worker_id: Optional[str] = None) -> str:
        """Enqueue one item; returns where it landed.

        With an explicit (registered) ``worker_id`` the item is
        appended to that worker's deque; otherwise it goes to the
        shortest deque — first-registered wins ties — or to the
        backlog when no workers are registered.
        """
        if worker_id is not None and worker_id in self._deques:
            self._deques[worker_id].append(item)
            return worker_id
        if self._deques:
            target = min(self._deques, key=lambda w: len(self._deques[w]))
            self._deques[target].append(item)
            return target
        self._backlog.append(item)
        return ""

    def push_front(self, item: Any) -> None:
        """Requeue an interrupted item ahead of fresh work (backlog head)."""
        self._backlog.appendleft(item)

    # -- consuming ----------------------------------------------------------

    def pop(self, worker_id: str) -> Optional[Any]:
        """Next item for this worker: own front, backlog, then a steal.

        The steal victim is the *longest* other deque (ties to the
        first registered) and the item comes off its *back*, so the
        victim's own pops are undisturbed.  Returns ``None`` when the
        whole queue is drained.
        """
        self.stole_last = False
        own = self._deques.get(worker_id)
        if own:
            return own.popleft()
        if self._backlog:
            return self._backlog.popleft()
        victim: Optional[str] = None
        for other, items in self._deques.items():
            if other == worker_id or not items:
                continue
            if victim is None or len(items) > len(self._deques[victim]):
                victim = other
        if victim is not None:
            self.steals += 1
            self.stole_last = True
            return self._deques[victim].pop()
        return None

    # -- introspection ------------------------------------------------------

    def pending(self) -> int:
        return len(self._backlog) + sum(
            len(d) for d in self._deques.values()
        )

    def __len__(self) -> int:
        return self.pending()

    def depths(self) -> Dict[str, int]:
        """Queue depth per worker (plus the ``""`` backlog) for status."""
        depths = {w: len(d) for w, d in self._deques.items()}
        depths[""] = len(self._backlog)
        return depths
