"""Cluster scheduling: one coordinator, many stateless workers.

The coordinator (:mod:`repro.cluster.coordinator`) is a scenario
service whose backend executes nothing locally: every submitted spec
goes into a work-stealing queue (:mod:`repro.cluster.queue`) and is
leased, one spec at a time, to registered workers
(:mod:`repro.cluster.worker`), each of which wraps an ordinary
:class:`~repro.service.backend.LocalBackend`.  A durable job journal
(:mod:`repro.cluster.journal`) makes ``repro coordinator --resume``
replay state after a crash without re-executing completed specs.

See ``docs/cluster.md`` for topology, frame and failure semantics.
"""

from repro.cluster.journal import JobJournal, JournalState
from repro.cluster.queue import WorkStealingQueue

__all__ = ["JobJournal", "JournalState", "WorkStealingQueue"]
