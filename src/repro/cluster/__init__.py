"""Cluster scheduling: one coordinator, many stateless workers.

The coordinator (:mod:`repro.cluster.coordinator`) is a scenario
service whose backend executes nothing locally: every submitted spec
goes into a work-stealing queue (:mod:`repro.cluster.queue`) and is
leased, one spec at a time, to registered workers
(:mod:`repro.cluster.worker`), each of which wraps an ordinary
:class:`~repro.service.backend.LocalBackend`.  A durable job journal
(:mod:`repro.cluster.journal`) makes ``repro coordinator --resume``
replay state after a crash without re-executing completed specs —
with periodic compaction keeping that replay O(live jobs).  A
:class:`~repro.cluster.supervisor.WorkerSupervisor`
(:mod:`repro.cluster.supervisor`) can autoscale and self-heal a local
worker fleet, and :mod:`repro.cluster.chaos` injects deterministic
faults for testing all of the above.

One level up, :mod:`repro.cluster.federation` federates N such pools
behind a :class:`~repro.cluster.federation.FederatedCoordinator`
front: one submitted sweep is sharded across the pools with per-pool
circuit-breaker health probing, spec re-homing when a pool goes dark,
and journal semantics that compose across the hop.

See ``docs/cluster.md`` for topology, frame and failure semantics.
"""

from repro.cluster.chaos import ChaosError, ChaosMonkey
from repro.cluster.federation import (
    CircuitBreaker,
    FederatedCoordinator,
    FederationPool,
)
from repro.cluster.journal import JobJournal, JournalState
from repro.cluster.queue import WorkStealingQueue
from repro.cluster.supervisor import WorkerSupervisor, process_spawner

__all__ = [
    "ChaosError",
    "ChaosMonkey",
    "CircuitBreaker",
    "FederatedCoordinator",
    "FederationPool",
    "JobJournal",
    "JournalState",
    "WorkStealingQueue",
    "WorkerSupervisor",
    "process_spawner",
]
