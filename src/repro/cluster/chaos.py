"""Deterministic fault injection for cluster components.

``REPRO_CHAOS`` (or ``repro worker --chaos SPEC`` / ``repro
coordinator --chaos SPEC``) arms a :class:`ChaosMonkey` inside a
worker or coordinator process.  A spec is a comma-separated list of
clauses::

    seed=42,kill-worker@3,drop-conn@5,skip-heartbeat@2,heartbeat-delay=0.05

* ``seed=N``            — seeds the RNG every probabilistic clause
  draws from, so a chaos run is exactly reproducible;
* ``kill-worker@N``     — die abruptly (no farewell frame, leases
  stranded) at the worker's Nth executed lease — the in-schedule
  stand-in for SIGKILL;
* ``drop-conn@N``       — sever the coordinator connection after the
  Nth lease result is sent; the worker then reconnects through its
  ordinary jittered-backoff budget;
* ``skip-heartbeat@N``  — suppress the Nth heartbeat pulse (repeat
  the clause to silence a worker long enough to expire its leases);
* ``kill-pool@N``       — armed on a *coordinator* (``repro
  coordinator --chaos``): the whole pool process dies abruptly at its
  Nth granted lease — the in-schedule stand-in for SIGKILLing an
  entire pool under a federation front;
* ``heartbeat-delay=S`` — add a seeded uniform delay in [0, S) before
  every heartbeat, smearing the pulse train.

Each ``kind@N`` clause fires exactly once, on the Nth time that
trigger point is reached (1-based).  Multiple clauses of the same kind
compose (``kill-worker@3`` on one worker, ``kill-worker@5`` on
another, via per-process env vars).

The monkey is a plain counter machine with no threads or I/O of its
own — the hook points in :mod:`repro.cluster.worker` and
:mod:`repro.cluster.coordinator` call :meth:`fire` and act on the
answer — so schedules are unit-testable without sockets.
"""

from __future__ import annotations

import os
import random
from collections import Counter
from typing import Dict, List, Optional

__all__ = ["ChaosError", "ChaosMonkey", "CHAOS_ENV"]

#: env var carrying the chaos spec (read by ``repro worker``).
CHAOS_ENV = "REPRO_CHAOS"

#: trigger kinds a spec may schedule.
KINDS = frozenset(
    {"kill-worker", "drop-conn", "skip-heartbeat", "kill-pool"}
)


class ChaosError(ValueError):
    """An unparseable chaos spec (bad clause, unknown kind)."""


class ChaosMonkey:
    """Seeded, scheduled fault decisions behind :meth:`fire`."""

    def __init__(
        self,
        seed: int = 0,
        schedule: Optional[Dict[str, List[int]]] = None,
        heartbeat_delay_s: float = 0.0,
    ):
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self.heartbeat_delay_s = float(heartbeat_delay_s)
        #: kind -> sorted 1-based trigger counts still to fire.
        self._schedule: Dict[str, List[int]] = {
            kind: sorted(at) for kind, at in (schedule or {}).items()
        }
        self._counts: Counter = Counter()
        #: every fault actually fired, as (kind, trigger_count) —
        #: the audit trail chaos tests assert on.
        self.fired: List[tuple] = []

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "ChaosMonkey":
        """Build a monkey from a ``REPRO_CHAOS`` clause string."""
        seed = 0
        delay = 0.0
        schedule: Dict[str, List[int]] = {}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            if "@" in clause:
                kind, _at, count = clause.partition("@")
                kind = kind.strip()
                if kind not in KINDS:
                    raise ChaosError(
                        f"unknown chaos trigger {kind!r} (expected one "
                        f"of {sorted(KINDS)})"
                    )
                try:
                    nth = int(count)
                    if nth < 1:
                        raise ValueError
                except ValueError:
                    raise ChaosError(
                        f"chaos clause {clause!r} needs a positive "
                        "1-based trigger count after '@'"
                    ) from None
                schedule.setdefault(kind, []).append(nth)
            elif "=" in clause:
                key, _eq, value = clause.partition("=")
                key = key.strip()
                try:
                    if key == "seed":
                        seed = int(value)
                    elif key == "heartbeat-delay":
                        delay = float(value)
                        if delay < 0:
                            raise ValueError
                    else:
                        raise ChaosError(
                            f"unknown chaos setting {key!r} (expected "
                            "seed= or heartbeat-delay=)"
                        )
                except ValueError:
                    raise ChaosError(
                        f"chaos clause {clause!r} has a malformed value"
                    ) from None
            else:
                raise ChaosError(
                    f"chaos clause {clause!r} is neither kind@N nor "
                    "key=value"
                )
        return cls(seed=seed, schedule=schedule, heartbeat_delay_s=delay)

    @classmethod
    def from_env(cls, environ=None) -> Optional["ChaosMonkey"]:
        """The monkey ``REPRO_CHAOS`` describes, or None when unset."""
        spec = (environ if environ is not None else os.environ).get(
            CHAOS_ENV
        )
        if not spec:
            return None
        return cls.parse(spec)

    # -- decisions -----------------------------------------------------------

    def fire(self, kind: str) -> bool:
        """Count one pass of a trigger point; True when a fault fires."""
        self._counts[kind] += 1
        pending = self._schedule.get(kind)
        if pending and pending[0] == self._counts[kind]:
            pending.pop(0)
            self.fired.append((kind, self._counts[kind]))
            return True
        return False

    def heartbeat_delay(self) -> float:
        """Seeded uniform delay in [0, heartbeat_delay_s) per pulse."""
        if self.heartbeat_delay_s <= 0:
            return 0.0
        return self.rng.random() * self.heartbeat_delay_s

    def pending(self) -> Dict[str, List[int]]:
        """Trigger counts still scheduled, per kind (for diagnostics)."""
        return {k: list(v) for k, v in self._schedule.items() if v}

    def describe(self) -> str:
        clauses = [f"seed={self.seed}"]
        for kind, counts in sorted(self._schedule.items()):
            clauses.extend(f"{kind}@{n}" for n in counts)
        if self.heartbeat_delay_s:
            clauses.append(f"heartbeat-delay={self.heartbeat_delay_s:g}")
        return ",".join(clauses)
