"""Worker supervision: autoscaling, restart backoff, crash-loop cutoff.

The :class:`WorkerSupervisor` is owned by a coordinator and manages a
fleet of *local* worker processes the way an init system manages
daemons, sized the way an autoscaler sizes a pool:

* **autoscaling** — every tick the pool's backlog (queued + in-flight
  specs) is divided by ``specs_per_worker`` and clamped to
  [``min_workers``, ``max_workers``] to get the *desired* worker
  count; slots are added immediately on demand and retired only after
  the backlog has stayed below the scale-down line for
  ``idle_grace_s`` (scale up fast, scale down lazily);
* **restart with backoff** — a slot whose process dies is respawned
  after a jittered exponential delay (shared
  :class:`repro.service.backoff.Backoff` policy) whose attempt number
  is the slot's recent death count, so one crash restarts almost
  immediately and a flapping worker ramps toward the ceiling;
* **crash-loop cutoff** — ``crash_threshold`` deaths inside
  ``crash_window_s`` flips the slot to ``crash-looped``: no more
  restarts, a ``crash-loop`` event on the bus, and the slot keeps
  *occupying* its desired-count position (a crash-looping slot must
  not be silently replaced by a fresh slot, or the loop would just
  migrate).  The coordinator keeps scheduling on the surviving
  workers; the operator sees the cut-off slot in ``repro status``.

The tick core is synchronous and takes an explicit ``now`` —
``clock``, ``rng`` and ``spawn`` are all injectable — so every policy
above is unit-testable with a fake clock and fake process handles, no
real sleeps or subprocesses.  In production :func:`process_spawner`
provides the spawn side: ``sys.executable -m repro worker --connect
…`` children that find their way back through the ordinary register/
heartbeat protocol.
"""

from __future__ import annotations

import math
import subprocess
import sys
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.service.backoff import Backoff, jittered_delay
from repro.telemetry.events import BUS
from repro.telemetry.metrics import METRICS

__all__ = [
    "ProcessHandle",
    "WorkerSupervisor",
    "process_spawner",
]

_COMPONENT = "cluster.supervisor"

#: slot states (the ``status()`` vocabulary).
LIVE = "live"
BACKOFF = "backoff"
CRASH_LOOPED = "crash-looped"
RETIRING = "retiring"


class ProcessHandle:
    """A supervised worker subprocess (duck-typed for fakes in tests)."""

    def __init__(self, proc: subprocess.Popen):
        self.proc = proc
        self.pid = proc.pid

    def alive(self) -> bool:
        return self.proc.poll() is None

    def terminate(self) -> None:
        """Ask for a graceful drain (SIGTERM → worker finishes lease)."""
        try:
            self.proc.terminate()
        except OSError:
            pass

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass

    def wait(self, timeout: Optional[float] = None) -> None:
        try:
            self.proc.wait(timeout=timeout)
        except Exception:
            pass


def process_spawner(
    connect: str,
    *,
    name_prefix: str = "sup",
    capacity: int = 1,
    cache_dir: Optional[str] = None,
    auth_token: Optional[str] = None,
    extra_args: Optional[List[str]] = None,
) -> Callable[[int], ProcessHandle]:
    """A ``spawn(slot_index)`` callable launching ``repro worker``.

    Each child is a full out-of-process worker: it registers with the
    coordinator at *connect*, heartbeats, leases, and — because it is
    a separate interpreter — its death never takes the coordinator
    down with it.
    """

    def spawn(slot: int) -> ProcessHandle:
        argv = [
            sys.executable, "-m", "repro", "worker",
            "--connect", connect,
            "--name", f"{name_prefix}-{slot}",
            "--capacity", str(capacity),
        ]
        if cache_dir:
            argv += ["--cache", f"{cache_dir}/slot-{slot}"]
        if auth_token:
            argv += ["--auth-token", auth_token]
        if extra_args:
            argv += list(extra_args)
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            stdin=subprocess.DEVNULL,
        )
        return ProcessHandle(proc)

    return spawn


class _Slot:
    """One desired-worker position and its restart bookkeeping."""

    __slots__ = ("index", "handle", "state", "deaths", "restart_at",
                 "spawned", "restarts")

    def __init__(self, index: int):
        self.index = index
        self.handle = None
        self.state = BACKOFF          # empty slot: spawn on next tick
        self.restart_at = 0.0         # due immediately
        #: recent death timestamps (pruned to the crash window).
        self.deaths: deque = deque()
        self.spawned = 0
        self.restarts = 0


class WorkerSupervisor:
    """Keeps the right number of workers alive, and knows when to stop.

    ``spawn(slot_index) -> handle`` is any callable returning an
    object with ``alive()``/``terminate()``/``kill()`` — in
    production a :class:`ProcessHandle` from :func:`process_spawner`,
    in tests a fake.  ``clock`` and ``rng`` default to the real
    monotonic clock and module RNG; tests inject both.
    """

    def __init__(
        self,
        spawn: Callable[[int], Any],
        min_workers: int = 1,
        max_workers: int = 4,
        *,
        specs_per_worker: int = 4,
        crash_threshold: int = 5,
        crash_window_s: float = 60.0,
        backoff: Optional[Backoff] = None,
        idle_grace_s: float = 5.0,
        tick_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
        rng=None,
    ):
        if max_workers < min_workers:
            raise ValueError(
                f"max_workers={max_workers} < min_workers={min_workers}"
            )
        self.spawn = spawn
        self.min_workers = max(0, min_workers)
        self.max_workers = max_workers
        self.specs_per_worker = max(1, specs_per_worker)
        self.crash_threshold = max(1, crash_threshold)
        self.crash_window_s = crash_window_s
        self.backoff = backoff or Backoff(
            base_s=0.2, max_s=10.0, rng=rng
        )
        self.idle_grace_s = idle_grace_s
        self.tick_s = tick_s
        self.clock = clock
        self.slots: List[_Slot] = []
        self.pool = None              # ClusterPool, set by start()
        self.closed = False
        self.spawned_total = 0
        self.restarts_total = 0
        self.retired_total = 0
        self._low_since: Optional[float] = None
        self._task = None

    # -- lifecycle ----------------------------------------------------------

    def start(self, loop, pool) -> None:
        """Attach to the coordinator's pool and start the tick task."""
        self.pool = pool
        self._task = loop.create_task(self._run())

    async def _run(self) -> None:
        import asyncio

        try:
            while not self.closed:
                self.tick(self.clock())
                await asyncio.sleep(self.tick_s)
        except asyncio.CancelledError:
            pass

    def shutdown(self) -> None:
        """Stop ticking; terminate (then reap) every supervised child."""
        if self.closed:
            return
        self.closed = True
        if self._task is not None:
            self._task.cancel()
        for slot in self.slots:
            if slot.handle is not None and slot.handle.alive():
                slot.handle.terminate()
        for slot in self.slots:
            if slot.handle is not None and hasattr(slot.handle, "wait"):
                slot.handle.wait(timeout=5.0)

    # -- the policy tick -----------------------------------------------------

    def desired_workers(self, backlog: int) -> int:
        """Backlog-proportional target, clamped to [min, max]."""
        by_demand = math.ceil(backlog / self.specs_per_worker)
        return min(self.max_workers, max(self.min_workers, by_demand))

    def tick(self, now: float) -> None:
        """One reconcile pass: reap, restart, scale.  Idempotent."""
        if self.closed:
            return
        backlog = self.pool.backlog() if self.pool is not None else 0
        desired = self.desired_workers(backlog)
        self._reap(now)
        self._restart_due(now)
        self._scale_up(desired, now)
        self._scale_down(desired, backlog, now)
        METRICS.gauge("cluster.supervisor.desired").set(desired)
        METRICS.gauge("cluster.supervisor.live").set(
            sum(1 for s in self.slots if s.state == LIVE)
        )

    def _reap(self, now: float) -> None:
        """Notice dead children; schedule restarts or cut the loop."""
        for slot in self.slots:
            if slot.state not in (LIVE, RETIRING):
                continue
            if slot.handle is not None and slot.handle.alive():
                continue
            if slot.state == RETIRING:
                # a retirement completing is the happy path
                continue
            slot.handle = None
            slot.deaths.append(now)
            self._prune_deaths(slot, now)
            METRICS.counter("cluster.supervisor.deaths").inc()
            if BUS.enabled:
                BUS.emit(_COMPONENT, "worker-death", slot=slot.index,
                         recent_deaths=len(slot.deaths))
            if len(slot.deaths) >= self.crash_threshold:
                slot.state = CRASH_LOOPED
                METRICS.counter("cluster.supervisor.crash_loops").inc()
                if BUS.enabled:
                    BUS.emit(_COMPONENT, "crash-loop", slot=slot.index,
                             deaths=len(slot.deaths),
                             window_s=self.crash_window_s)
                continue
            # attempt number = how many times it has died recently,
            # so an isolated crash restarts fast and a flapper ramps
            attempt = len(slot.deaths) - 1
            delay = jittered_delay(
                attempt, self.backoff.base_s, self.backoff.max_s,
                factor=self.backoff.factor, jitter=self.backoff.jitter,
                rng=self.backoff.rng,
            )
            slot.state = BACKOFF
            slot.restart_at = now + delay
            if BUS.enabled:
                BUS.emit(_COMPONENT, "worker-restart", slot=slot.index,
                         attempt=attempt, delay_s=round(delay, 3))

    def _prune_deaths(self, slot: _Slot, now: float) -> None:
        while slot.deaths and slot.deaths[0] < now - self.crash_window_s:
            slot.deaths.popleft()

    def _restart_due(self, now: float) -> None:
        for slot in self.slots:
            if slot.state == BACKOFF and slot.restart_at <= now:
                self._spawn_into(slot, restart=slot.spawned > 0)

    def _spawn_into(self, slot: _Slot, restart: bool) -> None:
        try:
            slot.handle = self.spawn(slot.index)
        except Exception:
            # a spawn failure is a death: same backoff, same cutoff
            slot.deaths.append(self.clock())
            slot.state = BACKOFF
            slot.restart_at = self.clock() + self.backoff.peek(
                len(slot.deaths) - 1
            )
            if len(slot.deaths) >= self.crash_threshold:
                slot.state = CRASH_LOOPED
            return
        slot.state = LIVE
        slot.spawned += 1
        self.spawned_total += 1
        if restart:
            slot.restarts += 1
            self.restarts_total += 1
        METRICS.counter("cluster.supervisor.spawned").inc()
        if BUS.enabled:
            BUS.emit(_COMPONENT, "worker-spawn", slot=slot.index,
                     restart=restart)

    def _scale_up(self, desired: int, now: float) -> None:
        while len(self.slots) < desired:
            slot = _Slot(len(self.slots))
            self.slots.append(slot)
            self._spawn_into(slot, restart=False)

    def _scale_down(self, desired: int, backlog: int,
                    now: float) -> None:
        occupied = len(self.slots)
        if occupied <= desired or occupied <= self.min_workers:
            self._low_since = None
            return
        if self._low_since is None:
            self._low_since = now
            return
        if now - self._low_since < self.idle_grace_s:
            return
        # retire from the end: newest slots go first, crash-looped
        # slots are simply dropped (nothing to terminate)
        while len(self.slots) > max(desired, self.min_workers):
            slot = self.slots[-1]
            if slot.state == LIVE and slot.handle is not None:
                slot.handle.terminate()
                slot.state = RETIRING
                self.retired_total += 1
                METRICS.counter("cluster.supervisor.retired").inc()
                if BUS.enabled:
                    BUS.emit(_COMPONENT, "worker-retire",
                             slot=slot.index)
                if slot.handle.alive():
                    # drop it from the roster now; the process drains
                    # and exits on its own schedule
                    self.slots.pop()
                    continue
            self.slots.pop()
        self._low_since = None

    # -- introspection -------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The ``workers: desired/live/…`` block for ``repro status``."""
        backlog = self.pool.backlog() if self.pool is not None else 0
        counts = {LIVE: 0, BACKOFF: 0, CRASH_LOOPED: 0, RETIRING: 0}
        for slot in self.slots:
            counts[slot.state] = counts.get(slot.state, 0) + 1
        return {
            "min": self.min_workers,
            "max": self.max_workers,
            "desired": self.desired_workers(backlog),
            "live": counts[LIVE],
            "restarting": counts[BACKOFF],
            "crash_looped": counts[CRASH_LOOPED],
            "retiring": counts[RETIRING],
            "spawned_total": self.spawned_total,
            "restarts_total": self.restarts_total,
            "retired_total": self.retired_total,
        }
