"""The cluster coordinator: a scenario service whose backend is a pool.

One :class:`ClusterCoordinator` listens on one port and speaks the
ordinary service protocol to clients (``submit``/``status``/``stream``/
``cancel``/``shutdown``) *and* the worker protocol to
``repro worker`` processes (``register``/``heartbeat``/
``lease-result``) on the same listener.  Submitted jobs flow through
the server machinery unchanged — validation, streaming, cancel,
status — but execution happens in the :class:`ClusterPool`: every
spec becomes one lease, granted spec-by-spec off a work-stealing
queue, so a slow worker never strands the tail of a sweep.

Failure model:

* a worker connection drop (or missed heartbeats past the lease
  timeout) requeues its in-flight leases at the *front* of the
  backlog and returns its unstarted queue items to the backlog;
* a coordinator crash is recovered by ``--resume``: the job journal
  is replayed, finished jobs are restored for late ``status``/
  ``stream`` requests, unfinished jobs re-enter the pool with only
  their *pending* specs — journal-completed specs are never
  re-executed (and the journal's lease trail proves it);
* a stale lease result (from a worker that was evicted and later
  answers anyway) is dropped; the requeued copy of that spec is the
  one whose result counts.  Determinism makes the occasional double
  execution harmless.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.cluster.journal import JobJournal, JournalState
from repro.cluster.queue import WorkStealingQueue
from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.backend import PoolBackend
from repro.service.protocol import ProtocolError
from repro.service.server import DEFAULT_HOST, Job, ScenarioServer
from repro.telemetry.events import BUS
from repro.telemetry.metrics import METRICS
from repro.telemetry.spans import emit_span, new_span_id

DEFAULT_PORT = 7452
DEFAULT_LEASE_TIMEOUT_S = 30.0

_COMPONENT = "cluster.coordinator"

#: involuntary requeues one spec survives before quarantine (shared by
#: the pool scheduler and the federation front).
DEFAULT_MAX_SPEC_RETRIES = 5


def quarantine_result(
    spec: ScenarioSpec,
    requeues: int,
    max_retries: int,
    *,
    backend: str = "cluster",
    suspect: str = "workers",
) -> ScenarioResult:
    """A poisoned spec's structured failure result.

    Shared by :class:`ClusterPool` (a spec that keeps killing workers)
    and the federation front (a spec that keeps killing whole pools):
    past the retry budget the spec terminates as an ``error`` result
    instead of cycling through every replacement the supervisor or
    breaker brings up.
    """
    return ScenarioResult(
        name=spec.name,
        spec_hash=spec.content_hash,
        params=dict(spec.params),
        seed=spec.seed,
        tags=tuple(sorted(spec.tags)),
        status="error",
        backend=backend,
        error=(
            f"quarantined: requeued {requeues} times "
            f"(max_spec_retries={max_retries}) — suspected poisoned "
            f"spec (kills or wedges {suspect})"
        ),
    )


class WorkItem:
    """One spec awaiting (or under) execution for one batch."""

    __slots__ = ("spec", "job_id", "sink", "batch_id", "abandoned",
                 "delivered", "leased_at", "requeues", "trace_id",
                 "span_id", "parent_span")

    def __init__(self, spec: ScenarioSpec, job_id: str, sink,
                 batch_id: str):
        self.spec = spec
        self.job_id = job_id
        self.sink = sink          # thread-safe queue.Queue of the batch
        self.batch_id = batch_id
        self.abandoned = False
        self.delivered = False
        self.leased_at = 0.0      # loop time of the latest grant
        # involuntary requeues only (worker death, undecodable result)
        # — graceful lease releases are free.  Past max_spec_retries
        # the spec is quarantined instead of requeued.
        self.requeues = 0
        # trace identity of the *latest* grant: the lease span id is
        # re-minted per grant, so only the grant that completes emits
        self.trace_id = ""
        self.span_id = ""
        self.parent_span = ""


class WorkerHandle:
    """Coordinator-side state for one registered worker connection."""

    def __init__(self, worker_id: str, name: str, capacity: int,
                 writer, lock: asyncio.Lock, now: float):
        self.id = worker_id
        self.name = name
        self.capacity = max(1, capacity)
        self.writer = writer
        self.lock = lock
        self.last_seen = now
        self.leases: Dict[str, WorkItem] = {}
        self.connected = True
        self.completed = 0
        # set when the worker sends a release frame: a draining worker
        # gets no further grants, or its returned leases would bounce
        # straight back to it
        self.draining = False

    def status(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "leases": len(self.leases),
            "completed": self.completed,
        }


class ClusterPool:
    """Work-stealing spec scheduler over registered workers.

    Lives entirely on the coordinator's event loop; the only
    cross-thread surfaces are :meth:`submit_batch` (scheduled via
    ``run_coroutine_threadsafe`` by :class:`PoolBackend`),
    :meth:`abandon_batch` (via ``call_soon_threadsafe``) and the
    thread-safe sink queues results are delivered to.
    """

    #: involuntary requeues one spec survives before quarantine.
    DEFAULT_MAX_SPEC_RETRIES = DEFAULT_MAX_SPEC_RETRIES

    def __init__(
        self,
        journal: Optional[JobJournal] = None,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        max_spec_retries: Optional[int] = None,
        chaos=None,
    ):
        self.journal = journal
        self.lease_timeout_s = lease_timeout_s
        self.max_spec_retries = (
            self.DEFAULT_MAX_SPEC_RETRIES
            if max_spec_retries is None else max(0, max_spec_retries)
        )
        #: optional :class:`repro.cluster.chaos.ChaosMonkey`; the
        #: ``kill-pool`` trigger is counted per granted lease and takes
        #: the whole coordinator process down abruptly.
        self.chaos = chaos
        #: callable ``job_id -> (trace_id, job_span_id) | None`` set by
        #: the owning coordinator so lease spans parent on job spans
        #: without the pool reaching into server state.
        self.trace_resolver = None
        self.heartbeat_s = max(0.05, lease_timeout_s / 4.0)
        self.queue = WorkStealingQueue()
        self.workers: Dict[str, WorkerHandle] = {}
        self._by_writer: Dict[int, str] = {}
        self._batches: Dict[str, List[WorkItem]] = {}
        self.closed = False
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._worker_counter = 0
        self._lease_counter = 0
        self._batch_counter = 0
        self.total_completed = 0
        self.total_requeued = 0
        self.total_quarantined = 0
        self.total_released = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self.loop = loop
        self._monitor_task = loop.create_task(self._monitor())

    def shutdown(self) -> None:
        """Stop scheduling; wake every blocked batch with an abort."""
        if self.closed:
            return
        self.closed = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        for items in self._batches.values():
            for item in items:
                item.abandoned = True
            if items:
                items[0].sink.put(("abort", "coordinator stopped"))
        self._batches.clear()
        for worker in list(self.workers.values()):
            worker.connected = False
            try:
                worker.writer.close()
            except Exception:
                pass

    def describe(self) -> str:
        return (
            f"workers={len(self.workers)}, queued={self.queue.pending()}, "
            f"lease_timeout={self.lease_timeout_s:g}s"
        )

    def status(self) -> Dict[str, Any]:
        return {
            "workers": {w.id: w.status() for w in self.workers.values()},
            "queued": self.queue.pending(),
            "inflight": sum(len(w.leases) for w in self.workers.values()),
            "completed": self.total_completed,
            "requeued": self.total_requeued,
            "quarantined": self.total_quarantined,
            "released": self.total_released,
            "steals": self.queue.steals,
        }

    def backlog(self) -> int:
        """Queued + in-flight specs — the autoscaler's demand signal."""
        return self.queue.pending() + sum(
            len(w.leases) for w in self.workers.values()
        )

    # -- batches (PoolBackend face) ------------------------------------------

    async def submit_batch(self, specs: List[ScenarioSpec], sink,
                           label: Optional[str] = None) -> str:
        """Queue every spec of one backend batch; returns the batch id."""
        self._batch_counter += 1
        batch_id = f"batch-{self._batch_counter}"
        if self.closed:
            sink.put(("abort", "coordinator stopped"))
            return batch_id
        items = [
            WorkItem(spec, job_id=label or "", sink=sink,
                     batch_id=batch_id)
            for spec in specs
        ]
        self._batches[batch_id] = items
        for item in items:
            self.queue.push(item)
        await self.dispatch_all()
        return batch_id

    def abandon_batch(self, batch_id: str) -> None:
        """Drop a batch's undelivered items (cancel / client abandon)."""
        for item in self._batches.pop(batch_id, ()):
            item.abandoned = True

    def _batch_done(self, item: WorkItem) -> None:
        items = self._batches.get(item.batch_id)
        if items is not None and all(i.delivered for i in items):
            del self._batches[item.batch_id]

    # -- workers -------------------------------------------------------------

    def register(self, name: str, capacity: int, writer,
                 lock: asyncio.Lock) -> WorkerHandle:
        self._worker_counter += 1
        worker = WorkerHandle(
            f"w{self._worker_counter}", name, capacity, writer, lock,
            now=self.loop.time(),
        )
        self.workers[worker.id] = worker
        self._by_writer[id(writer)] = worker.id
        self.queue.add_worker(worker.id)
        METRICS.counter("cluster.workers_registered").inc()
        METRICS.gauge("cluster.workers").set(len(self.workers))
        if BUS.enabled:
            BUS.emit(_COMPONENT, "worker-register", worker=worker.id,
                     name=name, capacity=worker.capacity)
        return worker

    def worker_for_writer(self, writer) -> Optional[WorkerHandle]:
        worker_id = self._by_writer.get(id(writer))
        return self.workers.get(worker_id) if worker_id else None

    def heartbeat(self, worker: WorkerHandle) -> None:
        # liveness is per worker, not per lease: one pulse renews every
        # lease the worker holds (a long scenario just keeps pulsing)
        worker.last_seen = self.loop.time()

    def worker_lost(self, worker_id: str) -> None:
        """Evict a worker; requeue its leases ahead of fresh work."""
        worker = self.workers.pop(worker_id, None)
        if worker is None:
            return
        worker.connected = False
        self._by_writer.pop(id(worker.writer), None)
        requeued = 0
        for item in worker.leases.values():
            if not item.abandoned and not item.delivered:
                if self._requeue_or_quarantine(item, front=True):
                    requeued += 1
        worker.leases.clear()
        self.queue.remove_worker(worker_id)
        METRICS.counter("cluster.workers_lost").inc()
        METRICS.gauge("cluster.workers").set(len(self.workers))
        if BUS.enabled:
            BUS.emit(_COMPONENT, "worker-lost", worker=worker_id,
                     name=worker.name, requeued=requeued)
        if not self.closed and (requeued or self.queue.pending()):
            self.loop.create_task(self.dispatch_all())

    def _requeue_or_quarantine(self, item: WorkItem,
                               front: bool) -> bool:
        """Requeue an involuntarily-lost lease, or quarantine it.

        Returns True when the item went back on the queue.  Each call
        burns one retry; past ``max_spec_retries`` the spec is deemed
        poisoned — it has now taken down (or confused) too many
        workers — and is converted into a structured failure result so
        the batch can finish instead of cycling the same landmine
        through every worker the supervisor restarts.
        """
        item.requeues += 1
        if item.requeues > self.max_spec_retries:
            self._quarantine(item)
            return False
        if front:
            self.queue.push_front(item)
        else:
            self.queue.push(item)
        self.total_requeued += 1
        METRICS.counter("cluster.leases_requeued").inc()
        return True

    def _quarantine(self, item: WorkItem) -> None:
        """Deliver a poisoned spec as an error result, not a retry."""
        spec = item.spec
        result = quarantine_result(
            spec, item.requeues, self.max_spec_retries,
            backend="cluster", suspect="workers",
        )
        item.delivered = True
        self.total_quarantined += 1
        METRICS.counter("cluster.quarantined").inc()
        if BUS.enabled:
            BUS.emit(_COMPONENT, "quarantine", job_id=item.job_id,
                     spec_hash=spec.content_hash,
                     requeues=item.requeues)
        item.sink.put(("result", result))
        self._batch_done(item)

    def release(self, worker: WorkerHandle,
                lease_ids: List[str]) -> int:
        """Take back leases a draining worker returns unstarted.

        A graceful release goes to the *front* of the backlog (it was
        already next in line) and does not count against the spec's
        retry budget — the spec did nothing wrong.
        """
        worker.draining = True    # no more grants to this worker
        returned = 0
        for lease_id in lease_ids:
            item = worker.leases.pop(lease_id, None)
            if item is None:
                continue
            if not item.abandoned and not item.delivered:
                self.queue.push_front(item)
                returned += 1
        self.total_released += returned
        METRICS.counter("cluster.leases_released").inc(returned)
        if BUS.enabled:
            BUS.emit(_COMPONENT, "lease-release", worker=worker.id,
                     released=returned)
        if returned and not self.closed:
            self.loop.create_task(self.dispatch_all())
        return returned

    async def complete(self, worker: WorkerHandle, lease_id: str,
                       result_data: Mapping[str, Any]) -> None:
        worker.last_seen = self.loop.time()
        item = worker.leases.pop(lease_id, None)
        if item is None:
            # stale lease: already expired and requeued
            METRICS.counter("cluster.stale_results").inc()
            if BUS.enabled:
                BUS.emit(_COMPONENT, "stale-result", worker=worker.id,
                         lease=lease_id)
            return
        if not item.abandoned and not item.delivered:
            try:
                result = ScenarioResult.from_dict(result_data)
            except (KeyError, TypeError, ValueError):
                # an undecodable result must not orphan the spec;
                # requeue it WITHOUT re-granting this worker, or a
                # deterministic decode failure would spin at network
                # speed (heartbeats re-pump idle workers instead)
                self._requeue_or_quarantine(item, front=False)
                raise
            item.delivered = True
            worker.completed += 1
            self.total_completed += 1
            METRICS.counter("cluster.leases_completed").inc()
            if item.leased_at:
                # grant-to-result latency: execution + queueing + wire
                METRICS.histogram("cluster.lease_latency_s").observe(
                    self.loop.time() - item.leased_at
                )
            if BUS.enabled:
                BUS.emit(_COMPONENT, "lease-complete",
                         job_id=item.job_id,
                         spec_hash=item.spec.content_hash,
                         worker=worker.id, lease=lease_id,
                         status=result.status)
                if item.trace_id:
                    emit_span(
                        _COMPONENT, "lease",
                        trace_id=item.trace_id, span_id=item.span_id,
                        parent_id=item.parent_span,
                        job_id=item.job_id,
                        spec_hash=item.spec.content_hash,
                        duration_s=self.loop.time() - item.leased_at,
                        worker=worker.id, status=result.status,
                    )
            item.sink.put(("result", result))
            self._batch_done(item)
        await self._grant(worker)

    # -- scheduling ----------------------------------------------------------

    async def dispatch_all(self) -> None:
        for worker in list(self.workers.values()):
            await self._grant(worker)

    async def _grant(self, worker: WorkerHandle) -> None:
        while (
            not self.closed
            and worker.connected
            and not worker.draining
            and worker.id in self.workers
            and len(worker.leases) < worker.capacity
        ):
            item = self.queue.pop(worker.id)
            if item is None:
                return
            if item.abandoned or item.delivered:
                continue
            stolen = self.queue.stole_last
            self._lease_counter += 1
            lease_id = f"lease-{self._lease_counter}"
            worker.leases[lease_id] = item
            item.leased_at = self.loop.time()
            METRICS.counter("cluster.leases_granted").inc()
            if stolen:
                METRICS.counter("cluster.steals").inc()
            METRICS.gauge("cluster.queued").set(self.queue.pending())
            if BUS.enabled:
                BUS.emit(_COMPONENT,
                         "lease-steal" if stolen else "lease-grant",
                         job_id=item.job_id,
                         spec_hash=item.spec.content_hash,
                         worker=worker.id, lease=lease_id)
            if self.journal is not None:
                self.journal.record_lease(
                    item.job_id, item.spec.content_hash, worker.id
                )
            trace = None
            if self.trace_resolver is not None and item.job_id:
                context = self.trace_resolver(item.job_id)
                if context:
                    item.trace_id, item.parent_span = context
                    item.span_id = new_span_id()
                    trace = {"id": item.trace_id, "span": item.span_id}
            try:
                frame = protocol.encode_frame(
                    protocol.make_lease(lease_id, item.spec.to_dict(),
                                        job=item.job_id, trace=trace)
                )
                async with worker.lock:
                    worker.writer.write(frame)
                    await worker.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    ProtocolError):
                self.worker_lost(worker.id)
                return
            if (self.chaos is not None
                    and self.chaos.fire("kill-pool")):
                # chaos: the whole pool dies abruptly at this grant —
                # the in-schedule stand-in for SIGKILLing a federated
                # pool (no farewell frames, journal left mid-job)
                import os as _os
                import sys as _sys

                print(
                    f"chaos: kill-pool firing at lease {lease_id}",
                    file=_sys.stderr, flush=True,
                )
                _os._exit(86)

    async def _monitor(self) -> None:
        """Expire leases of workers that stopped heartbeating."""
        try:
            while not self.closed:
                await asyncio.sleep(self.heartbeat_s)
                deadline = self.loop.time() - self.lease_timeout_s
                stale = [
                    w for w in self.workers.values()
                    if w.last_seen < deadline
                ]
                for worker in stale:
                    METRICS.counter("cluster.heartbeat_misses").inc()
                    if BUS.enabled:
                        BUS.emit(_COMPONENT, "heartbeat-miss",
                                 worker=worker.id, name=worker.name,
                                 silent_for_s=round(
                                     self.loop.time() - worker.last_seen,
                                     3,
                                 ))
                    try:
                        worker.writer.close()
                    except Exception:
                        pass
                    self.worker_lost(worker.id)
        except asyncio.CancelledError:
            pass


class JournaledServer(ScenarioServer):
    """A :class:`ScenarioServer` whose jobs survive a crash.

    The shared durability layer under both the cluster coordinator and
    the federation front (:mod:`repro.cluster.federation`): every job
    transition lands in the :class:`JobJournal`, every streamed result
    optionally lands as a warehouse row, and ``resume=True`` replays
    the journal on startup — finished jobs restored for late
    ``status``/``stream`` requests, unfinished jobs re-entered with
    only their *pending* specs, so journal-completed specs are never
    re-executed.
    """

    def __init__(
        self,
        backend,
        *,
        journal: Optional[JobJournal] = None,
        resume: bool = False,
        warehouse=None,
        warehouse_source: str = "coordinator",
        **server_kwargs,
    ):
        self.journal = journal
        # every streamed result also lands as a warehouse row (journal
        # replays on --resume bypass _append_result, so no duplicates)
        if isinstance(warehouse, (str, Path)):
            from repro.telemetry.warehouse import ResultsWarehouse

            warehouse = ResultsWarehouse(warehouse,
                                         source=warehouse_source)
        self.warehouse = warehouse
        super().__init__(backend, **server_kwargs)
        self._resume = resume

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        self._serving_started(asyncio.get_running_loop())
        if self._resume and self.journal is not None:
            self._restore(JobJournal.replay(self.journal.path))
            self.journal.record_resume()

    def _serving_started(self, loop: asyncio.AbstractEventLoop) -> None:
        """Hook: the listener is up, the restore has not run yet —
        start whatever executes restored batches (pool, federation)."""

    def _interrupted(self) -> bool:
        """Hook: True once execution stopped mid-flight — a job ending
        now is an interruption to resume, not an outcome to journal."""
        return False

    def _restore(self, state: JournalState) -> None:
        """Rebuild journaled jobs; resume the unfinished ones."""
        self._job_counter = max(self._job_counter,
                                state.max_job_number())
        for jj in state.jobs.values():
            pending = [] if jj.finished else jj.pending_specs()
            job = Job(
                id=jj.id,
                specs=list(jj.specs),
                batches=[pending] if pending else [],
                state=jj.state,
                results=list(jj.results),
            )
            self.jobs[job.id] = job
            if jj.finished:
                job.updated.set()
                continue
            if not pending:
                # everything completed before the crash; only the
                # job-done record was lost
                job.state = "done"
                job.updated.set()
                if self.journal is not None:
                    self.journal.record_job_done(job.id, job.state)
                continue
            self._spawn(self._run_job(job))

    def request_stop(self) -> None:
        if self.warehouse is not None:
            try:
                self.warehouse.close()
            except Exception:
                pass  # shutdown must not hang on a sick warehouse
        super().request_stop()

    # -- server hooks -------------------------------------------------------

    def _job_created(self, job: Job) -> None:
        if self.journal is not None:
            self.journal.record_submit(job.id, job.specs)

    def _append_result(self, job: Job, result: ScenarioResult) -> None:
        if self.journal is not None:
            self.journal.record_complete(job.id, result)
        if self.warehouse is not None:
            try:
                self.warehouse.record_result(result, job_id=job.id)
            except Exception:
                # the warehouse is observability, not correctness: a
                # full queue or dead writer must not fail the sweep
                pass
        super()._append_result(job, result)

    def _job_finished(self, job: Job) -> None:
        # a shutdown mid-job is an interruption, not an outcome:
        # leaving the journal without a job-done record is exactly what
        # lets --resume pick the job back up
        if self.journal is not None and not self._interrupted():
            self.journal.record_job_done(job.id, job.state)


class ClusterCoordinator(JournaledServer):
    """A :class:`ScenarioServer` that executes through worker leases."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        journal_path: Optional[str] = None,
        resume: bool = False,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        auth_token: Optional[str] = None,
        max_pending: Optional[int] = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        warehouse=None,
        max_spec_retries: Optional[int] = None,
        compact_every: Optional[int] = None,
        supervisor=None,
        chaos=None,
    ):
        journal = (
            JobJournal(journal_path, compact_every=compact_every)
            if journal_path else None
        )
        self.pool = ClusterPool(
            journal=journal, lease_timeout_s=lease_timeout_s,
            max_spec_retries=max_spec_retries, chaos=chaos,
        )
        #: optional :class:`repro.cluster.supervisor.WorkerSupervisor`
        #: started/stopped with the coordinator.
        self.supervisor = supervisor
        super().__init__(
            PoolBackend(self.pool),
            journal=journal,
            resume=resume,
            warehouse=warehouse,
            host=host,
            port=port,
            max_frame_bytes=max_frame_bytes,
            auth_token=auth_token,
            max_pending=max_pending,
        )
        # lease spans parent on the submitting job's span
        self.pool.trace_resolver = self._job_trace

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        if self.supervisor is not None:
            self.supervisor.start(asyncio.get_running_loop(), self.pool)

    def _serving_started(self, loop: asyncio.AbstractEventLoop) -> None:
        self.pool.start(loop)

    def _interrupted(self) -> bool:
        return self.pool.closed

    def request_stop(self) -> None:
        if self.supervisor is not None:
            self.supervisor.shutdown()
        self.pool.shutdown()
        super().request_stop()

    # -- server hooks -------------------------------------------------------

    def _job_batches(self, specs, shards):
        # the pool leases spec-by-spec; shard batching would only
        # serialize the fan-out, so a cluster job is always one batch
        return [list(specs)]

    def _connection_closed(self, writer) -> None:
        worker = self.pool.worker_for_writer(writer)
        if worker is not None:
            self.pool.worker_lost(worker.id)

    def _cluster_status(self) -> Optional[Dict[str, Any]]:
        status = self.pool.status()
        if self.supervisor is not None:
            status["supervisor"] = self.supervisor.status()
        if self.journal is not None and self.journal.last_compaction:
            status["last_compaction"] = dict(self.journal.last_compaction)
        return status

    # -- worker frames ------------------------------------------------------

    async def _handle_worker_frame(self, type_, message, writer,
                                   lock) -> bool:
        if type_ == "register":
            worker = self.pool.register(
                message["name"], message.get("capacity", 1), writer, lock
            )
            await self._send(
                writer, lock,
                protocol.make_registered(
                    worker.id,
                    heartbeat_s=self.pool.heartbeat_s,
                    lease_timeout_s=self.pool.lease_timeout_s,
                ),
            )
            await self.pool._grant(worker)
            return False
        worker = self.pool.worker_for_writer(writer)
        if worker is None:
            await self._send_error(
                writer, lock,
                ProtocolError(
                    "unknown-worker",
                    f"{type_!r} before a successful register on this "
                    "connection",
                ),
            )
            return False
        if type_ == "heartbeat":
            self.pool.heartbeat(worker)
            # heartbeats double as a grant pump: an idle worker picks
            # up anything requeued since its last completion
            await self.pool._grant(worker)
            return False
        if type_ == "release":
            # a draining worker returning unstarted leases; ack so the
            # worker knows the hand-off landed before it exits
            released = self.pool.release(
                worker, [str(x) for x in message.get("leases", ())]
            )
            await self._send(
                writer, lock, protocol.make_ack("release", released)
            )
            return False
        # lease-result
        try:
            await self.pool.complete(
                worker, message["lease"], message["result"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            await self._send_error(
                writer, lock,
                ProtocolError(
                    "bad-message",
                    f"undecodable lease result: "
                    f"{type(exc).__name__}: {exc}",
                ),
            )
        return False

    # -- status -------------------------------------------------------------

    def cluster_status(self) -> Dict[str, Any]:
        return self.pool.status()
