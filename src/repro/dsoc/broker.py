"""The DSOC object request broker.

Keeps the registry of deployed servant replicas and picks a replica for
each invocation.  The paper's claim that "given base properties of the
architecture, such as predictable NoC latency and throughput, the tools
can vastly simplify the mapping of the DSOC objects on to the
architecture" shows up here as pluggable replica-selection policies —
round-robin and shortest-queue — whose effect experiment E15 measures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.dsoc.idl import IdlError, Interface
from repro.sim.core import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dsoc.runtime import DsocEndpoint, ServerBinding


class ReplicaPolicy(Enum):
    """How the broker picks among replicas of an object."""

    ROUND_ROBIN = "round_robin"
    SHORTEST_QUEUE = "shortest_queue"
    RANDOM = "random"


@dataclass
class Registration:
    """All replicas of one named object."""

    name: str
    interface: Interface
    replicas: List["ServerBinding"] = field(default_factory=list)
    _rr: itertools.cycle = field(default=None, repr=False)
    _rotation: int = field(default=0, repr=False)

    def pick(self, policy: ReplicaPolicy, rng=None) -> "ServerBinding":
        if not self.replicas:
            raise IdlError(f"object {self.name!r} has no deployed replicas")
        if policy is ReplicaPolicy.ROUND_ROBIN:
            if self._rr is None:
                self._rr = itertools.cycle(self.replicas)
            return next(self._rr)
        if policy is ReplicaPolicy.SHORTEST_QUEUE:
            # Rotate the scan start so queue-depth ties (the common case
            # at send time: in-flight requests are invisible to the
            # sender) round-robin instead of piling onto replica 0.
            count = len(self.replicas)
            start = self._rotation % count
            self._rotation += 1
            best = None
            best_depth = None
            for offset in range(count):
                replica = self.replicas[(start + offset) % count]
                depth = replica.queue_depth()
                if best_depth is None or depth < best_depth:
                    best = replica
                    best_depth = depth
            return best
        if policy is ReplicaPolicy.RANDOM:
            if rng is None:
                raise ValueError("RANDOM policy needs an rng")
            return rng.choice(self.replicas)
        raise ValueError(f"unhandled policy {policy}")  # pragma: no cover


class ObjectBroker:
    """Registry + replica selection."""

    def __init__(self, policy: ReplicaPolicy = ReplicaPolicy.ROUND_ROBIN) -> None:
        self.policy = policy
        self._objects: Dict[str, Registration] = {}

    def register(
        self,
        name: str,
        interface: Interface,
        binding: "ServerBinding",
    ) -> None:
        """Add a replica of object *name* (creating the registration)."""
        registration = self._objects.get(name)
        if registration is None:
            registration = Registration(name=name, interface=interface)
            self._objects[name] = registration
        elif registration.interface.name != interface.name:
            raise IdlError(
                f"object {name!r} already registered with interface "
                f"{registration.interface.name!r}, not {interface.name!r}"
            )
        registration.replicas.append(binding)
        registration._rr = None  # rebuild cycle over the new replica set

    def lookup(self, name: str) -> Registration:
        try:
            return self._objects[name]
        except KeyError:
            raise IdlError(
                f"no object named {name!r}; registered: "
                f"{', '.join(sorted(self._objects)) or '(none)'}"
            ) from None

    def pick_replica(self, name: str, rng=None) -> "ServerBinding":
        return self.lookup(name).pick(self.policy, rng)

    def object_names(self) -> List[str]:
        return sorted(self._objects)


class Proxy:
    """Client-side stub for a named DSOC object.

    Calls marshal their arguments and return an :class:`Event` that
    succeeds with the unmarshalled result (or immediately for oneway
    methods).
    """

    def __init__(
        self,
        endpoint: "DsocEndpoint",
        broker: ObjectBroker,
        name: str,
    ) -> None:
        self._endpoint = endpoint
        self._broker = broker
        self.name = name
        self.interface = broker.lookup(name).interface
        self.calls_issued = 0
        # Method signatures resolved once per proxy, not once per call
        # (line-rate clients issue one call per packet).
        self._signatures = {
            m.name: m for m in self.interface.methods
        }

    def call(self, method: str, *args: Any) -> Event:
        """Invoke *method* with positional *args*; returns a result event."""
        signature = self._signatures.get(method)
        if signature is None:
            signature = self.interface.method(method)  # raises IdlError
        signature.check_args(args)
        replica = self._broker.pick_replica(self.name)
        self.calls_issued += 1
        return self._endpoint.invoke(replica, self.name, method, args,
                                     oneway=signature.oneway)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Proxy {self.name!r} via t{self._endpoint.terminal}>"
