"""Compact binary marshaling for DSOC messages.

A self-describing tag-length-value format covering the types DSOC
traffics in: ints, floats, bools, None, bytes, str, lists/tuples and
string-keyed dicts.  The encoded length feeds :func:`wire_flits`, so
every simulated request/response occupies a flit count derived from its
*actual* marshalled size — message size effects on NoC load are real,
not assumed.
"""

from __future__ import annotations

import struct
from typing import Any

#: Type tags.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT_POS = 0x03   # unsigned varint
_T_INT_NEG = 0x04   # unsigned varint of (-n - 1)
_T_FLOAT = 0x05     # 8-byte IEEE754
_T_BYTES = 0x06     # varint length + raw
_T_STR = 0x07       # varint length + utf-8
_T_LIST = 0x08      # varint count + items
_T_DICT = 0x09      # varint count + (str key, value) pairs

#: Per-message wire header: 8-byte routing/sequence header (src, dst,
#: request id, flags), mirroring a hardware message header.
WIRE_HEADER_BYTES = 8


class MarshalError(ValueError):
    """Unsupported value or corrupt wire data."""


def _encode_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise MarshalError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise MarshalError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise MarshalError("varint too long")


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is False:
        out.append(_T_FALSE)
    elif value is True:
        out.append(_T_TRUE)
    elif isinstance(value, int):
        if value >= 0:
            out.append(_T_INT_POS)
            _encode_varint(value, out)
        else:
            out.append(_T_INT_NEG)
            _encode_varint(-value - 1, out)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        _encode_varint(len(value), out)
        out.extend(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_T_STR)
        _encode_varint(len(encoded), out)
        out.extend(encoded)
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        _encode_varint(len(value), out)
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _encode_varint(len(value), out)
        for key, item in value.items():
            if not isinstance(key, str):
                raise MarshalError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            encoded = key.encode("utf-8")
            _encode_varint(len(encoded), out)
            out.extend(encoded)
            _encode(item, out)
    else:
        raise MarshalError(f"cannot marshal {type(value).__name__}")


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise MarshalError("truncated message")
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_INT_POS:
        return _decode_varint(data, offset)
    if tag == _T_INT_NEG:
        value, offset = _decode_varint(data, offset)
        return -value - 1, offset
    if tag == _T_FLOAT:
        if offset + 8 > len(data):
            raise MarshalError("truncated float")
        return struct.unpack(">d", data[offset:offset + 8])[0], offset + 8
    if tag == _T_BYTES:
        length, offset = _decode_varint(data, offset)
        if offset + length > len(data):
            raise MarshalError("truncated bytes")
        return bytes(data[offset:offset + length]), offset + length
    if tag == _T_STR:
        length, offset = _decode_varint(data, offset)
        if offset + length > len(data):
            raise MarshalError("truncated string")
        return data[offset:offset + length].decode("utf-8"), offset + length
    if tag == _T_LIST:
        count, offset = _decode_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        count, offset = _decode_varint(data, offset)
        result = {}
        for _ in range(count):
            key_len, offset = _decode_varint(data, offset)
            if offset + key_len > len(data):
                raise MarshalError("truncated dict key")
            key = data[offset:offset + key_len].decode("utf-8")
            offset += key_len
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    raise MarshalError(f"unknown type tag 0x{tag:02x}")


#: Reusable encode buffer: every request/response marshals through
#: here, so the per-message bytearray allocation is paid once per
#: process instead of once per call.  ``_encode`` never re-enters
#: ``dumps`` (it recurses on ``_encode`` directly), so reuse is safe in
#: the single-threaded simulation; the returned ``bytes`` is a copy.
_ENCODE_BUFFER = bytearray()


def dumps(value: Any) -> bytes:
    """Marshal *value* to the compact binary wire format."""
    buf = _ENCODE_BUFFER
    del buf[:]
    _encode(value, buf)
    return bytes(buf)


def loads(data: bytes) -> Any:
    """Unmarshal a value; raises :class:`MarshalError` on trailing junk."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise MarshalError(f"{len(data) - offset} trailing bytes")
    return value


def wire_flits(payload: bytes, flit_bytes: int = 8) -> int:
    """Flits needed to carry *payload* plus the message header."""
    if flit_bytes < 1:
        raise MarshalError(f"flit size must be >=1, got {flit_bytes}")
    total = WIRE_HEADER_BYTES + len(payload)
    return -(-total // flit_bytes)
