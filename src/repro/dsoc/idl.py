"""DSOC interface definitions.

A tiny IDL-as-Python-objects layer: interfaces declare methods, methods
declare typed parameters and whether they are *oneway* (fire-and-forget
— no response message, the pattern used for packet hand-off pipelines).
The broker validates calls against the interface before marshaling, so
type errors surface at the caller, not as corrupted simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


class IdlError(TypeError):
    """Interface declaration or call-signature violation."""


#: Supported parameter types and their Python validators.
_TYPE_CHECKS = {
    "u8": lambda v: isinstance(v, int) and 0 <= v < 2 ** 8,
    "u16": lambda v: isinstance(v, int) and 0 <= v < 2 ** 16,
    "u32": lambda v: isinstance(v, int) and 0 <= v < 2 ** 32,
    "u64": lambda v: isinstance(v, int) and 0 <= v < 2 ** 64,
    "i32": lambda v: isinstance(v, int) and -(2 ** 31) <= v < 2 ** 31,
    "f64": lambda v: isinstance(v, float),
    "bool": lambda v: isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bytes": lambda v: isinstance(v, (bytes, bytearray)),
    "any": lambda v: True,
}


@dataclass(frozen=True)
class Param:
    """One typed parameter."""

    name: str
    type: str

    def __post_init__(self) -> None:
        base = self.type
        if base.startswith("list<") and base.endswith(">"):
            base = base[5:-1]
        if base not in _TYPE_CHECKS:
            raise IdlError(
                f"parameter {self.name!r}: unknown type {self.type!r}; "
                f"known: {', '.join(sorted(_TYPE_CHECKS))} and list<...>"
            )

    def check(self, value: Any) -> None:
        """Raise :class:`IdlError` if *value* doesn't match the type."""
        if self.type.startswith("list<"):
            inner = self.type[5:-1]
            if not isinstance(value, (list, tuple)):
                raise IdlError(
                    f"parameter {self.name!r}: expected {self.type}, "
                    f"got {type(value).__name__}"
                )
            for item in value:
                if not _TYPE_CHECKS[inner](item):
                    raise IdlError(
                        f"parameter {self.name!r}: element {item!r} is not {inner}"
                    )
            return
        if not _TYPE_CHECKS[self.type](value):
            raise IdlError(
                f"parameter {self.name!r}: value {value!r} is not {self.type}"
            )


@dataclass(frozen=True)
class Method:
    """One interface method."""

    name: str
    params: Tuple[Param, ...] = ()
    returns: str = "any"
    oneway: bool = False

    def __post_init__(self) -> None:
        if self.oneway and self.returns != "any" and self.returns != "none":
            raise IdlError(
                f"oneway method {self.name!r} cannot declare a return type"
            )
        seen = set()
        for param in self.params:
            if param.name in seen:
                raise IdlError(
                    f"method {self.name!r}: duplicate parameter {param.name!r}"
                )
            seen.add(param.name)

    def check_args(self, args: Tuple[Any, ...]) -> None:
        """Validate a positional argument tuple against the signature."""
        if len(args) != len(self.params):
            raise IdlError(
                f"method {self.name!r} takes {len(self.params)} arguments, "
                f"got {len(args)}"
            )
        for param, value in zip(self.params, args):
            param.check(value)


@dataclass(frozen=True)
class Interface:
    """A named collection of methods."""

    name: str
    methods: Tuple[Method, ...] = ()
    _by_name: Dict[str, Method] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise IdlError("interface needs a non-empty name")
        seen = set()
        for method in self.methods:
            if method.name in seen:
                raise IdlError(
                    f"interface {self.name!r}: duplicate method {method.name!r}"
                )
            seen.add(method.name)
            self._by_name[method.name] = method

    def method(self, name: str) -> Method:
        """Look up a method, raising :class:`IdlError` on a miss."""
        try:
            return self._by_name[name]
        except KeyError:
            raise IdlError(
                f"interface {self.name!r} has no method {name!r}; "
                f"available: {', '.join(m.name for m in self.methods)}"
            ) from None

    def method_names(self) -> list[str]:
        return [m.name for m in self.methods]
