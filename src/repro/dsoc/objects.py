"""DSOC servant objects.

A :class:`DsocObject` subclass implements an :class:`~repro.dsoc.idl.Interface`
by providing one generator method ``serve_<name>`` per interface
method.  Servant generators receive the hosting PE's
:class:`~repro.processors.multithread.ThreadContext` and a
:class:`ServiceContext` that wraps remote (NoC) accesses; they express
timing by yielding from ``ctx.compute(...)`` and data dependencies by
yielding from ``svc.read(...)`` — exactly the compute/communicate
structure the MultiFlex mapping exploits.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator

from repro.dsoc.idl import IdlError, Interface
from repro.noc.ocp import OcpMaster
from repro.processors.multithread import ThreadContext


class ServiceContext:
    """Per-deployment services available to servant generators."""

    def __init__(self, master: OcpMaster, ctx: ThreadContext) -> None:
        self._master = master
        self._ctx = ctx

    def read(self, target: int, address: int, size_flits: int = 2) -> Generator:
        """Split-transaction read; the core is surrendered while waiting."""
        value = yield from self._ctx.remote(
            self._master.read(target, address, size_flits)
        )
        return value

    def write(
        self, target: int, address: int, data: Any, size_flits: int = 4
    ) -> Generator:
        """Split-transaction write (acknowledged)."""
        value = yield from self._ctx.remote(
            self._master.write(target, address, data, size_flits)
        )
        return value

    @property
    def thread_id(self) -> int:
        return self._ctx.thread_id


class DsocObject:
    """Base class for DSOC servants.

    Subclasses set :attr:`interface` and define ``serve_<method>``
    generators::

        class Counter(DsocObject):
            interface = Interface("Counter", (Method("bump", ()),))

            def __init__(self):
                super().__init__()
                self.value = 0

            def serve_bump(self, ctx, svc):
                yield from ctx.compute(5)
                self.value += 1
                return self.value
    """

    interface: Interface

    def __init__(self) -> None:
        if not isinstance(getattr(type(self), "interface", None), Interface):
            raise IdlError(
                f"{type(self).__name__} must declare a class-level "
                "'interface' of type Interface"
            )
        missing = [
            m.name
            for m in self.interface.methods
            if not callable(getattr(self, f"serve_{m.name}", None))
        ]
        if missing:
            raise IdlError(
                f"{type(self).__name__} is missing servant methods: "
                + ", ".join(f"serve_{m}" for m in missing)
            )
        # Per-instance dispatch table: the broker resolves a servant
        # generator once per request, so this lookup is on the DSOC
        # hot path — a dict hit instead of an interface walk + getattr.
        self._dispatch_table: Dict[str, Callable[..., Generator]] = {
            m.name: getattr(self, f"serve_{m.name}")
            for m in self.interface.methods
        }

    def dispatch(
        self, method: str
    ) -> Callable[..., Generator[Any, Any, Any]]:
        """Return the servant generator for *method* (validated)."""
        servant = self._dispatch_table.get(method)
        if servant is None:
            self.interface.method(method)  # raises IdlError with context
            raise IdlError(  # pragma: no cover - method() always raises
                f"no servant for {method!r}"
            )
        return servant
