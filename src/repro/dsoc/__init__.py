"""DSOC: the Distributed System Object Component programming model.

Section 7.2 of the paper: "We have developed a lightweight Distributed
System Object Component (DSOC) programming model inspired by CORBA-like
concepts.  DSOC objects can be executed on a variety of processors ...
as well as on hardware or on the eFPGA.  Using the DSOC methodology,
the application design is largely decoupled from the details of a
particular FPPA target mapping."

The implementation mirrors a lightweight ORB:

* :mod:`repro.dsoc.idl` — interface definitions (methods, parameter
  types, oneway flags);
* :mod:`repro.dsoc.marshal` — a compact binary wire format (the flit
  count of each request derives from the real encoded size);
* :mod:`repro.dsoc.objects` — servant base class; implementations are
  generator methods that interleave compute segments and split
  transactions;
* :mod:`repro.dsoc.broker` — the object request broker: registry,
  binding, replica selection policies;
* :mod:`repro.dsoc.runtime` — deployment of servants onto platform PEs
  and the client/server message plumbing over the NoC.
"""

from repro.dsoc.idl import Interface, Method, Param, IdlError
from repro.dsoc.marshal import MarshalError, dumps, loads, wire_flits
from repro.dsoc.objects import DsocObject, ServiceContext
from repro.dsoc.broker import ObjectBroker, Proxy, ReplicaPolicy
from repro.dsoc.runtime import DsocRuntime, DsocEndpoint

__all__ = [
    "DsocEndpoint",
    "DsocObject",
    "DsocRuntime",
    "IdlError",
    "Interface",
    "MarshalError",
    "Method",
    "ObjectBroker",
    "Param",
    "Proxy",
    "ReplicaPolicy",
    "ServiceContext",
    "dumps",
    "loads",
    "wire_flits",
]
