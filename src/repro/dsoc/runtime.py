"""DSOC runtime: deployment and NoC message plumbing.

The runtime binds servants to platform PEs (each replica is served by
the PE's hardware threads), gives clients proxies, and carries
invocations as marshalled messages over the platform NoC.  Flit counts
come from the real marshalled size, and servers interleave service of
concurrent requests through the PE's hardware multithreading — the
machinery behind the paper's "near 100% utilization ... even in
presence of NoC interconnect latencies of over 100 cycles".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.dsoc.broker import ObjectBroker, Proxy, ReplicaPolicy
from repro.dsoc.idl import IdlError
from repro.dsoc.marshal import dumps, loads, wire_flits
from repro.dsoc.objects import DsocObject, ServiceContext
from repro.noc.network import Network
from repro.noc.ocp import OcpMaster
from repro.noc.packet import Packet
from repro.platform.fppa import FppaPlatform, PeBinding
from repro.sim.core import Event, Simulator
from repro.sim.resources import Store

_request_ids = itertools.count()

#: payload tags used on the wire
_REQ = "dsoc_req"
_RSP = "dsoc_rsp"


@dataclass
class ServerBinding:
    """One deployed replica: servant instance + host PE + request queue."""

    name: str
    servant: DsocObject
    pe: PeBinding
    inbox: Store
    served: int = 0

    def queue_depth(self) -> int:
        return len(self.inbox)

    @property
    def terminal(self) -> int:
        return self.pe.terminal


class DsocEndpoint:
    """Per-terminal network interface for DSOC traffic.

    Demultiplexes incoming packets: DSOC requests go to the local inbox
    store, DSOC responses resolve pending client events, and OCP
    responses are forwarded to the terminal's OCP master (PEs keep
    their master socket for memory traffic).
    """

    def __init__(
        self,
        network: Network,
        terminal: int,
        ocp_master: Optional[OcpMaster] = None,
        flit_bytes: int = 8,
    ) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.terminal = terminal
        self.flit_bytes = flit_bytes
        self._ocp_master = ocp_master
        self.requests_in: Store = Store(self.sim, name=f"dsoc.t{terminal}.in")
        self._pending: Dict[int, Event] = {}
        self.sent_requests = 0
        self.received_responses = 0
        network.attach(terminal, self._on_packet)

    def invoke(
        self,
        replica: ServerBinding,
        name: str,
        method: str,
        args: Tuple[Any, ...],
        oneway: bool = False,
    ) -> Event:
        """Send an invocation to *replica*; returns the result event."""
        request_id = next(_request_ids)
        blob = dumps([name, method, list(args)])
        done = self.sim.event(f"dsoc.call.{request_id}")
        if oneway:
            done.succeed(None)
        else:
            self._pending[request_id] = done
        packet = Packet(
            src=self.terminal,
            dst=replica.terminal,
            size_flits=wire_flits(blob, self.flit_bytes),
            payload=(_REQ, request_id, self.terminal, oneway, blob, replica),
        )
        self.sent_requests += 1
        self.network.send(packet)
        return done

    def respond(self, request_id: int, client_terminal: int, result: Any) -> None:
        """Send a response message back to the caller."""
        blob = dumps(result)
        packet = Packet(
            src=self.terminal,
            dst=client_terminal,
            size_flits=wire_flits(blob, self.flit_bytes),
            payload=(_RSP, request_id, blob),
        )
        self.network.send(packet)

    def _on_packet(self, packet: Packet) -> None:
        tag = packet.payload[0]
        if tag == _REQ:
            _tag, request_id, client, oneway, blob, replica = packet.payload
            replica.inbox.put((request_id, client, oneway, blob))
        elif tag == _RSP:
            _tag, request_id, blob = packet.payload
            pending = self._pending.pop(request_id, None)
            if pending is None:
                raise IdlError(
                    f"terminal {self.terminal}: response for unknown "
                    f"request {request_id}"
                )
            self.received_responses += 1
            pending.succeed(loads(blob))
        elif tag in ("req", "rsp"):
            if self._ocp_master is None:
                raise IdlError(
                    f"terminal {self.terminal}: OCP packet but no master bound"
                )
            self._ocp_master._on_packet(packet)
        else:
            raise IdlError(f"terminal {self.terminal}: unknown tag {tag!r}")


class DsocRuntime:
    """Deploys DSOC objects on an FPPA platform and wires up clients."""

    def __init__(
        self,
        platform: FppaPlatform,
        policy: ReplicaPolicy = ReplicaPolicy.ROUND_ROBIN,
        flit_bytes: int = 8,
    ) -> None:
        self.platform = platform
        self.broker = ObjectBroker(policy=policy)
        self.flit_bytes = flit_bytes
        self._endpoints: Dict[int, DsocEndpoint] = {}

    def endpoint(self, terminal: int) -> DsocEndpoint:
        """Get or create the DSOC endpoint for a terminal."""
        existing = self._endpoints.get(terminal)
        if existing is not None:
            return existing
        master = None
        for binding in self.platform.pes:
            if binding.terminal == terminal:
                master = binding.master
                break
        endpoint = DsocEndpoint(
            self.platform.network,
            terminal,
            ocp_master=master,
            flit_bytes=self.flit_bytes,
        )
        self._endpoints[terminal] = endpoint
        return endpoint

    def deploy(
        self,
        name: str,
        servant: DsocObject,
        pe: PeBinding,
        server_threads: int = 1,
    ) -> ServerBinding:
        """Deploy *servant* as a replica of object *name* on a PE.

        *server_threads* of the PE's hardware contexts run service
        loops pulling from the replica's inbox.
        """
        if server_threads < 1:
            raise ValueError(f"need >=1 server thread, got {server_threads}")
        endpoint = self.endpoint(pe.terminal)
        binding = ServerBinding(
            name=name,
            servant=servant,
            pe=pe,
            inbox=Store(self.platform.sim, name=f"{name}@pe{pe.index}.inbox"),
        )
        self.broker.register(name, servant.interface, binding)
        for _ in range(server_threads):
            pe.pe.spawn_thread(self._server_loop(binding, endpoint))
        return binding

    def deploy_replicated(
        self,
        name: str,
        servant_factory,
        pes: Optional[List[PeBinding]] = None,
        server_threads: int = 1,
    ) -> List[ServerBinding]:
        """Deploy one replica per PE (all platform PEs by default)."""
        pes = pes if pes is not None else self.platform.pes
        return [
            self.deploy(name, servant_factory(), pe, server_threads)
            for pe in pes
        ]

    def proxy(self, client_terminal: int, name: str) -> Proxy:
        """Create a client proxy bound to *client_terminal*."""
        return Proxy(self.endpoint(client_terminal), self.broker, name)

    def _server_loop(self, binding: ServerBinding, endpoint: DsocEndpoint):
        """Thread-body factory: serve requests from the replica inbox."""

        def body(ctx):
            svc = ServiceContext(binding.pe.master, ctx)
            # Hot loop: one iteration per served request — resolve the
            # per-call attribute chain once per thread, not per packet.
            dispatch = binding.servant.dispatch
            inbox_get = binding.inbox.get
            remote = ctx.remote
            item_done = ctx.item_done
            respond = endpoint.respond
            while True:
                request = yield from remote(inbox_get())
                request_id, client, oneway, blob = request
                _name, method, args = loads(blob)
                result = yield from dispatch(method)(ctx, svc, *args)
                binding.served += 1
                item_done()
                if not oneway:
                    respond(request_id, client, result)

        return body

    def total_served(self, name: str) -> int:
        """Requests served across all replicas of an object."""
        return sum(r.served for r in self.broker.lookup(name).replicas)
