"""The eighteen experiments of the reproduction.

Each ``eNN_*`` function regenerates one of the paper's quantitative
claims or figures (the mapping is documented in DESIGN.md) and returns
a dict with ``rows`` (list of flat dicts), a ``claim`` string quoting
the paper, and a ``verdict`` dict of the headline measured numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.apps.lpm import SRAM_READ_PJ, BITS_PER_ENTRY
from repro.apps.stepnp_ipv4 import run_ipv4_on_stepnp
from repro.apps.trafficgen import build_cam, build_trie, random_prefix_table
from repro.economics.alternatives import (
    STANDARD_ALTERNATIVES,
    best_alternative,
    efpga_partition_cost,
)
from repro.economics.breakeven import BreakEven
from repro.economics.complexity import (
    complexity_table,
    risc_equivalents,
    sw_overtakes_hw_year,
)
from repro.economics.nre import mask_nre_growth_per_generation, mask_nre_series
from repro.economics.productivity import (
    productivity_peak_node,
    productivity_series,
)
from repro.mapping.anneal import anneal_map
from repro.mapping.evaluator import MappingEvaluator
from repro.mapping.dse import make_platform_model
from repro.mapping.mapper import MAPPERS, run_mapper
from repro.mapping.taskgraph import layered_random_graph
from repro.memory.tradeoff import architecture_tradeoff, best_architecture
from repro.noc.metrics import simulate_traffic
from repro.noc.topology import (
    bus,
    crossbar,
    fat_tree,
    mesh,
    ring,
    torus,
    tree,
)
from repro.noc.traffic import TrafficPattern
from repro.platform.stepnp import stepnp_spec
from repro.processors.classes import figure1_series, pareto_front
from repro.processors.multithread import (
    ideal_utilization,
    run_latency_hiding_experiment,
)
from repro.technology.node import node, node_names, nodes_between
from repro.technology.power import PowerModel, dvs_energy_delay, multi_vt_optimize
from repro.technology.wires import WireModel
from repro.engine.registry import registered, scenario


@scenario("E1", tags=("experiments", "economics", "smoke"))
def e01_mask_nre() -> dict:
    """E1: mask NRE x10 in ~3 generations, > $1M at 90 nm."""
    rows = [
        {"node": name, "mask_nre_usd": cost}
        for name, cost in mask_nre_series()
    ]
    growth = mask_nre_growth_per_generation("350nm", "90nm")
    over_3_generations = growth ** 3
    return {
        "claim": (
            "mask set NRE multiplied by ten in about three process "
            "generations, exceeding $1M at 90nm"
        ),
        "rows": rows,
        "verdict": {
            "growth_per_generation": round(growth, 3),
            "growth_over_3_generations": round(over_3_generations, 2),
            "mask_90nm_usd": node("90nm").mask_set_cost_usd,
            "exceeds_1M_at_90nm": node("90nm").mask_set_cost_usd > 1e6,
        },
    }


@scenario("E2", tags=("experiments", "economics", "smoke"))
def e02_mask_breakeven() -> dict:
    """E2: $5 chip, 20% margin -> >1M units to recover the 90nm mask."""
    rows = []
    for name in node_names():
        analysis = BreakEven.analyze(name, price_usd=5.0, margin=0.20)
        rows.append(analysis.as_row())
    focal = BreakEven.analyze("90nm", price_usd=5.0, margin=0.20)
    return {
        "claim": (
            "for a chip sold at $5 with 20% margin, over one million "
            "chips must be sold to pay the mask set NRE alone"
        ),
        "rows": rows,
        "verdict": {
            "mask_only_volume_90nm": focal.mask_only_volume,
            "exceeds_1M": focal.mask_only_volume > 1_000_000,
        },
    }


@scenario("E3", tags=("experiments", "economics", "smoke"))
def e03_design_breakeven() -> dict:
    """E3: $10-100M design NRE at 0.13um -> 10-100M units break-even."""
    rows = []
    for transistors in (40e6, 100e6, 200e6):
        analysis = BreakEven.analyze(
            "130nm", price_usd=5.0, margin=0.20, transistors=transistors
        )
        row = analysis.as_row()
        row["transistors"] = transistors
        rows.append(row)
    focal = BreakEven.analyze("130nm", transistors=100e6)
    return {
        "claim": (
            "design NRE ranges from $10M to $100M for complex 0.13um "
            "designs, implying volumes of 10 to 100 million chips"
        ),
        "rows": rows,
        "verdict": {
            "design_nre_130nm_100Mtx": round(focal.design_nre),
            "nre_in_10M_100M_band": 10e6 <= focal.design_nre <= 100e6,
            "total_volume": focal.total_volume,
            "volume_in_10M_100M_band": 10e6 <= focal.total_volume <= 100e6,
        },
    }


@scenario("E4", tags=("experiments", "economics", "smoke"))
def e04_risc_equivalents() -> dict:
    """E4: 100M+ transistors ~= the logic of >1000 32-bit RISC cores."""
    rows = []
    for name in node_names():
        process = node(name)
        for area in (80.0, 100.0, 150.0):
            budget = process.transistors_for_area(area)
            rows.append(
                {
                    "node": name,
                    "die_mm2": area,
                    "transistors": budget,
                    "risc_equivalents": round(risc_equivalents(budget)),
                }
            )
    return {
        "claim": (
            "over 100 million transistors - enough to theoretically "
            "place the logic of over one thousand 32 bit RISC "
            "processors on a die"
        ),
        "rows": rows,
        "verdict": {
            "risc_per_100M_tx": risc_equivalents(100e6),
            "exceeds_1000": risc_equivalents(100e6) >= 1000,
        },
    }


@scenario("E5", tags=("experiments", "economics", "smoke"))
def e05_alternatives() -> dict:
    """E5: the NRE-flexibility continuum and its volume crossovers."""
    volumes = [1_000, 5_000, 20_000, 100_000, 500_000, 2_000_000, 10_000_000]
    rows = []
    for volume in volumes:
        choice, cost = best_alternative("130nm", volume)
        rows.append(
            {
                "volume": volume,
                "winner": choice.value,
                "total_cost_usd": round(cost),
            }
        )
    winners = [row["winner"] for row in rows]
    return {
        "claim": (
            "FPGAs win at low volume (medium volumes below 100K/year "
            "preclude ASICs); flexible platforms and structured arrays "
            "occupy the middle; ASICs need multi-million volumes"
        ),
        "rows": rows,
        "verdict": {
            "low_volume_winner": winners[0],
            "high_volume_winner": winners[-1],
            "fpga_wins_low": winners[0] == "fpga",
            "asic_wins_high": winners[-1] == "asic",
            "distinct_regions": len(dict.fromkeys(winners)),
        },
    }


@scenario("E6", tags=("experiments", "economics", "smoke"))
def e06_productivity() -> dict:
    """E6: design productivity declines at 90nm and beyond."""
    rows = [
        {"node": name, "tx_per_man_year": round(value)}
        for name, value in productivity_series()
    ]
    peak = productivity_peak_node()
    by_name = dict(productivity_series())
    return {
        "claim": (
            "for 90nm technologies and beyond, the design productivity "
            "(transistors designed per man-year) will actually decline"
        ),
        "rows": rows,
        "verdict": {
            "peak_node": peak,
            "declines_after_peak": by_name["65nm"] < by_name["90nm"]
            and by_name["50nm"] < by_name["65nm"],
        },
    }


@scenario("E7", tags=("experiments", "economics", "smoke"))
def e07_hw_sw_growth() -> dict:
    """E7: HW +56%/yr vs SW +140%/yr; SW effort overtakes HW."""
    rows = complexity_table(1997, 2008)
    crossover = sw_overtakes_hw_year()
    return {
        "claim": (
            "hardware complexity grows 56%/year, embedded software "
            "complexity 140%/year; SW development effort has surpassed "
            "HW design effort in leading SoCs"
        ),
        "rows": rows,
        "verdict": {
            "sw_overtakes_hw_year": round(crossover, 1),
            "before_paper": crossover <= 2003.0,
        },
    }


@scenario("E8", tags=("experiments", "processors", "smoke"))
def e08_figure1() -> dict:
    """E8: the Figure-1 flexibility/differentiation spectrum."""
    rows = figure1_series()
    front = [kind.value for kind in pareto_front()]
    ordered = sorted(rows, key=lambda r: -r["flexibility"])
    monotone = all(
        ordered[i]["differentiation"] <= ordered[i + 1]["differentiation"]
        or ordered[i]["flexibility"] > ordered[i + 1]["flexibility"]
        for i in range(len(ordered) - 1)
    )
    return {
        "claim": (
            "a spectrum of processors trades time-to-market/flexibility "
            "against power/performance/cost differentiation (Figure 1)"
        ),
        "rows": rows,
        "verdict": {
            "pareto_front_size": len(front),
            "all_on_front": len(front) == len(rows),
            "tradeoff_monotone": monotone,
        },
    }


@scenario("E9", tags=("experiments", "technology", "noc", "smoke"))
def e09_wire_delay() -> dict:
    """E9: 6-10 cycles to cross a 50nm die; NoC latencies much larger."""
    rows = []
    for process in nodes_between("180nm", "45nm"):
        model = WireModel.for_node(process.name)
        rows.append(
            {
                "node": process.name,
                "ps_per_mm": round(model.repeated_ps_per_mm, 1),
                "cross_chip_ps": round(model.cross_chip_ps),
                "clock_ghz": process.clock_ghz,
                "cross_chip_cycles": round(model.cross_chip_cycles, 2),
                "noc_8hop_cycles": round(model.noc_hop_budget(8), 1),
            }
        )
    fifty = WireModel.for_node("50nm")
    return {
        "claim": (
            "in 50nm technologies the intra-chip propagation delay will "
            "be between six and ten clock cycles; a complex NoC could "
            "exhibit latencies many times larger"
        ),
        "rows": rows,
        "verdict": {
            "cycles_at_50nm": round(fifty.cross_chip_cycles, 2),
            "in_6_10_band": 6.0 <= fifty.cross_chip_cycles <= 10.0,
            "noc_many_times_larger": fifty.noc_hop_budget(8)
            > 2.0 * fifty.cross_chip_cycles,
        },
    }


@scenario(
    "E10",
    tags=("experiments", "noc", "perf"),
    params={"terminals": 16, "loads": (0.05, 0.15, 0.3, 0.5),
            "duration": 4000.0, "mode": "flow"},
)
def e10_noc_topologies(
    terminals: int = 16,
    loads: tuple = (0.05, 0.15, 0.3, 0.5),
    duration: float = 4000.0,
    mode: str = "flow",
) -> dict:
    """E10: characterize bus/ring/tree/mesh/torus/crossbar/fat-tree.

    Runs in the batched flow-level NoC mode by default (the analytic
    fast path, validated against DES by ``tests/noc/test_flow.py``);
    override with ``spec.with_params(mode="des")`` for the
    packet-granular event simulation.
    """
    builders = [bus, ring, tree, mesh, torus, fat_tree, crossbar]
    rows = []
    for build in builders:
        topology = build(terminals)
        for load in loads:
            metrics = simulate_traffic(
                topology,
                TrafficPattern.UNIFORM,
                load,
                duration=duration,
                warmup=duration / 4,
                mode=mode,
            )
            rows.append(metrics.as_row())
    by_topology: Dict[str, List[dict]] = {}
    for row in rows:
        by_topology.setdefault(row["topology"], []).append(row)
    low_load = loads[0]

    def lat(name_prefix: str) -> float:
        for row in rows:
            if row["topology"].startswith(name_prefix) and row["offered"] == low_load:
                return row["avg_latency"]
        return float("nan")

    bus_saturates_first = all(
        row["saturated"]
        for row in by_topology[f"bus-{terminals}"]
        if row["offered"] >= 0.15
    )
    return {
        "claim": (
            "much remaining work to characterize topologies - bus, "
            "ring, tree to full-crossbar - for different application "
            "domains; buses do not scale"
        ),
        "rows": rows,
        "verdict": {
            "bus_saturates_first": bus_saturates_first,
            "crossbar_lowest_latency": lat("crossbar") <= lat("mesh")
            and lat("crossbar") <= lat("ring"),
            "crossbar_highest_cost": crossbar(terminals).wiring_cost()
            == max(b(terminals).wiring_cost() for b in builders),
        },
    }


@scenario(
    "E11",
    tags=("experiments", "processors", "smoke"),
    params={"thread_counts": (1, 2, 4, 8, 16),
            "latencies": (10, 50, 100, 200), "compute_cycles": 20.0},
)
def e11_multithreading(
    thread_counts: tuple = (1, 2, 4, 8, 16),
    latencies: tuple = (10, 50, 100, 200),
    compute_cycles: float = 20.0,
) -> dict:
    """E11: HW multithreading hides interconnect latency."""
    rows = []
    for latency in latencies:
        for threads in thread_counts:
            result = run_latency_hiding_experiment(
                threads, compute_cycles, latency, duration=20_000.0
            )
            rows.append(
                {
                    "latency": latency,
                    "threads": threads,
                    "utilization": round(result["utilization"], 3),
                    "ideal": round(result["ideal"], 3),
                }
            )
    at_100 = {
        row["threads"]: row["utilization"]
        for row in rows
        if row["latency"] == 100
    }
    return {
        "claim": (
            "multithreading lets the processor execute other streams "
            "while a thread blocks on a high-latency operation; "
            "hardware swaps threads in one cycle"
        ),
        "rows": rows,
        "verdict": {
            "util_1_thread_at_100cyc": at_100[min(at_100)],
            "util_max_threads_at_100cyc": at_100[max(at_100)],
            "recovers_90pct": at_100[max(at_100)] >= 0.90,
            "matches_analytic_bound": all(
                abs(row["utilization"] - min(row["ideal"],
                    compute_cycles / (compute_cycles + 1.0))) < 0.08
                for row in rows
            ),
        },
    }


@scenario(
    "E12",
    tags=("experiments", "economics", "efpga", "smoke"),
    params={"shares": (0.0, 0.01, 0.03, 0.05, 0.10, 0.20, 0.30)},
)
def e12_efpga_share(shares: tuple = (0.0, 0.01, 0.03, 0.05, 0.10, 0.20, 0.30)) -> dict:
    """E12: the 10x eFPGA penalty restricts it to <5% of functionality."""
    rows = []
    for share in shares:
        result = efpga_partition_cost("130nm", total_gates=10e6,
                                      efpga_function_share=share)
        rows.append(
            {
                "function_share": share,
                "cost_overhead": round(result["overhead_ratio"], 3),
                "area_share_efpga": round(result["area_share_efpga"], 3),
            }
        )
    at_5pct = next(r for r in rows if r["function_share"] == 0.05)
    at_30pct = next(r for r in rows if r["function_share"] == 0.30)
    return {
        "claim": (
            "eFPGAs complement processors only with limited scope "
            "(<5% of IC functionality); the 10X cost and power penalty "
            "restricts further use"
        ),
        "rows": rows,
        "verdict": {
            "overhead_at_5pct_function": at_5pct["cost_overhead"],
            "overhead_at_30pct_function": at_30pct["cost_overhead"],
            "acceptable_below_5pct": at_5pct["cost_overhead"] <= 1.5,
            "prohibitive_at_30pct": at_30pct["cost_overhead"] >= 2.5,
        },
    }


@scenario("E13", tags=("experiments", "platform", "smoke"))
def e13_fppa_composition() -> dict:
    """E13: the Figure-2 FPPA platform instance."""
    rows = []
    for pes, threads in ((6, 4), (16, 8), (32, 8), (64, 4)):
        spec = stepnp_spec(num_pes=pes, threads=threads)
        rows.append(spec.summary())
    large = stepnp_spec(num_pes=16, threads=8)
    return {
        "claim": (
            "Figure 2: a domain-specific flexible architecture platform "
            "with configurable processors, a network-on-chip, "
            "reconfigurable HW, standard HW and communication I/Os; "
            "platforms include ten to hundreds of processors"
        ),
        "rows": rows,
        "verdict": {
            "has_all_component_classes": bool(
                large.pes and large.memories and large.hw_ips
                and large.ios and large.efpga_luts > 0
            ),
            "scales_to_64_pes": rows[-1]["processors"] == 64,
        },
    }


@scenario(
    "E14",
    tags=("experiments", "apps", "noc", "perf"),
    params={"thread_counts": (1, 2, 4, 8), "packets": 1200,
            "extra_table_latency": 100.0},
    # single-thread failing to hold line rate is the negative control
    expected_false=("line_rate_without_mt",),
)
def e14_ipv4_stepnp(
    thread_counts: tuple = (1, 2, 4, 8),
    packets: int = 1200,
    extra_table_latency: float = 100.0,
) -> dict:
    """E14: IPv4 at 10 Gbit/s on StepNP with >100-cycle latencies."""
    rows = []
    for threads in thread_counts:
        result = run_ipv4_on_stepnp(
            num_pes=16,
            threads_per_pe=threads,
            packets=packets,
            extra_table_latency=extra_table_latency,
        )
        rows.append(result.as_row())
    best = rows[-1]
    single = rows[0]
    return {
        "claim": (
            "near 100% utilization of the embedded processors and "
            "threads, even in presence of NoC interconnect latencies of "
            "over 100 cycles, while processing worst-case traffic at a "
            "10 Gbit line rate"
        ),
        "rows": rows,
        "verdict": {
            "single_thread_utilization": single["utilization"],
            "multithreaded_utilization": best["utilization"],
            "line_rate_with_mt": best["line_rate"],
            "line_rate_without_mt": single["line_rate"],
            "near_full_utilization": best["utilization"] >= 0.90,
        },
    }


@scenario(
    "E15",
    tags=("experiments", "mapping", "perf"),
    params={"tasks": 60, "num_pes": 8, "seed": 3},
)
def e15_mapping(tasks: int = 60, num_pes: int = 8, seed: int = 3) -> dict:
    """E15: automated mapping beats naive placement."""
    graph = layered_random_graph(tasks, layers=6, seed=seed)
    platform = make_platform_model(num_pes, "mesh", dsp_fraction=0.25)
    evaluator = MappingEvaluator(graph, platform)
    rows = []
    makespans = {}
    for name in sorted(MAPPERS):
        mapping = run_mapper(name, graph, platform)
        cost = evaluator.evaluate(mapping, mapper_name=name)
        rows.append(cost.as_row())
        makespans[name] = cost.makespan_cycles
    annealed = anneal_map(graph, platform, iterations=1500, evaluator=evaluator)
    cost = evaluator.evaluate(annealed, mapper_name="anneal")
    rows.append(cost.as_row())
    makespans["anneal"] = cost.makespan_cycles
    return {
        "claim": (
            "tools are urgently needed to explore the mapping process "
            "and automate optimization; DSOC mapping enables rapid "
            "exploration and optimization"
        ),
        "rows": rows,
        "verdict": {
            "random_makespan": round(makespans["random"], 1),
            "best_auto_makespan": round(
                min(makespans["comm_aware"], makespans["anneal"]), 1
            ),
            "speedup_vs_random": round(
                makespans["random"]
                / min(makespans["comm_aware"], makespans["anneal"]),
                2,
            ),
            "auto_beats_naive": min(
                makespans["comm_aware"], makespans["anneal"]
            )
            < min(makespans["random"], makespans["round_robin"]),
        },
    }


@scenario("E16", tags=("experiments", "technology", "power", "smoke"))
def e16_low_power() -> dict:
    """E16: multi-Vt, back-bias and voltage-scaling levers."""
    process = node("90nm")
    model = PowerModel.for_block(process, transistors=50e6)
    vt = multi_vt_optimize(model, critical_fraction=0.2)
    rows = [
        {
            "technique": "multi_vt(80% high-Vt)",
            "metric": "leakage saving",
            "value": round(vt["leakage_saving"], 3),
        }
    ]
    for scale in (1.0, 0.9, 0.8, 0.7):
        dvs = dvs_energy_delay(model, scale)
        rows.append(
            {
                "technique": f"dvs(vdd x{scale})",
                "metric": "energy/delay factors",
                "value": (
                    round(dvs["energy_factor"], 3),
                    round(dvs["delay_factor"], 3),
                ),
            }
        )
    from repro.technology.power import leakage_current_per_um, VtClass

    bias_reduction = leakage_current_per_um(
        process, VtClass.NOMINAL, body_bias_v=0.5
    ) / leakage_current_per_um(process, VtClass.NOMINAL, 0.0)
    rows.append(
        {
            "technique": "back_bias(0.5V)",
            "metric": "leakage ratio",
            "value": round(bias_reduction, 3),
        }
    )
    return {
        "claim": (
            "low-power is a must: on-chip voltage control, back-bias to "
            "master leakage, and multi-Vt transistors"
        ),
        "rows": rows,
        "verdict": {
            "multi_vt_saves_over_half_leakage": vt["leakage_saving"] > 0.5,
            "back_bias_cuts_leakage": bias_reduction < 0.5,
            "dvs_quadratic_energy": abs(
                dvs_energy_delay(model, 0.7)["energy_factor"] - 0.49
            )
            < 1e-9,
        },
    }


@scenario(
    "E17",
    tags=("experiments", "memory", "smoke"),
    params={"working_sets": (0.0625, 0.25, 1.0, 4.0, 16.0, 64.0)},
)
def e17_memory_tradeoff(
    working_sets: tuple = (0.0625, 0.25, 1.0, 4.0, 16.0, 64.0),
) -> dict:
    """E17: eSRAM/eDRAM/eFlash vs external memory tradeoffs."""
    rows = []
    winners = []
    for ws in working_sets:
        for point in architecture_tradeoff(ws):
            rows.append(
                {
                    "working_set_mb": ws,
                    "architecture": point.architecture,
                    "latency": round(point.avg_latency_cycles, 1),
                    "power_mw": round(point.total_power_mw, 1),
                    "area_mm2": round(point.on_chip_area_mm2, 2),
                }
            )
        winners.append((ws, best_architecture(ws).architecture))
    return {
        "claim": (
            "the two main platform design issues are power optimization "
            "and embedded memory architecture tradeoffs (eSRAM, eDRAM, "
            "eFlash vs external memories)"
        ),
        "rows": rows,
        "verdict": {
            "small_ws_winner": winners[0][1],
            "large_ws_winner": winners[-1][1],
            "esram_wins_small": winners[0][1] == "all_esram",
            "external_wins_large": "external" in winners[-1][1],
            "regime_changes": len(dict.fromkeys(w for _ws, w in winners)),
        },
    }


@scenario(
    "E18",
    tags=("experiments", "apps", "perf"),
    params={"table_sizes": (1_000, 10_000, 100_000)},
)
def e18_npse_vs_cam(table_sizes: tuple = (1_000, 10_000, 100_000)) -> dict:
    """E18: SRAM-trie search engine vs CAM on memory and power."""
    rows = []
    for size in table_sizes:
        table = random_prefix_table(size, seed=5)
        trie = build_trie(table)
        cam = build_cam(table)
        stats = trie.stats()
        # Average accesses over a sample of lookups (batched).
        sample = [entry[0] | 0x123 for entry in table[: min(500, size)]]
        accesses = [acc for _hop, acc in trie.lookup_many(sample)]
        avg_accesses = sum(accesses) / len(accesses)
        trie_energy = avg_accesses * SRAM_READ_PJ
        cam_model = cam.model()
        rows.append(
            {
                "prefixes": size,
                "trie_sram_kb": round(stats.sram_kbytes, 1),
                "trie_lookup_pj": round(trie_energy, 1),
                "cam_bits_kb": round(cam_model.area_sram_equivalent_bits / 8 / 1024, 1),
                "cam_lookup_pj": round(cam_model.search_energy_pj, 1),
                "energy_ratio_cam_over_trie": round(
                    cam_model.search_energy_pj / trie_energy, 1
                ),
            }
        )
    large = rows[-1]
    return {
        "claim": (
            "an SRAM-based search engine is more memory and "
            "power-efficient than CAM-based look-up methods"
        ),
        "rows": rows,
        "verdict": {
            "cam_over_trie_energy_at_100k": large["energy_ratio_cam_over_trie"],
            "trie_wins_energy_at_scale": large["energy_ratio_cam_over_trie"] > 1.0,
        },
    }


#: Back-compat view for the benchmark harness and the EXPERIMENTS.md
#: generator, derived from the engine registry (the registrations the
#: @scenario decorators above performed).
ALL_EXPERIMENTS: Dict[str, Callable[[], dict]] = {
    entry.name: entry.fn for entry in registered(__name__)
}
