"""Text-table rendering for experiment results."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def format_table(rows: Sequence[dict], max_width: int = 120) -> str:
    """Render a list of flat dicts as an aligned text table.

    Columns come from the union of keys in first-seen order; values are
    stringified with ``repr``-free formatting.
    """
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [
        [_cell(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
        for r in rendered
    ]
    return "\n".join([header, separator, *body])


def _cell(value) -> str:
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            return str(value)
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return "/".join(_cell(v) for v in value)
    return str(value)


def render_experiment(experiment_id: str, result: dict) -> str:
    """Render one experiment result (claim, table, verdict) as text."""
    lines = [
        f"=== {experiment_id} ===",
        f"claim: {result['claim']}",
        "",
        format_table(result["rows"]),
        "",
        "verdict:",
    ]
    for key, value in result["verdict"].items():
        lines.append(f"  {key}: {_cell(value)}")
    return "\n".join(lines)


def render_all(results: dict) -> str:
    """Render a dict of {experiment_id: result}."""
    return "\n\n".join(
        render_experiment(eid, result) for eid, result in results.items()
    )
