"""The nine ablation studies (A1-A9) as registered scenarios.

Each ``aNN_*`` function was extracted from its former standalone
``benchmarks/bench_aNN_*.py`` script; the bench files are now thin
shims over this module.  Every ablation follows the same contract as
the E-experiments: a dict with ``claim``, ``rows`` and a boolean-rich
``verdict`` (the assertions the benches used to make inline).
"""

from __future__ import annotations

import time
from typing import Dict

from repro.engine.registry import scenario


# ---------------------------------------------------------------------------
# A1: NoC router pipeline depth
# ---------------------------------------------------------------------------

def sweep_router_delay(delays=(1.0, 2.0, 4.0, 8.0), mode="flow"):
    """Deeper router pipelines raise zero-load latency, not throughput."""
    from repro.noc.metrics import simulate_traffic
    from repro.noc.topology import mesh
    from repro.noc.traffic import TrafficPattern

    rows = []
    for delay in delays:
        metrics = simulate_traffic(
            mesh(16),
            TrafficPattern.UNIFORM,
            offered_load=0.2,
            duration=4000.0,
            warmup=1000.0,
            router_delay=delay,
            mode=mode,
        )
        rows.append(
            {
                "router_delay": delay,
                "avg_latency": round(metrics.avg_latency, 2),
                "accepted": round(metrics.accepted_load, 3),
                "saturated": metrics.saturated,
            }
        )
    return rows


@scenario(
    "A1",
    tags=("ablation", "noc"),
    params={"delays": (1.0, 2.0, 4.0, 8.0), "mode": "flow"},
)
def a01_router_ablation(delays=(1.0, 2.0, 4.0, 8.0), mode="flow") -> dict:
    """Ablation A1: NoC router pipeline depth."""
    rows = sweep_router_delay(tuple(delays), mode=mode)
    latencies = [row["avg_latency"] for row in rows]
    accepted = [row["accepted"] for row in rows]
    return {
        "claim": (
            "deeper router pipelines raise zero-load latency linearly "
            "in hop count but leave saturation throughput unchanged"
        ),
        "rows": rows,
        "verdict": {
            "latency_rises_with_depth": latencies == sorted(latencies),
            "throughput_unaffected": max(accepted) - min(accepted) < 0.02,
        },
    }


# ---------------------------------------------------------------------------
# A2: hardware vs software thread swap cost
# ---------------------------------------------------------------------------

def sweep_swap_cost(costs=(0.0, 1.0, 10.0, 50.0, 200.0)):
    """Utilization vs context-switch cost at 100-cycle remote latency."""
    from repro.processors.multithread import run_latency_hiding_experiment

    rows = []
    for cost in costs:
        result = run_latency_hiding_experiment(
            num_threads=8,
            compute_cycles=20.0,
            remote_latency=100.0,
            duration=20_000.0,
            swap_cycles=cost,
        )
        rows.append(
            {
                "swap_cycles": cost,
                "utilization": round(result["utilization"], 3),
                "occupancy": round(result["occupancy"], 3),
                "throughput": round(result["throughput"], 4),
            }
        )
    return rows


@scenario(
    "A2",
    tags=("ablation", "processors", "smoke"),
    params={"costs": (0.0, 1.0, 10.0, 50.0, 200.0)},
)
def a02_thread_swap_ablation(costs=(0.0, 1.0, 10.0, 50.0, 200.0)) -> dict:
    """Ablation A2: hardware vs software thread swap cost."""
    rows = sweep_swap_cost(tuple(costs))
    utils = [row["utilization"] for row in rows]
    # anchor on the hardware-class (<= 1 cycle) and software-class
    # (>= 100 cycles) swap costs actually present in the sweep, so
    # spec.with_params(costs=...) overrides keep a meaningful verdict
    hw = [u for r, u in zip(rows, utils) if r["swap_cycles"] <= 1.0]
    sw = [u for r, u in zip(rows, utils) if r["swap_cycles"] >= 100.0]
    return {
        "claim": (
            "hardware multithreading swaps threads in one cycle; "
            "OS-style switching collapses utilization"
        ),
        "rows": rows,
        "verdict": {
            "utilization_falls_with_cost": utils == sorted(utils, reverse=True),
            "hw_swap_over_90pct": bool(hw) and min(hw) > 0.9,
            "sw_switch_under_40pct": bool(sw) and max(sw) < 0.4,
        },
    }


# ---------------------------------------------------------------------------
# A3: LPM trie stride width
# ---------------------------------------------------------------------------

def sweep_stride(strides=(2, 4, 8), prefixes=20_000):
    """SRAM footprint vs lookup accesses over trie stride widths."""
    from repro.apps.lpm import LpmTrie
    from repro.apps.trafficgen import random_prefix_table

    table = random_prefix_table(prefixes, seed=5)
    probes = [(p | 0x0101) & 0xFFFFFFFF for p, _l, _h in table[:400]]
    rows = []
    for stride in strides:
        trie = LpmTrie(stride=stride)
        trie.insert_many(table)
        stats = trie.stats()
        accesses = [acc for _hop, acc in trie.lookup_many(probes)]
        rows.append(
            {
                "stride": stride,
                "sram_kb": round(stats.sram_kbytes, 1),
                "avg_accesses": round(sum(accesses) / len(accesses), 2),
                "worst_accesses": stats.worst_case_accesses,
            }
        )
    return rows


@scenario(
    "A3",
    tags=("ablation", "apps", "perf"),
    params={"strides": (2, 4, 8), "prefixes": 20_000},
)
def a03_lpm_stride_ablation(strides=(2, 4, 8), prefixes=20_000) -> dict:
    """Ablation A3: LPM trie stride width."""
    rows = sweep_stride(tuple(strides), prefixes)
    accesses = [row["avg_accesses"] for row in rows]
    srams = [row["sram_kb"] for row in rows]
    return {
        "claim": (
            "wider strides mean fewer memory reads per lookup but more "
            "controlled-prefix-expansion SRAM blowup (knee at 4-8 bits)"
        ),
        "rows": rows,
        "verdict": {
            "accesses_fall_with_stride": accesses
            == sorted(accesses, reverse=True),
            "sram_grows_with_stride": srams[-1] > srams[0],
        },
    }


# ---------------------------------------------------------------------------
# A4: mapper quality vs optimization cost
# ---------------------------------------------------------------------------

def mapper_cost_quality(tasks=60, num_pes=8, seed=3):
    """Constructive mappers vs annealing at rising iteration budgets."""
    from repro.mapping.anneal import anneal_map
    from repro.mapping.dse import make_platform_model
    from repro.mapping.evaluator import MappingEvaluator
    from repro.mapping.mapper import MAPPERS, run_mapper
    from repro.mapping.taskgraph import layered_random_graph

    graph = layered_random_graph(tasks, layers=6, seed=seed)
    platform = make_platform_model(num_pes, "mesh", dsp_fraction=0.25)
    evaluator = MappingEvaluator(graph, platform)
    rows = []
    for name in sorted(MAPPERS):
        start = time.perf_counter()
        mapping = run_mapper(name, graph, platform)
        elapsed = time.perf_counter() - start
        cost = evaluator.evaluate(mapping)
        rows.append(
            {
                "mapper": name,
                "makespan": round(cost.makespan_cycles, 1),
                "map_time_ms": round(elapsed * 1000, 2),
            }
        )
    for iterations in (200, 1000, 3000):
        start = time.perf_counter()
        mapping = anneal_map(
            graph, platform, iterations=iterations, evaluator=evaluator
        )
        elapsed = time.perf_counter() - start
        cost = evaluator.evaluate(mapping)
        rows.append(
            {
                "mapper": f"anneal-{iterations}",
                "makespan": round(cost.makespan_cycles, 1),
                "map_time_ms": round(elapsed * 1000, 2),
            }
        )
    return rows


@scenario(
    "A4",
    tags=("ablation", "mapping", "perf"),
    params={"tasks": 60, "num_pes": 8, "seed": 3},
)
def a04_mapper_ablation(tasks=60, num_pes=8, seed=3) -> dict:
    """Ablation A4: mapper quality vs optimization cost."""
    rows = mapper_cost_quality(tasks, num_pes, seed)
    by_name = {row["mapper"]: row["makespan"] for row in rows}
    return {
        "claim": (
            "assist and automate optimization where possible: each unit "
            "of optimization time buys makespan"
        ),
        "rows": rows,
        "verdict": {
            "comm_aware_beats_random": by_name["comm_aware"]
            < by_name["random"],
            "anneal_budget_converges": by_name["anneal-3000"]
            <= by_name["anneal-200"] * 1.02,
        },
    }


# ---------------------------------------------------------------------------
# A5: TLM quantum size vs simulation speed and accuracy
# ---------------------------------------------------------------------------

@scenario(
    "A5",
    tags=("ablation", "tlm", "smoke"),
    params={"quanta": (10.0, 100.0, 1000.0, 10_000.0), "transactions": 200},
)
def a05_tlm_quantum(
    quanta=(10.0, 100.0, 1000.0, 10_000.0), transactions=200
) -> dict:
    """Ablation A5: TLM quantum size vs simulation speed and accuracy."""
    from repro.tlm.compare import quantum_sweep

    rows = quantum_sweep(quanta=tuple(quanta), transactions=transactions)
    events = [row["tlm_events"] for row in rows]
    return {
        "claim": (
            "loosely-timed modeling with larger quanta costs fewer "
            "kernel events while back-annotated timing stays accurate"
        ),
        "rows": rows,
        "verdict": {
            "bigger_quantum_fewer_events": events
            == sorted(events, reverse=True),
            "event_ratio_over_5x": all(r["event_ratio"] > 5 for r in rows),
            "timing_error_under_25pct": all(
                r["timing_error"] < 0.25 for r in rows
            ),
        },
    }


# ---------------------------------------------------------------------------
# A6: SoC test scheduling vs TAM width
# ---------------------------------------------------------------------------

def make_soc_cores(num_pes=12):
    from repro.dft.wrapper import CoreTestSpec

    cores = [
        CoreTestSpec(
            name=f"pe{i}", inputs=64, outputs=64, scan_flops=8_000,
            internal_chains=4, patterns=800, test_power_mw=40.0,
        )
        for i in range(num_pes)
    ]
    cores.append(
        CoreTestSpec(
            name="noc", inputs=256, outputs=256, scan_flops=20_000,
            internal_chains=8, patterns=1200, test_power_mw=80.0,
        )
    )
    return cores


def sweep_tam_width(widths=(4, 8, 16, 32)):
    """Test time for a 12-core SoC as the TAM widens."""
    from repro.dft.schedule import schedule_tests, serial_test_cycles

    cores = make_soc_cores()
    rows = []
    for width in widths:
        schedule = schedule_tests(cores, tam_width=width)
        rows.append(
            {
                "tam_width": width,
                "schedule_cycles": schedule.total_cycles,
                "serial_cycles": serial_test_cycles(cores, width),
                "speedup_vs_serial": round(
                    serial_test_cycles(cores, width) / schedule.total_cycles, 2
                ),
            }
        )
    return rows


@scenario(
    "A6",
    tags=("ablation", "dft", "smoke"),
    params={"widths": (4, 8, 16, 32)},
)
def a06_dft_schedule(widths=(4, 8, 16, 32)) -> dict:
    """Ablation A6: SoC test scheduling vs TAM width."""
    rows = sweep_tam_width(tuple(widths))
    times = [row["schedule_cycles"] for row in rows]
    return {
        "claim": (
            "DFT has to evolve together with SoC complexity: wider test "
            "access mechanisms cut SoC test time vs serial core tests"
        ),
        "rows": rows,
        "verdict": {
            "wider_tam_faster": times == sorted(times, reverse=True),
            "parallel_speedup_over_1_5x": rows[-1]["speedup_vs_serial"] > 1.5,
        },
    }


# ---------------------------------------------------------------------------
# A7: hardware vs software OS scheduling cost
# ---------------------------------------------------------------------------

def _rtos_task_set():
    from repro.rtos.schedulability import PeriodicTaskSpec

    return [
        PeriodicTaskSpec("isr", period=80, wcet=10),
        PeriodicTaskSpec("codec", period=200, wcet=70),
        PeriodicTaskSpec("control", period=500, wcet=120),
    ]


def sweep_switch_cost(costs=(0.0, 1.0, 5.0, 15.0, 30.0)):
    """Response-time analysis under rising context-switch cost."""
    from repro.rtos.schedulability import (
        max_context_switch_cost,
        response_time_analysis,
        schedulable,
    )

    task_set = _rtos_task_set()
    rows = []
    for cost in costs:
        responses = response_time_analysis(task_set, context_switch=cost)
        rows.append(
            {
                "switch_cycles": cost,
                "r_isr": responses["isr"],
                "r_codec": responses["codec"],
                "r_control": responses["control"],
                "schedulable": schedulable(task_set, cost),
            }
        )
    rows.append(
        {
            "switch_cycles": f"limit={max_context_switch_cost(task_set):.1f}",
            "r_isr": "-", "r_codec": "-", "r_control": "-",
            "schedulable": "-",
        }
    )
    return rows


@scenario(
    "A7",
    tags=("ablation", "rtos", "smoke"),
    params={"costs": (0.0, 1.0, 5.0, 15.0, 30.0)},
)
def a07_rtos_switch(costs=(0.0, 1.0, 5.0, 15.0, 30.0)) -> dict:
    """Ablation A7: hardware vs software OS scheduling cost."""
    rows = sweep_switch_cost(tuple(costs))
    # the last row is the analytic limit annotation; judge only the
    # swept costs, anchored on the cheapest/costliest actually present
    swept = [r for r in rows if not isinstance(r["switch_cycles"], str)]
    hw = [r for r in swept if r["switch_cycles"] <= 1.0]
    return {
        "claim": (
            "part of the O/S services will need to be performed in "
            "hardware: the set schedules under a 1-cycle scheduler and "
            "becomes infeasible under software-kernel costs"
        ),
        "rows": rows,
        "verdict": {
            "hw_1cycle_schedulable": bool(hw)
            and all(r["schedulable"] for r in hw),
            "sw_kernel_infeasible": swept[-1]["schedulable"] is False,
        },
    }


# ---------------------------------------------------------------------------
# A8: FlexWare retargeting across the processor spectrum
# ---------------------------------------------------------------------------

def retarget_fir(taps=32):
    """One FIR source costed on RISC, DSP and ASIP, plus an ISS check."""
    from repro.flexware.codegen import compile_to_risc
    from repro.flexware.ir import fir_ir
    from repro.flexware.targets import retargeting_report

    program = fir_ir(taps=taps)
    rows = retargeting_report(program)
    memory = {i: i + 1 for i in range(taps)}
    memory.update({0x200 + i: 2 for i in range(taps)})
    sample_base, coeff_base = program.inputs
    expected = program.evaluate(
        {sample_base: 0, coeff_base: 0x200}, memory=dict(memory)
    )
    compiled = compile_to_risc(program)
    result, cpu = compiled.run(
        {sample_base: 0, coeff_base: 0x200}, memory=memory
    )
    for row in rows:
        row["iss_verified"] = row["target"] != "gp_risc" or result == expected
        row["iss_cycles"] = cpu.cycles if row["target"] == "gp_risc" else "-"
    return rows, result == expected


@scenario(
    "A8",
    tags=("ablation", "flexware", "smoke"),
    params={"taps": 32},
)
def a08_flexware_retarget(taps=32) -> dict:
    """Ablation A8: FlexWare retargeting across the processor spectrum."""
    rows, iss_matches = retarget_fir(taps)
    order = [row["target"] for row in rows]
    return {
        "claim": (
            "one source program retargets across the Figure-1 spectrum; "
            "differentiation derives bottom-up from code"
        ),
        "rows": rows,
        "verdict": {
            "order_asip_dsp_risc": order == ["asip", "dsp", "gp_risc"],
            "iss_matches_reference": iss_matches,
        },
    }


# ---------------------------------------------------------------------------
# A9: the 1-GOPS reconfigurable signal-processing IC
# ---------------------------------------------------------------------------

_EXTENDED_KERNEL = """
    li r1, 0x10203040
    li r2, 0x0F213F42
    li r4, 100
loop:
    xop0 r3, r1, r2
    xop0 r5, r1, r2
    xop0 r6, r1, r2
    xop0 r7, r1, r2
    subi r4, r4, 1
    bne r4, r0, loop
    halt
"""

# The same four SADs in base ISA (one byte lane shown x4 via shifts).
_BASE_KERNEL_HEADER = """
    li r1, 0x10203040
    li r2, 0x0F213F42
    li r4, 100
loop:
"""
_BASE_SAD = "".join(
    f"""
    shri r5, r1, {shift}
    andi r5, r5, 0xFF
    shri r6, r2, {shift}
    andi r6, r6, 0xFF
    sub r7, r5, r6
    blt r7, r0, neg{tag}_{shift}
    jmp pos{tag}_{shift}
neg{tag}_{shift}:
    sub r7, r0, r7
pos{tag}_{shift}:
    add r3, r3, r7
"""
    for tag in range(4)
    for shift in (0, 8, 16, 24)
)
_BASE_KERNEL = (
    _BASE_KERNEL_HEADER
    + "    li r3, 0\n"
    + _BASE_SAD
    + """
    subi r4, r4, 1
    bne r4, r0, loop
    halt
"""
)


def gops_comparison():
    """SAD kernel with and without the eFPGA instruction extension."""
    from repro.processors.reconfigurable import (
        STANDARD_EXTENSIONS,
        gops_estimate,
        run_extended,
    )

    extended = run_extended(_EXTENDED_KERNEL,
                            {0: STANDARD_EXTENSIONS["sad8"]})
    base = run_extended(_BASE_KERNEL, {})
    return [
        {
            "configuration": "risc+efpga(sad8)",
            "cycles": extended.cycles,
            "gops@200MHz": round(gops_estimate(extended, 200.0), 2),
        },
        {
            "configuration": "base risc",
            "cycles": base.cycles,
            "gops@200MHz": round(gops_estimate(base, 200.0), 2),
        },
    ]


@scenario("A9", tags=("ablation", "processors", "efpga", "smoke"))
def a09_reconfig_gops() -> dict:
    """Ablation A9: the 1-GOPS reconfigurable signal-processing IC."""
    rows = gops_comparison()
    by_config = {row["configuration"]: row for row in rows}
    return {
        "claim": (
            "a configurable RISC core plus an eFPGA fabric implementing "
            "application-specific instruction extensions reaches the "
            "1-GOPS class at a 200 MHz clock"
        ),
        "rows": rows,
        "verdict": {
            "extended_near_1_gops": by_config["risc+efpga(sad8)"][
                "gops@200MHz"
            ]
            > 0.9,
            "base_under_0_3_gops": by_config["base risc"]["gops@200MHz"]
            < 0.3,
            "extension_speedup_over_5x": by_config["base risc"]["cycles"]
            > 5 * by_config["risc+efpga(sad8)"]["cycles"],
        },
    }


#: Back-compat view over the engine registry, mirroring ALL_EXPERIMENTS.
from repro.engine.registry import registered as _registered  # noqa: E402

ALL_ABLATIONS: Dict[str, object] = {
    entry.name: entry.fn for entry in _registered(__name__)
}
