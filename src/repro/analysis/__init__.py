"""Experiment regeneration.

One function per experiment (E1-E18 in DESIGN.md), each returning the
rows/series the paper's claim corresponds to.  The benchmark harness in
``benchmarks/`` calls these; ``repro.analysis.report`` renders them as
text tables.
"""

from repro.analysis.experiments import (
    e01_mask_nre,
    e02_mask_breakeven,
    e03_design_breakeven,
    e04_risc_equivalents,
    e05_alternatives,
    e06_productivity,
    e07_hw_sw_growth,
    e08_figure1,
    e09_wire_delay,
    e10_noc_topologies,
    e11_multithreading,
    e12_efpga_share,
    e13_fppa_composition,
    e14_ipv4_stepnp,
    e15_mapping,
    e16_low_power,
    e17_memory_tradeoff,
    e18_npse_vs_cam,
    ALL_EXPERIMENTS,
)
from repro.analysis.report import format_table, render_experiment

__all__ = [
    "ALL_EXPERIMENTS",
    "e01_mask_nre",
    "e02_mask_breakeven",
    "e03_design_breakeven",
    "e04_risc_equivalents",
    "e05_alternatives",
    "e06_productivity",
    "e07_hw_sw_growth",
    "e08_figure1",
    "e09_wire_delay",
    "e10_noc_topologies",
    "e11_multithreading",
    "e12_efpga_share",
    "e13_fppa_composition",
    "e14_ipv4_stepnp",
    "e15_mapping",
    "e16_low_power",
    "e17_memory_tradeoff",
    "e18_npse_vs_cam",
    "format_table",
    "render_experiment",
]
