"""Entry point: ``python -m repro`` drives the scenario engine CLI."""

from repro.engine.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
