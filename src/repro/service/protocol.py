"""Versioned JSON-lines wire protocol for the scenario service.

One frame is one newline-terminated JSON object — the framing the
related actor systems (message-broker SCADA, DSOC's own message-over-
NoC transport) converge on: trivially debuggable with ``nc``, trivially
streamable, and resynchronizable after a bad frame.  Every message
carries the protocol version (``"v"``) and a ``"type"``; requests flow
client → server (``submit``, ``status``, ``stream``, ``cancel``,
``shutdown``, ``ping``) and responses flow back (``ack``, ``result``,
``done``, ``status-reply``, ``error``, ``pong``, ``bye``).

Cluster workers speak the same framing in the other direction: a
worker opens a connection to the coordinator and sends ``register``,
``heartbeat``, ``lease-result`` and (when draining gracefully)
``release`` frames; the coordinator pushes ``registered`` and
``lease`` frames back down the same connection.  A federation front
additionally accepts ``pool-register`` / ``pool-health`` /
``pool-rehome`` admin frames for attaching, inspecting, and draining
the peer coordinator pools it shards sweeps across.
When a listener is started with a shared-secret auth token, every
inbound request frame must carry a matching ``"token"`` field;
:func:`check_token` is the (timing-safe) gate.

Everything here is pure bytes/dict transformation — no sockets — so
the framing edge cases (partial frames, oversized payloads, garbage
lines, unknown types, missing tokens) are unit-testable without a
server.
"""

from __future__ import annotations

import hmac
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

PROTOCOL_VERSION = 1

#: hard ceiling on one frame; a result frame for the biggest sweep row
#: set is ~1 MiB, so 8 MiB leaves generous headroom while still
#: rejecting a runaway (or hostile) payload before it is buffered.
MAX_FRAME_BYTES = 8 * 1024 * 1024

REQUEST_TYPES = frozenset(
    {"submit", "status", "stream", "cancel", "shutdown", "ping", "watch"}
)
#: frames a cluster worker sends its coordinator (same direction as
#: client requests: inbound on the listener).
WORKER_REQUEST_TYPES = frozenset(
    {"register", "heartbeat", "lease-result", "release"}
)
#: federation-admin frames a client sends a federation front
#: (:mod:`repro.cluster.federation`): attach a backing pool, read the
#: per-pool circuit-breaker health, or force a pool's uncompleted
#: specs back onto the federation queue.
FED_REQUEST_TYPES = frozenset(
    {"pool-register", "pool-health", "pool-rehome"}
)
RESPONSE_TYPES = frozenset(
    {"ack", "result", "done", "status-reply", "error", "pong", "bye",
     "registered", "lease", "pool-health-reply", "watch-ack", "event"}
)


class ProtocolError(Exception):
    """A malformed frame or message.

    ``fatal`` marks errors the connection cannot recover from (an
    oversized frame may still be in flight, so the stream position is
    lost); non-fatal errors consume exactly one line and the decoder
    resynchronizes on the next newline.
    """

    def __init__(self, code: str, message: str, fatal: bool = False):
        super().__init__(message)
        self.code = code
        self.fatal = fatal


# -- frame codec ------------------------------------------------------------


def encode_frame(message: Mapping[str, Any]) -> bytes:
    """Serialize one message to a newline-terminated JSON frame."""
    data = json.dumps(dict(message), separators=(",", ":"),
                      default=str).encode()
    if len(data) + 1 > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame-too-large",
            f"outgoing frame of {len(data)} bytes exceeds "
            f"{MAX_FRAME_BYTES}",
            fatal=True,
        )
    return data + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one frame line into a message dict (version-checked)."""
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad-json", f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            "bad-frame",
            f"frame must be a JSON object, got {type(message).__name__}",
        )
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "version-mismatch",
            f"protocol version {version!r} unsupported "
            f"(speaking v{PROTOCOL_VERSION})",
        )
    if not isinstance(message.get("type"), str):
        raise ProtocolError("bad-frame", "frame is missing a 'type' string")
    return message


class FrameDecoder:
    """Incremental newline-frame decoder over an arbitrary byte stream.

    Feed raw chunks with :meth:`feed`; pull complete messages with
    :meth:`next_frame`, which returns ``None`` when no full line is
    buffered yet.  A bad line raises :class:`ProtocolError` *after*
    consuming that line, so the caller can report it and keep decoding.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        if (
            len(self._buffer) > self.max_frame_bytes
            and b"\n" not in self._buffer
        ):
            self._buffer.clear()
            raise ProtocolError(
                "frame-too-large",
                f"frame exceeds {self.max_frame_bytes} bytes "
                "without a terminator",
                fatal=True,
            )

    def next_frame(self) -> Optional[Dict[str, Any]]:
        newline = self._buffer.find(b"\n")
        if newline < 0:
            return None
        line = bytes(self._buffer[:newline])
        del self._buffer[: newline + 1]
        if len(line) > self.max_frame_bytes:
            raise ProtocolError(
                "frame-too-large",
                f"frame of {len(line)} bytes exceeds "
                f"{self.max_frame_bytes}",
                fatal=True,
            )
        if not line.strip():
            return self.next_frame()  # tolerate blank keep-alive lines
        return decode_frame(line)

    def pending_bytes(self) -> int:
        return len(self._buffer)


# -- message constructors ---------------------------------------------------


def _message(type_: str, **fields: Any) -> Dict[str, Any]:
    message = {"v": PROTOCOL_VERSION, "type": type_}
    message.update({k: v for k, v in fields.items() if v is not None})
    return message


def make_submit(
    specs: Sequence[Mapping[str, Any]],
    *,
    stream: bool = True,
    sweep: Optional[Mapping[str, Sequence[Any]]] = None,
    shards: Optional[int] = None,
    shard: Optional[Sequence[int]] = None,
    options: Optional[Mapping[str, Any]] = None,
    trace: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """A job submission: specs (+ optional sweep expansion / sharding).

    ``sweep`` fans every spec out over the cross product of the given
    param axes (server-side ``spec.with_params``); ``shards=N`` makes
    the server run the expansion as N deterministic shard batches;
    ``shard=(i, N)`` keeps only shard i of the expansion (the offline
    ``--shard i/N`` semantics, applied server-side).

    ``trace`` (``{"id": trace-id, "span": parent-span-id}``) threads
    an existing trace through the submit so the receiving server's
    job span parents on the caller's — how the federation front links
    a pool-side job back to the front-side assignment.
    """
    return _message(
        "submit",
        specs=[dict(s) for s in specs],
        stream=bool(stream),
        sweep={k: list(v) for k, v in sweep.items()} if sweep else None,
        shards=shards,
        shard=list(shard) if shard is not None else None,
        options=dict(options) if options else None,
        trace=dict(trace) if trace else None,
    )


def make_status(job: Optional[str] = None) -> Dict[str, Any]:
    return _message("status", job=job)


def make_stream(job: str) -> Dict[str, Any]:
    return _message("stream", job=job)


def make_cancel(job: str) -> Dict[str, Any]:
    return _message("cancel", job=job)


def make_shutdown() -> Dict[str, Any]:
    return _message("shutdown")


def make_ping() -> Dict[str, Any]:
    return _message("ping")


def make_ack(job: str, specs: int) -> Dict[str, Any]:
    return _message("ack", job=job, specs=specs)


def make_result(job: str, seq: int, result: Mapping[str, Any]) -> Dict[str, Any]:
    return _message("result", job=job, seq=seq, result=dict(result))


def make_done(
    job: str,
    *,
    total: int,
    executed: int,
    cached: int,
    failed: int,
    cancelled: bool = False,
) -> Dict[str, Any]:
    return _message(
        "done",
        job=job,
        total=total,
        executed=executed,
        cached=cached,
        failed=failed,
        cancelled=cancelled,
    )


def make_status_reply(
    jobs: Mapping[str, Mapping[str, Any]],
    *,
    metrics: Optional[Mapping[str, Any]] = None,
    cluster: Optional[Mapping[str, Any]] = None,
    watchers: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Job states plus the listener's live telemetry.

    ``metrics`` is the process :class:`~repro.telemetry.metrics.
    MetricsRegistry` snapshot; ``cluster`` is the coordinator pool's
    worker/queue status (absent on a plain server); ``watchers`` is
    the watch-hub snapshot (subscriber count + per-subscriber drop
    counters, absent when nobody is watching).  All are omitted when
    None so old clients see exactly the old frame.
    """
    return _message(
        "status-reply",
        jobs={k: dict(v) for k, v in jobs.items()},
        metrics=dict(metrics) if metrics is not None else None,
        cluster=dict(cluster) if cluster is not None else None,
        watchers=dict(watchers) if watchers is not None else None,
    )


def make_error(
    code: str,
    message: str,
    *,
    job: Optional[str] = None,
    detail: Optional[Any] = None,
) -> Dict[str, Any]:
    return _message("error", code=code, message=message, job=job,
                    detail=detail)


def make_pong() -> Dict[str, Any]:
    return _message("pong")


def make_bye() -> Dict[str, Any]:
    return _message("bye")


# -- watch (live telemetry fan-out) -----------------------------------------


def make_watch(
    *,
    kinds: Optional[Sequence[str]] = None,
    job: Optional[str] = None,
    components: Optional[Sequence[str]] = None,
    queue: Optional[int] = None,
    events: bool = True,
    status_interval: Optional[float] = None,
) -> Dict[str, Any]:
    """Subscribe this connection to the server's live event feed.

    ``kinds`` / ``components`` / ``job`` filter which bus events are
    forwarded (all when omitted); ``queue`` caps the per-subscriber
    buffer (server clamps to its own ceiling) — overflow drops the
    *oldest* events and counts them, never blocking the emitter.
    ``events=False`` with a ``status_interval`` turns the watch into a
    push-based status feed: the server sends a ``status-reply`` frame
    at most every ``status_interval`` seconds, and only when
    something changed.
    """
    return _message(
        "watch",
        kinds=[str(k) for k in kinds] if kinds else None,
        job=job or None,
        components=[str(c) for c in components] if components else None,
        queue=int(queue) if queue is not None else None,
        events=bool(events),
        status_interval=(float(status_interval)
                         if status_interval is not None else None),
    )


def make_watch_ack(watch: str, queue: int) -> Dict[str, Any]:
    """Server's reply: the subscription id and the effective queue cap."""
    return _message("watch-ack", watch=str(watch), queue=int(queue))


def make_event(watch: str, event: Mapping[str, Any]) -> Dict[str, Any]:
    """One bus event forwarded to one watch subscription."""
    return _message("event", watch=str(watch), event=dict(event))


# -- cluster worker frames --------------------------------------------------


def make_register(name: str, capacity: int = 1) -> Dict[str, Any]:
    """A worker announcing itself to the coordinator.

    ``capacity`` is the number of leases the worker wants outstanding
    at once (execution itself stays serial per worker; capacity > 1
    only prefetches the next spec while one runs).
    """
    return _message("register", name=name, capacity=int(capacity))


def make_registered(
    worker: str, heartbeat_s: float, lease_timeout_s: float
) -> Dict[str, Any]:
    """Coordinator's reply: the worker id and the liveness contract."""
    return _message(
        "registered",
        worker=worker,
        heartbeat_s=heartbeat_s,
        lease_timeout_s=lease_timeout_s,
    )


def make_lease(
    lease: str, spec: Mapping[str, Any], job: Optional[str] = None,
    trace: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """One unit of leased work: a single spec, not an ``i/N`` shard.

    ``job`` is the submitting job's id — the correlation id that lets
    a worker's events/logs be traced back to the coordinator-side
    sweep they belong to.  ``trace`` carries the job's trace id and
    the lease span's id so the worker's ``execute`` span parents on
    the coordinator's ``lease`` span.
    """
    return _message("lease", lease=lease, spec=dict(spec), job=job or None,
                    trace=dict(trace) if trace else None)


def make_lease_result(lease: str, result: Mapping[str, Any]) -> Dict[str, Any]:
    return _message("lease-result", lease=lease, result=dict(result))


def make_heartbeat(worker: Optional[str] = None) -> Dict[str, Any]:
    """Worker liveness pulse; renews every lease the worker holds."""
    return _message("heartbeat", worker=worker)


def make_release(
    leases: Sequence[str], worker: Optional[str] = None
) -> Dict[str, Any]:
    """A draining worker handing unstarted leases straight back.

    The graceful counterpart to a connection drop: the coordinator
    requeues the named leases immediately instead of waiting for the
    lease timeout to expire them.
    """
    return _message("release", leases=[str(x) for x in leases],
                    worker=worker)


# -- federation frames ------------------------------------------------------


def make_pool_register(
    host: str, port: int, name: Optional[str] = None
) -> Dict[str, Any]:
    """Attach a peer coordinator pool to a running federation front.

    The front starts forwarding federation-queue specs to
    ``host:port`` (a :class:`~repro.cluster.coordinator.
    ClusterCoordinator` listener) as soon as its circuit breaker
    admits the pool.  Re-registering a known ``name`` resets that
    pool's breaker and drain flag.
    """
    return _message("pool-register", host=str(host), port=int(port),
                    name=name or None)


def make_pool_health() -> Dict[str, Any]:
    """Ask a federation front for its per-pool health snapshot."""
    return _message("pool-health")


def make_pool_health_reply(
    pools: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Any]:
    """Per-pool breaker state + assignment counters, keyed by name."""
    return _message(
        "pool-health-reply",
        pools={k: dict(v) for k, v in pools.items()},
    )


def make_pool_rehome(pool: str) -> Dict[str, Any]:
    """Drain a pool: re-home its uncompleted specs to the survivors.

    The named pool stops receiving new chunks and every spec it holds
    that has not produced a result returns to the federation queue
    (uncharged — an operator drain is voluntary, like a worker
    ``release``).  Re-register the pool to bring it back.
    """
    return _message("pool-rehome", pool=str(pool))


# -- shared-secret auth -----------------------------------------------------


def attach_token(message: Dict[str, Any],
                 token: Optional[str]) -> Dict[str, Any]:
    """Stamp an outgoing request with the shared secret (no-op if None)."""
    if token:
        message["token"] = token
    return message


def check_token(message: Mapping[str, Any], token: Optional[str]) -> None:
    """Gate an inbound frame against the listener's shared secret.

    Raises a non-fatal :class:`ProtocolError` (code ``unauthorized``)
    when the listener requires a token and the frame's is missing or
    wrong; the comparison is timing-safe.  With no listener token every
    frame passes.
    """
    if token is None:
        return
    presented = message.get("token")
    if not isinstance(presented, str) or not hmac.compare_digest(
        presented.encode(), token.encode()
    ):
        raise ProtocolError(
            "unauthorized",
            "frame rejected: this listener requires a valid auth token "
            "(--auth-token / REPRO_AUTH_TOKEN)",
        )


# -- request validation -----------------------------------------------------


def validate_request(message: Mapping[str, Any]) -> str:
    """Check a decoded frame is a well-formed request; returns its type."""
    type_ = message.get("type")
    if (type_ not in REQUEST_TYPES and type_ not in WORKER_REQUEST_TYPES
            and type_ not in FED_REQUEST_TYPES):
        known = sorted(
            REQUEST_TYPES | WORKER_REQUEST_TYPES | FED_REQUEST_TYPES
        )
        raise ProtocolError(
            "unknown-type",
            f"unknown request type {type_!r}; expected one of {known}",
        )
    if type_ == "submit":
        specs = message.get("specs")
        if not isinstance(specs, list) or not specs:
            raise ProtocolError(
                "bad-message", "submit needs a non-empty 'specs' list"
            )
        if not all(isinstance(s, dict) for s in specs):
            raise ProtocolError(
                "bad-message", "every submitted spec must be an object"
            )
        sweep = message.get("sweep")
        if sweep is not None and (
            not isinstance(sweep, dict)
            or not all(isinstance(v, list) and v for v in sweep.values())
        ):
            raise ProtocolError(
                "bad-message",
                "'sweep' must map param names to non-empty value lists",
            )
        shards = message.get("shards")
        if shards is not None and (
            not isinstance(shards, int) or isinstance(shards, bool)
            or shards < 1
        ):
            raise ProtocolError("bad-message", "'shards' must be a "
                                "positive integer")
        shard = message.get("shard")
        if shard is not None and (
            not isinstance(shard, list)
            or len(shard) != 2
            or not all(isinstance(x, int) and not isinstance(x, bool)
                       for x in shard)
        ):
            raise ProtocolError("bad-message", "'shard' must be [index, "
                                "total]")
        trace = message.get("trace")
        if trace is not None and (
            not isinstance(trace, dict)
            or not isinstance(trace.get("id"), str)
            or not all(isinstance(v, str) for v in trace.values())
        ):
            raise ProtocolError(
                "bad-message",
                "'trace' must be an object of strings with an 'id'",
            )
    elif type_ == "watch":
        for key in ("kinds", "components"):
            value = message.get(key)
            if value is not None and (
                not isinstance(value, list)
                or not all(isinstance(x, str) for x in value)
            ):
                raise ProtocolError(
                    "bad-message",
                    f"watch '{key}' must be a list of strings when given",
                )
        job = message.get("job")
        if job is not None and not isinstance(job, str):
            raise ProtocolError(
                "bad-message", "watch 'job' must be a string when given"
            )
        queue = message.get("queue")
        if queue is not None and (
            not isinstance(queue, int) or isinstance(queue, bool)
            or queue < 1
        ):
            raise ProtocolError(
                "bad-message", "watch 'queue' must be a positive integer"
            )
        interval = message.get("status_interval")
        if interval is not None and (
            isinstance(interval, bool)
            or not isinstance(interval, (int, float))
            or interval <= 0
        ):
            raise ProtocolError(
                "bad-message",
                "watch 'status_interval' must be a positive number",
            )
        events = message.get("events")
        if events is not None and not isinstance(events, bool):
            raise ProtocolError(
                "bad-message", "watch 'events' must be a boolean"
            )
        if events is False and interval is None:
            raise ProtocolError(
                "bad-message",
                "watch with events=false needs a 'status_interval'",
            )
    elif type_ in ("stream", "cancel"):
        if not isinstance(message.get("job"), str):
            raise ProtocolError(
                "bad-message", f"{type_} needs a 'job' id string"
            )
    elif type_ == "status":
        job = message.get("job")
        if job is not None and not isinstance(job, str):
            raise ProtocolError(
                "bad-message", "status 'job' must be a string when given"
            )
    elif type_ == "register":
        if not isinstance(message.get("name"), str):
            raise ProtocolError(
                "bad-message", "register needs a worker 'name' string"
            )
        capacity = message.get("capacity", 1)
        if (not isinstance(capacity, int) or isinstance(capacity, bool)
                or capacity < 1):
            raise ProtocolError(
                "bad-message", "register 'capacity' must be a positive "
                "integer"
            )
    elif type_ == "lease-result":
        if not isinstance(message.get("lease"), str):
            raise ProtocolError(
                "bad-message", "lease-result needs a 'lease' id string"
            )
        if not isinstance(message.get("result"), dict):
            raise ProtocolError(
                "bad-message", "lease-result needs a 'result' object"
            )
    elif type_ == "release":
        leases = message.get("leases")
        if not isinstance(leases, list) or not all(
            isinstance(x, str) for x in leases
        ):
            raise ProtocolError(
                "bad-message", "release needs a 'leases' list of id "
                "strings"
            )
    elif type_ == "pool-register":
        if not isinstance(message.get("host"), str):
            raise ProtocolError(
                "bad-message", "pool-register needs a 'host' string"
            )
        port = message.get("port")
        if (not isinstance(port, int) or isinstance(port, bool)
                or not 1 <= port <= 65535):
            raise ProtocolError(
                "bad-message", "pool-register 'port' must be an integer "
                "in 1..65535"
            )
        name = message.get("name")
        if name is not None and not isinstance(name, str):
            raise ProtocolError(
                "bad-message", "pool-register 'name' must be a string "
                "when given"
            )
    elif type_ == "pool-rehome":
        if not isinstance(message.get("pool"), str):
            raise ProtocolError(
                "bad-message", "pool-rehome needs a 'pool' name string"
            )
    return type_


#: structured error codes the server emits (documented in
#: docs/service.md; tests assert on them).
ERROR_CODES = frozenset(
    {
        "bad-json",
        "bad-frame",
        "bad-message",
        "bad-spec",
        "unknown-scenario",
        "unknown-type",
        "unknown-job",
        "version-mismatch",
        "frame-too-large",
        "server-error",
        "shutting-down",
        "unauthorized",   # auth token missing/wrong on a guarded listener
        "busy",           # pending-spec queue at --max-pending capacity
        "unsupported",    # worker frame sent to a plain (non-pool) server
        "unknown-worker", # heartbeat/lease-result from an unregistered peer
        "unknown-pool",   # pool-rehome naming a pool the front never met
    }
)


def result_list(messages: List[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Extract the result payloads from a streamed frame sequence."""
    return [dict(m["result"]) for m in messages if m.get("type") == "result"]
