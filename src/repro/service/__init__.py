"""Scenario service: specs over the wire, results streamed back.

The paper's DSOC layer decouples computation from transport — objects
exchange typed messages over a NoC without caring where their peers
run.  This package applies the same decoupling to the experiment
engine itself:

* :mod:`repro.service.protocol` — versioned JSON-lines frames
  (``submit`` / ``status`` / ``stream`` / ``cancel`` / ``shutdown``),
  unit-testable without sockets;
* :mod:`repro.service.backend` — the ``Backend.run(specs)`` seam:
  :class:`LocalBackend` (engine executor + result cache) and
  :class:`RemoteBackend` (a peer service as a backend hop);
* :mod:`repro.service.server` — the asyncio front-end that validates
  specs against the registry, schedules shard batches, and streams
  each :class:`~repro.engine.results.ScenarioResult` as it completes;
* :mod:`repro.service.client` — the blocking client behind
  ``repro submit --stream``;
* :mod:`repro.service.shard` — deterministic ``spec.with_params``
  sweep expansion, ``i/N`` round-robin sharding, and shard-result
  merging identical to the serial run.

See ``docs/service.md`` for the protocol reference and examples.
"""

from repro.service.backend import (
    Backend,
    LocalBackend,
    RemoteBackend,
    make_service_backend,
)
from repro.service.backoff import Backoff, jittered_delay
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
)
from repro.service.server import BackgroundServer, ScenarioServer
from repro.service.shard import (
    expand_specs,
    expand_sweep,
    merge_results,
    parse_shard,
    shard_batches,
    shard_specs,
)

__all__ = [
    "Backend",
    "Backoff",
    "BackgroundServer",
    "FrameDecoder",
    "LocalBackend",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteBackend",
    "ScenarioServer",
    "ServiceClient",
    "ServiceError",
    "expand_specs",
    "expand_sweep",
    "jittered_delay",
    "make_service_backend",
    "merge_results",
    "parse_shard",
    "shard_batches",
    "shard_specs",
]
