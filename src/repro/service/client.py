"""Blocking client for the scenario service (CLI, tests, RemoteBackend).

Deliberately synchronous: the consumers — ``repro submit``, a
:class:`~repro.service.backend.RemoteBackend` running inside a server's
worker thread, CI smoke scripts — all want a plain iterator of results,
not an event loop.  Framing is shared with the server via
:mod:`repro.service.protocol`, including the max-frame guard on reads.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec
from repro.service import protocol
from repro.service.backoff import Backoff, jittered_delay
from repro.service.protocol import FrameDecoder, ProtocolError


class ServiceError(Exception):
    """A structured ``error`` frame (or transport failure) from the service."""

    def __init__(self, code: str, message: str,
                 detail: Optional[Any] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.detail = detail


class ServiceClient:
    """One connection speaking the JSON-lines protocol."""

    #: ``busy`` backoff: attempts beyond the first submit, base delay,
    #: and the ceiling one sleep may reach.  Delays come from the
    #: shared :func:`repro.service.backoff.jittered_delay` helper —
    #: exponential base times a uniform jitter in [0.5, 1.0) — so a
    #: burst of rejected clients doesn't re-stampede in lockstep.
    BUSY_RETRIES = 6
    BUSY_BASE_DELAY_S = 0.1
    BUSY_MAX_DELAY_S = 5.0

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        connect_timeout: Optional[float] = None,
        retries: int = 0,
        retry_delay_s: float = 0.2,
        auth_token: Optional[str] = None,
        busy_retries: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: dial timeout for :func:`socket.create_connection`; falls back
        #: to ``timeout`` when None, so a read timeout alone still bounds
        #: the connect and a finite connect bound never loosens reads.
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self.auth_token = auth_token
        self.busy_retries = (
            self.BUSY_RETRIES if busy_retries is None else busy_retries
        )
        self._decoder = FrameDecoder()
        self._sock: Optional[socket.socket] = None
        self.last_done: Optional[Dict[str, Any]] = None
        self.last_job: Optional[str] = None
        self._connect(retries, retry_delay_s)

    def _connect(self, retries: int, delay_s: float) -> None:
        last_error: Optional[OSError] = None
        attempts = max(1, retries + 1)
        backoff = Backoff(base_s=delay_s, max_s=max(delay_s, 2.0))
        for attempt in range(attempts):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                self._sock.settimeout(self.timeout)
                return
            except OSError as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    time.sleep(backoff.next_delay())
        raise ServiceError(
            "connect-failed",
            f"cannot reach {self.host}:{self.port}: {last_error}",
        )

    # -- transport ----------------------------------------------------------

    def send(self, message: Mapping[str, Any]) -> None:
        message = protocol.attach_token(dict(message), self.auth_token)
        try:
            self._sock.sendall(protocol.encode_frame(message))
        except OSError as exc:
            raise ServiceError(
                "connection-lost", f"send failed: {exc}"
            ) from None

    def recv(self) -> Dict[str, Any]:
        """Next frame from the server (blocking).

        Transport and framing failures surface as :class:`ServiceError`
        so callers (the CLI in particular) have one exception to catch.
        """
        while True:
            try:
                message = self._decoder.next_frame()
                if message is not None:
                    return message
                data = self._sock.recv(65536)
                if not data:
                    raise ServiceError(
                        "connection-closed",
                        "server closed the connection mid-stream",
                    )
                self._decoder.feed(data)
            except ProtocolError as exc:
                raise ServiceError(
                    exc.code, f"undecodable reply from "
                    f"{self.host}:{self.port}: {exc}",
                ) from None
            except socket.timeout:
                raise ServiceError(
                    "timeout",
                    f"no frame from {self.host}:{self.port} within "
                    f"{self.timeout}s",
                ) from None
            except OSError as exc:
                raise ServiceError(
                    "connection-lost", f"receive failed: {exc}"
                ) from None

    def _recv_checked(self) -> Dict[str, Any]:
        message = self.recv()
        if message.get("type") == "error":
            raise ServiceError(
                message.get("code", "error"),
                message.get("message", "unspecified server error"),
                detail=message.get("detail"),
            )
        return message

    # -- requests -----------------------------------------------------------

    def submit_iter(
        self,
        specs: Sequence[ScenarioSpec | Mapping[str, Any]],
        *,
        sweep: Optional[Mapping[str, Sequence[Any]]] = None,
        shards: Optional[int] = None,
        shard: Optional[Sequence[int]] = None,
        options: Optional[Mapping[str, Any]] = None,
        trace: Optional[Mapping[str, str]] = None,
    ) -> Iterator[ScenarioResult]:
        """Submit and yield each streamed result as it arrives.

        Raises :class:`ServiceError` on a structured rejection.  A
        ``busy`` rejection (the listener's ``--max-pending`` cap) is
        retried with jittered exponential backoff before giving up.
        After the iterator is exhausted, :attr:`last_done` holds the
        final ``done`` frame (counts, cancelled flag).  ``trace``
        threads an existing trace context through the submit so the
        server-side job span parents on the caller's span.
        """
        payload = [
            s.to_dict() if isinstance(s, ScenarioSpec) else dict(s)
            for s in specs
        ]
        submit = protocol.make_submit(
            payload, stream=True, sweep=sweep, shards=shards,
            shard=shard, options=options, trace=trace,
        )
        for attempt in range(self.busy_retries + 1):
            self.send(submit)
            try:
                ack = self._recv_checked()
                break
            except ServiceError as exc:
                if exc.code != "busy" or attempt >= self.busy_retries:
                    raise
                time.sleep(jittered_delay(
                    attempt, self.BUSY_BASE_DELAY_S, self.BUSY_MAX_DELAY_S
                ))
        if ack.get("type") != "ack":
            raise ServiceError(
                "protocol",
                f"expected ack, got {ack.get('type')!r}",
            )
        self.last_job = ack.get("job")
        self.last_done = None
        while True:
            message = self._recv_checked()
            type_ = message.get("type")
            if type_ == "result":
                yield ScenarioResult.from_dict(message["result"])
            elif type_ == "done":
                self.last_done = message
                return
            elif type_ in ("ack", "pong"):
                continue  # reply to an interleaved cancel/ping
            else:
                raise ServiceError(
                    "protocol",
                    f"unexpected frame {type_!r} in result stream",
                )

    def submit(
        self,
        specs: Sequence[ScenarioSpec | Mapping[str, Any]],
        *,
        sweep: Optional[Mapping[str, Sequence[Any]]] = None,
        shards: Optional[int] = None,
        shard: Optional[Sequence[int]] = None,
        options: Optional[Mapping[str, Any]] = None,
        progress: Optional[Callable[[ScenarioResult], None]] = None,
    ) -> List[ScenarioResult]:
        """Submit and collect the full streamed result list."""
        results: List[ScenarioResult] = []
        for result in self.submit_iter(
            specs, sweep=sweep, shards=shards, shard=shard, options=options
        ):
            results.append(result)
            if progress:
                progress(result)
        return results

    def stream_job(self, job: str) -> Iterator[ScenarioResult]:
        """Re-attach to a job by id: replay what it has, follow the tail.

        This is how a client collects a job that outlived its original
        connection — a coordinator restarted with ``--resume`` keeps
        the job id, so the same ``stream`` request drains the merged
        (journal-replayed + freshly executed) result list.
        """
        self.send(protocol.make_stream(job))
        self.last_job = job
        self.last_done = None
        while True:
            message = self._recv_checked()
            type_ = message.get("type")
            if type_ == "result":
                yield ScenarioResult.from_dict(message["result"])
            elif type_ == "done":
                self.last_done = message
                return
            elif type_ in ("ack", "pong"):
                continue
            else:
                raise ServiceError(
                    "protocol",
                    f"unexpected frame {type_!r} in result stream",
                )

    def status(self, job: Optional[str] = None) -> Dict[str, Any]:
        self.send(protocol.make_status(job))
        return self._recv_checked().get("jobs", {})

    def status_full(self, job: Optional[str] = None) -> Dict[str, Any]:
        """The whole ``status-reply`` frame: jobs + the listener's live
        telemetry (``metrics`` snapshot, ``cluster`` pool state when
        the peer is a coordinator, ``watchers`` when anyone holds a
        watch subscription)."""
        self.send(protocol.make_status(job))
        frame = self._recv_checked()
        status = {
            "jobs": frame.get("jobs", {}),
            "metrics": frame.get("metrics"),
            "cluster": frame.get("cluster"),
        }
        if "watchers" in frame:
            status["watchers"] = frame["watchers"]
        return status

    # -- watch (live telemetry fan-out) --------------------------------------

    def watch_events(
        self,
        *,
        kinds: Optional[Sequence[str]] = None,
        job: Optional[str] = None,
        components: Optional[Sequence[str]] = None,
        queue: Optional[int] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Subscribe to the server's live event feed; yields event dicts.

        The generator blocks on the connection (honoring ``timeout``)
        and runs until the caller abandons it or the server goes away.
        A server predating the ``watch`` frame answers ``unknown-type``
        (older still: ``unsupported``), surfaced as a
        :class:`ServiceError` — callers fall back to polling on it.
        """
        self.send(protocol.make_watch(
            kinds=kinds, job=job, components=components, queue=queue,
        ))
        ack = self._recv_checked()
        if ack.get("type") != "watch-ack":
            raise ServiceError(
                "protocol",
                f"expected watch-ack, got {ack.get('type')!r}",
            )
        while True:
            frame = self._recv_checked()
            if frame.get("type") == "event":
                yield frame.get("event", {})
            elif frame.get("type") in ("pong", "status-reply"):
                continue
            else:
                raise ServiceError(
                    "protocol",
                    f"unexpected frame {frame.get('type')!r} in "
                    "event stream",
                )

    def watch_status(
        self, interval: float, job: Optional[str] = None
    ) -> Iterator[Dict[str, Any]]:
        """Push-based ``--watch``: server sends a status snapshot at
        most every ``interval`` seconds, only when something changed.

        Yields the same dict shape as :meth:`status_full`.  A read
        timeout is treated as a quiet interval: the client pings to
        prove the server is alive and keeps waiting, so ``timeout``
        acts as the liveness bound rather than a hard deadline.
        """
        self.send(protocol.make_watch(
            events=False, status_interval=float(interval), job=job,
        ))
        ack = self._recv_checked()
        if ack.get("type") != "watch-ack":
            raise ServiceError(
                "protocol",
                f"expected watch-ack, got {ack.get('type')!r}",
            )
        while True:
            try:
                frame = self._recv_checked()
            except ServiceError as exc:
                if exc.code != "timeout":
                    raise
                self.send(protocol.make_ping())
                continue
            type_ = frame.get("type")
            if type_ == "status-reply":
                status = {
                    "jobs": frame.get("jobs", {}),
                    "metrics": frame.get("metrics"),
                    "cluster": frame.get("cluster"),
                }
                if "watchers" in frame:
                    status["watchers"] = frame["watchers"]
                yield status
            elif type_ in ("pong", "event"):
                continue
            else:
                raise ServiceError(
                    "protocol",
                    f"unexpected frame {type_!r} in status stream",
                )

    def cancel(self, job: str) -> None:
        self.send(protocol.make_cancel(job))
        self._recv_checked()

    # -- federation admin ----------------------------------------------------

    def register_pool(
        self, host: str, port: int, name: Optional[str] = None
    ) -> str:
        """Attach a coordinator pool to a federation front; returns the
        pool's federation name (acked in the ``job`` slot)."""
        self.send(protocol.make_pool_register(host, port, name))
        ack = self._recv_checked()
        if ack.get("type") != "ack":
            raise ServiceError(
                "protocol", f"expected ack, got {ack.get('type')!r}"
            )
        return str(ack.get("job"))

    def pool_health(self) -> Dict[str, Any]:
        """Per-pool breaker state + counters from a federation front."""
        self.send(protocol.make_pool_health())
        frame = self._recv_checked()
        if frame.get("type") != "pool-health-reply":
            raise ServiceError(
                "protocol",
                f"expected pool-health-reply, got {frame.get('type')!r}",
            )
        return frame.get("pools", {})

    def rehome_pool(self, pool: str) -> int:
        """Drain ``pool``: its uncompleted specs return to the
        federation queue.  Returns how many specs were re-homed."""
        self.send(protocol.make_pool_rehome(pool))
        ack = self._recv_checked()
        if ack.get("type") != "ack":
            raise ServiceError(
                "protocol", f"expected ack, got {ack.get('type')!r}"
            )
        return int(ack.get("specs", 0))

    def ping(self) -> bool:
        self.send(protocol.make_ping())
        return self._recv_checked().get("type") == "pong"

    def shutdown(self) -> None:
        """Ask the server to stop (acknowledged with ``bye``)."""
        self.send(protocol.make_shutdown())
        try:
            self._recv_checked()
        except ServiceError as exc:
            if exc.code != "connection-closed":
                raise

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
