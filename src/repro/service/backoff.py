"""Jittered exponential backoff, shared by every reconnecting peer.

One formula, three consumers: the client's ``busy`` submit retry, the
worker's coordinator-reconnect loop, and the supervisor's
restart-after-death policy.  The delay for attempt *n* is::

    min(max_s, base_s * factor ** n) * uniform(1 - jitter, 1)

i.e. an exponential ramp with a hard ceiling, scaled by a uniform
jitter factor so a burst of peers disconnected by the same event does
not re-stampede the listener in lockstep.  With the default
``jitter=0.5`` the factor is drawn from [0.5, 1.0) — the distribution
the client's busy retry has always used.

The RNG is injectable: the chaos harness and the supervisor tests pass
a seeded ``random.Random`` so backoff schedules are reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["Backoff", "jittered_delay"]


def jittered_delay(
    attempt: int,
    base_s: float,
    max_s: float,
    *,
    factor: float = 2.0,
    jitter: float = 0.5,
    rng: Optional[random.Random] = None,
) -> float:
    """Delay before retry *attempt* (0-based), jittered and capped."""
    raw = min(max_s, base_s * factor ** max(0, attempt))
    if jitter <= 0:
        return raw
    draw = (rng or random).random()
    return raw * (1.0 - jitter + jitter * draw)


class Backoff:
    """A stateful retry pacer: ``next_delay()`` per failure, ``reset()``
    on success.

    The attempt counter only ever moves forward between resets, so a
    peer that keeps failing ramps to the ceiling and stays there;
    a success (``reset``) drops it back to the base.
    """

    def __init__(
        self,
        base_s: float = 0.1,
        max_s: float = 5.0,
        *,
        factor: float = 2.0,
        jitter: float = 0.5,
        rng: Optional[random.Random] = None,
    ):
        self.base_s = float(base_s)
        self.max_s = float(max_s)
        self.factor = float(factor)
        self.jitter = float(jitter)
        self.rng = rng
        self.attempt = 0

    def peek(self, attempt: Optional[int] = None) -> float:
        """The delay for *attempt* without advancing the counter."""
        if attempt is None:
            attempt = self.attempt
        return jittered_delay(
            attempt, self.base_s, self.max_s,
            factor=self.factor, jitter=self.jitter, rng=self.rng,
        )

    def next_delay(self) -> float:
        """The delay for the current attempt; advances the counter."""
        delay = self.peek(self.attempt)
        self.attempt += 1
        return delay

    def reset(self) -> None:
        self.attempt = 0
