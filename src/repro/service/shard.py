"""Deterministic sweep expansion, sharding, and shard-result merging.

A *sweep* fans one base :class:`ScenarioSpec` out over the cross
product of parameter axes via ``spec.with_params`` — each expanded
spec is an ordinary engine job with its own content hash, so caching,
seeding and determinism all come for free.  A *shard* is the
round-robin subset ``specs[index::total]`` of an expansion: shards are
disjoint, cover the expansion exactly, and depend only on the
expansion order (which is itself deterministic), so N machines — or N
sequential batches on one machine — can each take ``i/N`` and the
merged results are identical to the serial run.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.results import Report, ScenarioResult
from repro.engine.spec import ScenarioSpec


def expand_sweep(
    spec: ScenarioSpec, axes: Mapping[str, Sequence[Any]]
) -> List[ScenarioSpec]:
    """Fan ``spec`` out over the cross product of parameter axes.

    Axes are iterated in sorted-name order and each axis in its given
    value order, so the expansion order — and therefore any sharding
    of it — is deterministic regardless of dict ordering.  With no
    axes the spec itself is returned (a sweep of one).
    """
    if not axes:
        return [spec]
    names = sorted(axes)
    for name in names:
        if not isinstance(axes[name], (list, tuple)) or not len(axes[name]):
            raise ValueError(
                f"sweep axis {name!r} must be a non-empty sequence"
            )
    return [
        spec.with_params(**dict(zip(names, values)))
        for values in itertools.product(*(axes[name] for name in names))
    ]


def expand_specs(
    specs: Iterable[ScenarioSpec],
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
) -> List[ScenarioSpec]:
    """Expand every spec over the same sweep axes (order-preserving)."""
    expanded: List[ScenarioSpec] = []
    for spec in specs:
        expanded.extend(expand_sweep(spec, axes or {}))
    return expanded


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse the CLI ``i/N`` shard syntax (zero-based index)."""
    try:
        index_s, total_s = text.split("/", 1)
        index, total = int(index_s), int(total_s)
    except ValueError:
        raise ValueError(
            f"shard must look like 'i/N' (e.g. 0/4), got {text!r}"
        ) from None
    _check_shard(index, total)
    return index, total


def _check_shard(index: int, total: int) -> None:
    if total < 1:
        raise ValueError(f"shard count must be >= 1, got {total}")
    if not 0 <= index < total:
        raise ValueError(
            f"shard index must be in [0, {total}), got {index}"
        )


def shard_specs(
    specs: Sequence[ScenarioSpec], index: int, total: int
) -> List[ScenarioSpec]:
    """Round-robin shard ``index`` of ``total`` (deterministic subset).

    Round-robin (rather than contiguous blocks) balances sweeps whose
    cost varies monotonically along an axis — the expensive tail of a
    ``pe_counts`` axis lands one-per-shard instead of all in the last.
    """
    _check_shard(index, total)
    return list(specs[index::total])


def shard_batches(
    specs: Sequence[ScenarioSpec], total: int
) -> List[List[ScenarioSpec]]:
    """All ``total`` shards of an expansion (some may be empty)."""
    return [shard_specs(specs, i, total) for i in range(total)]


def merge_results(
    shard_results: Iterable[Iterable[ScenarioResult]],
    order: Optional[Sequence[ScenarioSpec]] = None,
    code_version: str = "",
) -> Report:
    """Merge per-shard result lists into one sweep :class:`Report`.

    With ``order`` (the pre-shard expansion) the merged report lists
    results in exactly the serial run's order; duplicate spec hashes
    (a spec submitted to two shards) keep the first occurrence so the
    merge is idempotent.
    """
    merged: List[ScenarioResult] = []
    seen: Dict[str, int] = {}
    for results in shard_results:
        for result in results:
            if result.spec_hash in seen:
                continue
            seen[result.spec_hash] = len(merged)
            merged.append(result)
    if order is not None:
        rank = {}
        for position, spec in enumerate(order):
            rank.setdefault(spec.content_hash, position)
        merged.sort(
            key=lambda r: rank.get(r.spec_hash, len(rank))
        )
    return Report(results=merged, code_version=code_version)
