"""Pluggable execution backends behind one ``Backend.run(specs)`` face.

The service schedules every job through this interface, so where the
work actually happens — this process's multiprocessing pool, a peer
service on another machine, eventually a real job queue — is a
deployment choice, not a protocol change.  :class:`LocalBackend` wraps
the engine executor (and its on-disk result cache); a
:class:`RemoteBackend` is the client side of another scenario service,
which is what lets N machines drain one queue: point a server's
backend at the next hop and the same ``submit`` flows through.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.engine.cache import ResultCache
from repro.engine.executor import execute
from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec

ProgressFn = Callable[[ScenarioResult], None]


class Backend:
    """Anything that can execute a batch of specs.

    ``run`` returns results in *completion* order and invokes
    ``progress`` once per result as it lands — the contract streaming
    is built on.  Implementations must be safe to call from a worker
    thread (the server runs them off the event loop).  ``label`` is
    the submitting job's id (or None); backends that journal or
    attribute work use it, the rest ignore it.
    """

    name = "abstract"

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        progress: Optional[ProgressFn] = None,
        *,
        label: Optional[str] = None,
    ) -> List[ScenarioResult]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class LocalBackend(Backend):
    """The engine executor (serial or process pool) plus its cache.

    When constructed with a ``warehouse`` (a
    :class:`~repro.telemetry.warehouse.ResultsWarehouse` or a path to
    one), every result — fresh, failed, or cache replay — is recorded
    as a warehouse row under the submitting job's id, so a whole run
    history is queryable with ``repro query``.
    """

    name = "local"

    def __init__(
        self,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        backend: str = "auto",
        cache: Union[ResultCache, str, Path, None] = None,
        max_cache_entries: Optional[int] = None,
        warehouse=None,
    ):
        self.workers = workers
        self.timeout_s = timeout_s
        self.backend = backend
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        #: LRU cap applied (by mtime) after every batch, so long sweep
        #: campaigns can't grow the on-disk cache without bound.
        self.max_cache_entries = max_cache_entries
        if isinstance(warehouse, (str, Path)):
            from repro.telemetry.warehouse import ResultsWarehouse

            warehouse = ResultsWarehouse(warehouse, source="local")
        self.warehouse = warehouse

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        progress: Optional[ProgressFn] = None,
        *,
        label: Optional[str] = None,
    ) -> List[ScenarioResult]:
        completed: List[ScenarioResult] = []
        job_id = label or ""

        def observe(result: ScenarioResult) -> None:
            completed.append(result)
            if self.warehouse is not None:
                self.warehouse.record_result(result, job_id=job_id)
            if progress:
                progress(result)

        execute(
            specs,
            workers=self.workers,
            timeout_s=self.timeout_s,
            backend=self.backend,
            cache=self.cache,
            progress=observe,
        )
        if self.cache is not None and self.max_cache_entries is not None:
            self.cache.prune(self.max_cache_entries)
        return completed

    def describe(self) -> str:
        cache = self.cache.root if self.cache is not None else "off"
        return (
            f"local(workers={self.workers}, backend={self.backend}, "
            f"cache={cache})"
        )


class RemoteBackend(Backend):
    """Client side of a peer scenario service, as a :class:`Backend`.

    A server constructed with this backend forwards every batch to the
    peer and re-streams its results — the stub that turns one service
    into a chainable hop.  Connection setup is deferred to each
    ``run`` call so the backend object itself is cheap and picklable.

    Timeouts default *finite* so a hung peer can never wedge the hop
    forever: ``connect_timeout`` bounds the dial,``timeout`` bounds
    each read between streamed results.  Pass ``timeout=None``
    explicitly to wait indefinitely (the pre-federation behaviour).
    Connect retries sleep on the shared jittered exponential
    :class:`~repro.service.backoff.Backoff` inside the client, not a
    fixed-delay loop.
    """

    name = "remote"

    #: dial bound — a dead host fails in seconds, not at TCP's mercy.
    DEFAULT_CONNECT_TIMEOUT_S = 10.0
    #: per-read bound between frames; generous because one slow spec
    #: may legitimately stream nothing for minutes.
    DEFAULT_READ_TIMEOUT_S = 300.0
    _UNSET = object()

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_retries: int = 25,
        timeout: Optional[float] = _UNSET,
        connect_timeout: Optional[float] = _UNSET,
    ):
        self.host = host
        self.port = port
        self.connect_retries = connect_retries
        self.timeout = (
            self.DEFAULT_READ_TIMEOUT_S if timeout is self._UNSET
            else timeout
        )
        self.connect_timeout = (
            self.DEFAULT_CONNECT_TIMEOUT_S if connect_timeout is self._UNSET
            else connect_timeout
        )

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        progress: Optional[ProgressFn] = None,
        *,
        label: Optional[str] = None,
    ) -> List[ScenarioResult]:
        from repro.service.client import ServiceClient

        with ServiceClient(
            self.host,
            self.port,
            retries=self.connect_retries,
            timeout=self.timeout,
            connect_timeout=self.connect_timeout,
        ) as client:
            return client.submit(specs, progress=progress)

    def describe(self) -> str:
        return f"remote({self.host}:{self.port})"


class PoolBackend(Backend):
    """The cluster pool as a :class:`Backend`: execute nothing locally.

    ``run`` hands every spec to the coordinator's
    :class:`~repro.cluster.coordinator.ClusterPool` (on the event
    loop) and blocks — it is already running on the server's executor
    thread — draining results from a thread-safe sink queue as
    registered workers complete leases.  A raising ``progress``
    callback (the server's cancel path) or a pool shutdown abandons
    the remaining specs.
    """

    name = "pool"

    #: how long to wait for the loop to accept a batch before giving up.
    SUBMIT_TIMEOUT_S = 30.0

    def __init__(self, pool):
        self.pool = pool

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        progress: Optional[ProgressFn] = None,
        *,
        label: Optional[str] = None,
    ) -> List[ScenarioResult]:
        import asyncio
        import queue as stdlib_queue

        specs = list(specs)
        if not specs:
            return []
        sink: "stdlib_queue.Queue" = stdlib_queue.Queue()
        handle = asyncio.run_coroutine_threadsafe(
            self.pool.submit_batch(specs, sink, label=label),
            self.pool.loop,
        )
        batch_id = handle.result(timeout=self.SUBMIT_TIMEOUT_S)
        completed: List[ScenarioResult] = []
        try:
            while len(completed) < len(specs):
                try:
                    kind, payload = sink.get(timeout=1.0)
                except stdlib_queue.Empty:
                    if self.pool.closed:
                        raise RuntimeError(
                            "cluster pool stopped while the batch was "
                            "in flight"
                        ) from None
                    continue
                if kind == "abort":
                    raise RuntimeError(
                        f"cluster pool aborted the batch: {payload}"
                    )
                completed.append(payload)
                if progress:
                    progress(payload)
        finally:
            if len(completed) < len(specs):
                self.pool.loop.call_soon_threadsafe(
                    self.pool.abandon_batch, batch_id
                )
        return completed

    def describe(self) -> str:
        return f"pool({self.pool.describe()})"


def make_service_backend(
    kind: str = "local",
    *,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    executor: str = "auto",
    cache: Union[ResultCache, str, Path, None] = None,
    remote_host: Optional[str] = None,
    remote_port: Optional[int] = None,
    warehouse=None,
) -> Backend:
    """Backend factory the ``repro serve`` CLI drives."""
    if kind == "local":
        return LocalBackend(
            workers=workers,
            timeout_s=timeout_s,
            backend=executor,
            cache=cache,
            warehouse=warehouse,
        )
    if kind == "remote":
        if not remote_host or remote_port is None:
            raise ValueError("remote backend needs remote_host/remote_port")
        if timeout_s is not None:
            return RemoteBackend(remote_host, remote_port, timeout=timeout_s)
        return RemoteBackend(remote_host, remote_port)
    raise ValueError(f"unknown service backend {kind!r}")
