"""Asyncio scenario service: validate, schedule, stream.

The server owns three concerns and nothing else:

* **Validation** — every submitted spec dict is rebuilt as a
  :class:`ScenarioSpec` and resolved against the registry *before*
  anything is scheduled; a malformed submit earns a structured
  ``error`` frame and the connection lives on.
* **Scheduling** — jobs run on a pluggable :class:`Backend` in a
  worker thread (the engine executor is blocking), one shard batch at
  a time, with cancellation checked between results and between
  shards.  The backend's result cache keeps replays at zero
  executions, exactly as in ``repro run``.
* **Streaming** — each :class:`ScenarioResult` is framed back the
  moment it completes; a client can also re-attach to a running job
  (``stream``) and gets a replay of what it missed, then the live
  tail.

The event loop never blocks on scenario work: frames keep being read
while a job streams, which is what makes mid-flight ``cancel`` (and
a second submission on the same connection) possible.
"""

from __future__ import annotations

import asyncio
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.engine import registry
from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec
from repro.service import protocol, shard
from repro.service.backend import Backend, LocalBackend
from repro.service.protocol import FrameDecoder, ProtocolError
from repro.service.watch import DEFAULT_QUEUE, WatchHub
from repro.telemetry.events import BUS
from repro.telemetry.metrics import METRICS
from repro.telemetry.spans import emit_span, new_span_id, new_trace_id

_COMPONENT = "service.server"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7341


class _JobCancelled(Exception):
    """Raised inside the backend thread to abandon a cancelled job."""


@dataclass
class Job:
    """One submitted batch: its specs, its shard plan, its results."""

    id: str
    specs: List[ScenarioSpec]
    batches: List[List[ScenarioSpec]]
    state: str = "running"          # running | done | cancelled | error
    results: List[ScenarioResult] = field(default_factory=list)
    cancelled: bool = False
    error: Optional[str] = None
    #: pulsed on every append/finish so streamers wake up.
    updated: asyncio.Event = field(default_factory=asyncio.Event)
    #: trace identity: minted at submit (or inherited from the submit
    #: frame's ``trace``); empty on journal-restored jobs, which emit
    #: no span (their wall time would be a lie).
    trace_id: str = ""
    span_id: str = ""
    parent_span: str = ""
    started_monotonic: float = 0.0

    @property
    def finished(self) -> bool:
        return self.state != "running"

    def counts(self) -> Dict[str, int]:
        cached = sum(1 for r in self.results if r.cached)
        failed = sum(1 for r in self.results if not r.ok)
        return {
            "total": len(self.specs),
            "completed": len(self.results),
            "executed": len(self.results) - cached,
            "cached": cached,
            "failed": failed,
        }

    def status(self) -> Dict[str, Any]:
        return {"state": self.state, "shards": len(self.batches),
                **self.counts()}


class ScenarioServer:
    """The TCP front-end; one instance per listening socket."""

    #: finished jobs retained for late `stream`/`status` requests; the
    #: oldest beyond this are evicted so a long-lived server's memory
    #: is bounded by its *running* work, not its history.
    MAX_FINISHED_JOBS = 64

    def __init__(
        self,
        backend: Optional[Backend] = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        auth_token: Optional[str] = None,
        max_pending: Optional[int] = None,
    ):
        self.backend = backend if backend is not None else LocalBackend()
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        #: shared-secret listener auth; None = open listener.
        self.auth_token = auth_token
        #: backpressure: cap on specs accepted but not yet completed.
        self.max_pending = max_pending
        self.jobs: Dict[str, Job] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop = asyncio.Event()
        self._job_counter = 0
        self._tasks: set = set()
        #: live event fan-out; attaches to the bus only while watched.
        self.watch_hub = WatchHub(BUS)
        #: watch subscriptions keyed by connection (id(writer)).
        self._watches: Dict[int, list] = {}

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        registry.load_all()  # fail fast + workers inherit under fork
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        await self._stop.wait()
        self._server.close()
        await self._server.wait_closed()
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def serve(self) -> None:
        if self._server is None:
            await self.start()
        await self.wait_stopped()

    def request_stop(self) -> None:
        self._stop.set()

    # -- connection handling ------------------------------------------------

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def _handle_connection(self, reader, writer) -> None:
        # register with the task set so wait_stopped() cancels and
        # drains open connections instead of orphaning them (the
        # listener's close() only stops *new* connections)
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        decoder = FrameDecoder(self.max_frame_bytes)
        write_lock = asyncio.Lock()
        METRICS.counter("service.connections").inc()
        METRICS.gauge("service.open_connections").inc()
        if BUS.enabled:
            peer = writer.get_extra_info("peername")
            BUS.emit(_COMPONENT, "connect",
                     peer=str(peer) if peer else "")
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                try:
                    decoder.feed(data)
                except ProtocolError as exc:
                    await self._send_error(writer, write_lock, exc)
                    return  # oversized frames are unrecoverable
                while True:
                    try:
                        message = decoder.next_frame()
                    except ProtocolError as exc:
                        await self._send_error(writer, write_lock, exc)
                        if exc.fatal:
                            return
                        continue
                    if message is None:
                        break
                    if await self._dispatch(message, writer, write_lock):
                        return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            METRICS.gauge("service.open_connections").dec()
            if BUS.enabled:
                BUS.emit(_COMPONENT, "disconnect")
            self._close_watches(writer)
            self._connection_closed(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                # swallowing the cancellation here lets a connection
                # task cancelled by wait_stopped() finish cleanly
                # instead of tripping asyncio's exception callback
                pass

    def _connection_closed(self, writer) -> None:
        """Hook: a connection ended (coordinator uses it to evict
        the worker registered on it)."""

    def _cluster_status(self) -> Optional[Dict[str, Any]]:
        """Hook: pool/worker status for the ``status`` frame (the
        coordinator reports its pool; a plain server has none)."""
        return None

    def _status_frame(self, wanted: Optional[str] = None) -> Dict[str, Any]:
        """One status-reply snapshot (request/reply *and* watch push)."""
        jobs = {
            job_id: job for job_id, job in self.jobs.items()
            if wanted is None or job_id == wanted
        }
        return protocol.make_status_reply(
            {job_id: job.status() for job_id, job in jobs.items()},
            metrics=METRICS.snapshot(),
            cluster=self._cluster_status(),
            watchers=(self.watch_hub.status()
                      if self.watch_hub.active else None),
        )

    def _job_trace(self, job_id: str) -> Optional[Tuple[str, str]]:
        """The (trace_id, job-span-id) of a live job, for child spans."""
        job = self.jobs.get(job_id)
        if job is None or not job.trace_id:
            return None
        return job.trace_id, job.span_id

    # -- watch (live event fan-out) -----------------------------------------

    async def _handle_watch(self, message, writer, lock) -> None:
        events = message.get("events", True)
        interval = message.get("status_interval")
        queue = message.get("queue") or DEFAULT_QUEUE
        sub = self.watch_hub.add(
            asyncio.get_running_loop(),
            kinds=message.get("kinds"),
            job_id=message.get("job"),
            components=message.get("components"),
            # a status-only watch just needs a dirty flag, not a
            # buffer — and its overflow is not data loss
            maxlen=1 if not events else queue,
            count_drops=bool(events),
        )
        METRICS.counter("service.watches").inc()
        METRICS.gauge("service.watchers").set(
            self.watch_hub.status()["watchers"]
        )
        if BUS.enabled:
            BUS.emit(_COMPONENT, "watch", watch=sub.id,
                     kinds=sorted(sub.kinds) if sub.kinds else None,
                     job=sub.job_id, events=bool(events))
        await self._send(
            writer, lock, protocol.make_watch_ack(sub.id, sub.maxlen)
        )
        task = self._spawn(
            self._stream_watch(sub, writer, lock,
                               events=bool(events),
                               status_interval=interval,
                               wanted=message.get("job"))
        )
        self._watches.setdefault(id(writer), []).append((sub, task))

    async def _stream_watch(self, sub, writer, lock, *, events: bool,
                            status_interval: Optional[float],
                            wanted: Optional[str]) -> None:
        loop = asyncio.get_running_loop()
        try:
            if status_interval:
                # initial snapshot so the watcher renders immediately
                await self._send(writer, lock, self._status_frame(wanted))
                next_status = loop.time() + float(status_interval)
                dirty = False
                while True:
                    timeout = max(0.0, next_status - loop.time())
                    woke = await sub.wait(timeout)
                    if woke:
                        batch = sub.drain()
                        if batch:
                            dirty = True
                            if events:
                                for event in batch:
                                    await self._send(
                                        writer, lock,
                                        protocol.make_event(
                                            sub.id, event.to_dict()),
                                    )
                    if loop.time() >= next_status:
                        if dirty:
                            await self._send(
                                writer, lock, self._status_frame(wanted)
                            )
                            dirty = False
                        next_status = loop.time() + float(status_interval)
            else:
                while True:
                    await sub.wait()
                    for event in sub.drain():
                        await self._send(
                            writer, lock,
                            protocol.make_event(sub.id, event.to_dict()),
                        )
        except (ConnectionResetError, BrokenPipeError, OSError,
                ProtocolError):
            # the watcher went away (or fed us an unencodable event);
            # drop the subscription — the campaign doesn't care.
            pass
        except asyncio.CancelledError:
            raise
        finally:
            self._drop_watch(sub)

    def _drop_watch(self, sub) -> None:
        if sub.closed:
            return
        self.watch_hub.remove(sub)
        METRICS.gauge("service.watchers").set(
            self.watch_hub.status()["watchers"]
        )
        if BUS.enabled:
            BUS.emit(_COMPONENT, "unwatch", watch=sub.id,
                     delivered=sub.delivered, dropped=sub.dropped)

    def _close_watches(self, writer) -> None:
        for sub, task in self._watches.pop(id(writer), []):
            self._drop_watch(sub)
            task.cancel()

    async def _send(self, writer, lock: asyncio.Lock,
                    message: Mapping[str, Any]) -> None:
        frame = protocol.encode_frame(message)
        async with lock:
            writer.write(frame)
            await writer.drain()

    async def _send_error(self, writer, lock, exc: ProtocolError,
                          job: Optional[str] = None) -> None:
        METRICS.counter("service.rejects").inc()
        METRICS.counter(f"service.rejects.{exc.code}").inc()
        if BUS.enabled:
            BUS.emit(_COMPONENT, "reject", job_id=job or "",
                     code=exc.code, message=str(exc))
        try:
            await self._send(
                writer, lock, protocol.make_error(exc.code, str(exc),
                                                  job=job)
            )
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(self, message, writer, lock) -> bool:
        """Handle one request; True means close this connection."""
        try:
            protocol.check_token(message, self.auth_token)
            type_ = protocol.validate_request(message)
        except ProtocolError as exc:
            await self._send_error(writer, lock, exc)
            return False
        if type_ in protocol.WORKER_REQUEST_TYPES:
            return await self._handle_worker_frame(
                type_, message, writer, lock
            )
        if type_ in protocol.FED_REQUEST_TYPES:
            return await self._handle_fed_frame(
                type_, message, writer, lock
            )
        if type_ == "ping":
            await self._send(writer, lock, protocol.make_pong())
            return False
        if type_ == "shutdown":
            await self._send(writer, lock, protocol.make_bye())
            self.request_stop()
            return True
        if type_ == "status":
            wanted = message.get("job")
            if wanted is not None and wanted not in self.jobs:
                await self._send_error(
                    writer, lock,
                    ProtocolError("unknown-job", f"no job {wanted!r}"),
                )
                return False
            await self._send(writer, lock, self._status_frame(wanted))
            return False
        if type_ == "watch":
            await self._handle_watch(message, writer, lock)
            return False
        if type_ == "stream":
            job = self.jobs.get(message["job"])
            if job is None:
                await self._send_error(
                    writer, lock,
                    ProtocolError("unknown-job",
                                  f"no job {message['job']!r}"),
                )
                return False
            self._spawn(self._stream_job(job, writer, lock))
            return False
        if type_ == "cancel":
            job = self.jobs.get(message["job"])
            if job is None:
                await self._send_error(
                    writer, lock,
                    ProtocolError("unknown-job",
                                  f"no job {message['job']!r}"),
                )
                return False
            job.cancelled = True
            METRICS.counter("service.cancels").inc()
            if BUS.enabled:
                BUS.emit(_COMPONENT, "cancel", job_id=job.id)
            await self._send(
                writer, lock, protocol.make_ack(job.id, len(job.specs))
            )
            return False
        # submit
        if self._stop.is_set():
            await self._send_error(
                writer, lock,
                ProtocolError("shutting-down", "server is shutting down"),
            )
            return False
        await self._handle_submit(message, writer, lock)
        return False

    async def _handle_worker_frame(self, type_, message, writer,
                                   lock) -> bool:
        """Hook: worker frames land here; a plain server has no pool."""
        await self._send_error(
            writer, lock,
            ProtocolError(
                "unsupported",
                f"{type_!r} frames need a coordinator "
                "(repro coordinator), not a plain server",
            ),
        )
        return False

    async def _handle_fed_frame(self, type_, message, writer,
                                lock) -> bool:
        """Hook: federation admin frames; only a federation front has
        pools to register, probe, or re-home."""
        await self._send_error(
            writer, lock,
            ProtocolError(
                "unsupported",
                f"{type_!r} frames need a federation front "
                "(repro federate), not this listener",
            ),
        )
        return False

    def _pending_specs(self) -> int:
        """Specs accepted but not yet completed, across all jobs."""
        return sum(
            max(0, len(job.specs) - len(job.results))
            for job in self.jobs.values()
            if not job.finished
        )

    async def _handle_submit(self, message, writer, lock) -> None:
        try:
            specs = self._build_specs(message)
        except ProtocolError as exc:
            await self._send_error(writer, lock, exc)
            return
        if self.max_pending is not None:
            pending = self._pending_specs()
            if pending + len(specs) > self.max_pending:
                await self._send(
                    writer, lock,
                    protocol.make_error(
                        "busy",
                        f"pending-spec queue is full ({pending} pending, "
                        f"{len(specs)} submitted, cap {self.max_pending}); "
                        "retry with backoff",
                        detail={"pending": pending,
                                "submitted": len(specs),
                                "max_pending": self.max_pending},
                    ),
                )
                return
        shards = message.get("shards") or 1
        batches = self._job_batches(specs, shards)
        self._job_counter += 1
        trace = message.get("trace") or {}
        job = Job(id=f"job-{self._job_counter}", specs=specs,
                  batches=batches,
                  trace_id=trace.get("id") or new_trace_id(),
                  span_id=new_span_id(),
                  parent_span=trace.get("span", ""),
                  started_monotonic=time.monotonic())
        self.jobs[job.id] = job
        self._job_created(job)
        METRICS.counter("service.submits").inc()
        METRICS.counter("service.specs_accepted").inc(len(specs))
        METRICS.gauge("service.pending_specs").set(self._pending_specs())
        if BUS.enabled:
            BUS.emit(_COMPONENT, "submit", job_id=job.id,
                     specs=len(specs), shards=len(batches),
                     trace=job.trace_id)
        await self._send(
            writer, lock, protocol.make_ack(job.id, len(specs))
        )
        self._spawn(self._run_job(job))
        if message.get("stream", True):
            self._spawn(self._stream_job(job, writer, lock))

    def _job_batches(self, specs: List[ScenarioSpec],
                     shards: int) -> List[List[ScenarioSpec]]:
        """Hook: how a job's specs group into backend calls (the
        coordinator ignores ``shards`` — its pool leases spec-by-spec,
        so batch boundaries would only serialize the fan-out)."""
        return [b for b in shard.shard_batches(specs, shards) if b]

    def _job_created(self, job: Job) -> None:
        """Hook: a job was accepted (coordinator journals it here)."""

    def _job_finished(self, job: Job) -> None:
        """Hook: a job reached a terminal state."""

    def _build_specs(self, message) -> List[ScenarioSpec]:
        """Validate spec dicts against the registry; expand sweep/shard."""
        specs: List[ScenarioSpec] = []
        for index, data in enumerate(message["specs"]):
            try:
                spec = ScenarioSpec.from_dict(data)
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(
                    "bad-spec",
                    f"spec #{index} is malformed: "
                    f"{type(exc).__name__}: {exc}",
                ) from None
            try:
                registry.get(spec.name)
            except KeyError:
                raise ProtocolError(
                    "unknown-scenario",
                    f"spec #{index} names unknown scenario "
                    f"{spec.name!r}",
                ) from None
            specs.append(spec)
        sweep = message.get("sweep")
        if sweep:
            try:
                specs = shard.expand_specs(specs, sweep)
            except (TypeError, ValueError) as exc:
                raise ProtocolError("bad-message",
                                    f"bad sweep: {exc}") from None
        picked = message.get("shard")
        if picked is not None:
            try:
                specs = shard.shard_specs(specs, picked[0], picked[1])
            except ValueError as exc:
                raise ProtocolError("bad-message", str(exc)) from None
        if not specs:
            raise ProtocolError(
                "bad-message", "selection expands to zero specs"
            )
        return specs

    # -- job execution ------------------------------------------------------

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()

        def on_result(result: ScenarioResult) -> None:
            # runs in the backend thread: hand the result to the loop,
            # then bail out mid-batch if the job was cancelled.
            loop.call_soon_threadsafe(self._append_result, job, result)
            if job.cancelled:
                raise _JobCancelled

        try:
            for batch in job.batches:
                if job.cancelled:
                    break
                await loop.run_in_executor(
                    None,
                    lambda b=batch: self.backend.run(
                        b, progress=on_result, label=job.id
                    ),
                )
            job.state = "cancelled" if job.cancelled else "done"
        except _JobCancelled:
            job.state = "cancelled"
        except asyncio.CancelledError:
            job.state = "cancelled"
            raise
        except Exception:
            job.state = "error"
            job.error = traceback.format_exc()
        finally:
            job.updated.set()
            METRICS.counter("service.jobs_finished").inc()
            METRICS.counter(f"service.jobs_{job.state}").inc()
            METRICS.gauge("service.pending_specs").set(
                self._pending_specs()
            )
            if BUS.enabled:
                BUS.emit(_COMPONENT, "job-done", job_id=job.id,
                         state=job.state, **job.counts())
                if job.trace_id:
                    emit_span(
                        _COMPONENT, "job",
                        trace_id=job.trace_id, span_id=job.span_id,
                        parent_id=job.parent_span, job_id=job.id,
                        duration_s=time.monotonic()
                        - job.started_monotonic,
                        state=job.state, specs=len(job.specs),
                    )
            self._job_finished(job)
            self._prune_jobs()

    def _prune_jobs(self) -> None:
        finished = [j for j in self.jobs.values() if j.finished]
        for job in finished[: max(0, len(finished)
                                  - self.MAX_FINISHED_JOBS)]:
            del self.jobs[job.id]

    def _append_result(self, job: Job, result: ScenarioResult) -> None:
        job.results.append(result)
        job.updated.set()
        METRICS.counter("service.results_completed").inc()
        METRICS.gauge("service.pending_specs").set(self._pending_specs())

    # -- streaming ----------------------------------------------------------

    async def _stream_job(self, job: Job, writer, lock) -> None:
        sent = 0
        if BUS.enabled:
            BUS.emit(_COMPONENT, "stream", job_id=job.id,
                     already_completed=len(job.results))
        try:
            while True:
                while sent < len(job.results):
                    await self._send(
                        writer,
                        lock,
                        protocol.make_result(
                            job.id, sent, job.results[sent].to_dict()
                        ),
                    )
                    sent += 1
                    METRICS.counter("service.results_streamed").inc()
                if job.finished:
                    break
                job.updated.clear()
                # re-check before sleeping: a result may have landed
                # between the len() check and the clear() (same loop
                # tick, so actually impossible — but cheap insurance
                # against future refactors moving an await in between).
                if sent == len(job.results) and not job.finished:
                    await job.updated.wait()
            if job.state == "error":
                await self._send(
                    writer,
                    lock,
                    protocol.make_error(
                        "server-error",
                        f"job {job.id} failed: {job.error}",
                        job=job.id,
                    ),
                )
                return
            counts = job.counts()
            await self._send(
                writer,
                lock,
                protocol.make_done(
                    job.id,
                    total=counts["total"],
                    executed=counts["executed"],
                    cached=counts["cached"],
                    failed=counts["failed"],
                    cancelled=job.state == "cancelled",
                ),
            )
        except ProtocolError as exc:
            # an unencodable frame (e.g. a result bigger than the frame
            # ceiling) must not kill the stream silently — the client
            # would wait forever; the error frame itself is tiny
            await self._send_error(writer, lock, exc, job=job.id)
        except (ConnectionResetError, BrokenPipeError, OSError):
            # client went away mid-stream; the job keeps running and
            # its results stay available to a later `stream` request.
            pass


# -- embedding helpers ------------------------------------------------------


async def _serve(server: ScenarioServer, ready: Optional[Any] = None) -> None:
    await server.start()
    if ready is not None:
        ready.set()
    await server.wait_stopped()


class BackgroundServer:
    """Run a :class:`ScenarioServer` on a daemon thread (tests, CI).

    Usage::

        with BackgroundServer(LocalBackend()) as bg:
            client = ServiceClient("127.0.0.1", bg.port)
    """

    def __init__(self, backend: Optional[Backend] = None,
                 host: str = DEFAULT_HOST, port: int = 0,
                 server: Optional[ScenarioServer] = None):
        # a prebuilt server (e.g. a ClusterCoordinator) can be handed
        # in directly; backend/host/port describe the default one.
        self.server = server if server is not None else ScenarioServer(
            backend, host=host, port=port
        )
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        class _Ready:
            def __init__(self, event):
                self.event = event

            def set(self):
                self.event.set()

        try:
            self._loop.run_until_complete(
                _serve(self.server, _Ready(self._ready))
            )
        finally:
            self._ready.set()  # unblock start() even on startup failure
            try:
                # let in-flight backend threads drain before the loop
                # goes away (they post results via call_soon_threadsafe)
                self._loop.run_until_complete(
                    self._loop.shutdown_default_executor()
                )
            except RuntimeError:
                pass
            self._loop.close()

    def start(self) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("scenario server failed to start in 10s")
        if not self._thread.is_alive() and self.server._server is None:
            raise RuntimeError("scenario server died during startup")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=10)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
