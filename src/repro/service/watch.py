"""Bridge the in-process :class:`~repro.telemetry.events.EventBus`
into per-connection watch subscriptions.

The fan-out problem: N clients want a live view of a campaign, but
``emit`` runs on the coordinator's hot paths (lease grants, result
deliveries) and must never wait on a socket.  So each subscriber gets
a *bounded* deque; :meth:`WatchSubscriber.push` runs on whatever
thread emitted the event, appends under a cheap lock, drops the
*oldest* buffered event when full (latest-wins — a live view wants
recency), counts the drop, and wakes the subscriber's asyncio writer
task with at most one ``call_soon_threadsafe`` per burst.  A slow or
dead watcher therefore costs the producer one lock + one append, ever.

The :class:`WatchHub` owns the bus subscription: it subscribes its
single ``_on_event`` fanout only while at least one watcher exists,
so an unobserved bus keeps its one-attribute-load fast path and the
zero-subscriber bench numbers stay untouched.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import deque
from typing import Any, Dict, FrozenSet, Optional

from repro.telemetry.events import BUS, Event, EventBus

__all__ = ["WatchSubscriber", "WatchHub", "DEFAULT_QUEUE", "MAX_QUEUE"]

#: default per-subscriber buffer when the watch frame names none.
DEFAULT_QUEUE = 512
#: hard ceiling a client-requested queue is clamped to.
MAX_QUEUE = 4096

_ids = itertools.count(1)


class WatchSubscriber:
    """One bounded, drop-oldest event buffer with a thread-safe wake.

    ``push`` may be called from any thread and never blocks beyond the
    internal mutex; ``drain``/``wait`` belong to the owning asyncio
    task.  ``count_drops=False`` marks a status-only subscription
    (its one-slot queue is just a dirty flag, so overflow there is not
    data loss and must not alarm anyone reading ``status``).
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        *,
        kinds: Optional[FrozenSet[str]] = None,
        job_id: Optional[str] = None,
        components: Optional[FrozenSet[str]] = None,
        maxlen: int = DEFAULT_QUEUE,
        count_drops: bool = True,
    ):
        self.id = f"w{next(_ids)}"
        self.kinds = frozenset(kinds) if kinds else None
        self.job_id = job_id or None
        self.components = frozenset(components) if components else None
        self.maxlen = max(1, min(int(maxlen), MAX_QUEUE))
        self.count_drops = count_drops
        self.dropped = 0
        self.delivered = 0
        self.closed = False
        self._queue: deque = deque(maxlen=self.maxlen)
        self._loop = loop
        self._wake = asyncio.Event()
        self._wake_pending = False
        self._lock = threading.Lock()

    def matches(self, event: Event) -> bool:
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.components is not None \
                and event.component not in self.components:
            return False
        if self.job_id is not None and event.job_id != self.job_id:
            return False
        return True

    def push(self, event: Event) -> None:
        """Buffer one event; any thread, never blocks the emitter."""
        with self._lock:
            if self.closed:
                return
            if len(self._queue) == self.maxlen and self.count_drops:
                self.dropped += 1  # deque(maxlen) evicts the oldest
            self._queue.append(event)
            if self._wake_pending:
                return
            self._wake_pending = True
        try:
            self._loop.call_soon_threadsafe(self._wake.set)
        except RuntimeError:
            pass  # loop already closed; the watcher is going away

    def drain(self) -> list:
        """Take everything buffered (owning-task only)."""
        with self._lock:
            items = list(self._queue)
            self._queue.clear()
            self._wake_pending = False
        self._wake.clear()
        self.delivered += len(items)
        return items

    async def wait(self, timeout: Optional[float] = None) -> bool:
        """Await the next wake; False on timeout."""
        if timeout is None:
            await self._wake.wait()
            return True
        try:
            await asyncio.wait_for(self._wake.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def close(self) -> None:
        with self._lock:
            self.closed = True
            self._queue.clear()

    def status(self) -> Dict[str, Any]:
        with self._lock:
            queued = len(self._queue)
        return {
            "kinds": sorted(self.kinds) if self.kinds else None,
            "job": self.job_id,
            "queue": self.maxlen,
            "queued": queued,
            "delivered": self.delivered,
            "dropped": self.dropped,
        }


class WatchHub:
    """Fan one bus out to many subscribers; attached only while watched."""

    def __init__(self, bus: EventBus = BUS):
        self._bus = bus
        self._lock = threading.Lock()
        self._subs: tuple = ()  # copy-on-write, like the bus itself
        self._attached = False
        #: drops accumulated by subscribers that have since detached,
        #: so ``status`` totals survive watcher churn.
        self._dropped_gone = 0

    @property
    def active(self) -> bool:
        return bool(self._subs)

    def _on_event(self, event: Event) -> None:
        for sub in self._subs:
            if sub.matches(event):
                sub.push(event)

    def add(
        self,
        loop: asyncio.AbstractEventLoop,
        *,
        kinds=None,
        job_id: Optional[str] = None,
        components=None,
        maxlen: int = DEFAULT_QUEUE,
        count_drops: bool = True,
    ) -> WatchSubscriber:
        sub = WatchSubscriber(
            loop,
            kinds=frozenset(kinds) if kinds else None,
            job_id=job_id,
            components=frozenset(components) if components else None,
            maxlen=maxlen,
            count_drops=count_drops,
        )
        with self._lock:
            self._subs = self._subs + (sub,)
            if not self._attached:
                self._bus.subscribe(self._on_event)
                self._attached = True
        return sub

    def remove(self, sub: WatchSubscriber) -> None:
        sub.close()
        with self._lock:
            if sub not in self._subs:
                return
            self._subs = tuple(s for s in self._subs if s is not sub)
            self._dropped_gone += sub.dropped
            if not self._subs and self._attached:
                # detach so the unobserved bus goes back to one
                # attribute load per emit
                self._bus.unsubscribe(self._on_event)
                self._attached = False

    def status(self) -> Dict[str, Any]:
        subs = self._subs
        return {
            "watchers": len(subs),
            "dropped_total": self._dropped_gone
            + sum(s.dropped for s in subs),
            "subscribers": {s.id: s.status() for s in subs},
        }

    def close(self) -> None:
        with self._lock:
            subs, self._subs = self._subs, ()
            if self._attached:
                self._bus.unsubscribe(self._on_event)
                self._attached = False
        for sub in subs:
            self._dropped_gone += sub.dropped
            sub.close()
