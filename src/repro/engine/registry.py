"""Decorator-based scenario registry with tag selection.

Domain modules declare workloads with :func:`scenario`; the engine
discovers them through :func:`load_all`, which imports every module
known to register scenarios (the 18 experiments, the nine ablations,
the mapping DSE sweep).  The registry is the single namespace the
executor, the cache and the CLI operate on.

A scenario function takes its params as keyword arguments and returns
a dict with ``rows`` (list of flat dicts) and optionally ``claim`` and
``verdict`` — the contract :mod:`repro.analysis.experiments`
established.
"""

from __future__ import annotations

import importlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.engine.spec import ScenarioSpec

_REGISTRY: Dict[str, "Scenario"] = {}
_LOADED = False
_DISCOVERED: Optional[Tuple[str, ...]] = None

#: source marker identifying a scenario-bearing module: a use of the
#: ``@scenario`` decorator or a direct ``register(...)`` call, under
#: their canonical names.  That naming is the discovery contract —
#: aliasing the decorator (``import scenario as x``) hides a module
#: from the scan; a false positive merely costs one harmless import.
_SCENARIO_MARKER = re.compile(
    r"^\s*@?(?:registry\.)?(?:scenario|register)\(", re.MULTILINE
)


def discover_scenario_modules() -> Tuple[str, ...]:
    """Every ``repro.*`` module whose source applies ``@scenario``.

    Replaces the old hand-maintained ``SCENARIO_MODULES`` tuple, where
    a forgotten entry silently dropped scenarios from :func:`load_all`.
    Discovery scans the package *source tree* rather than importing
    every module (imports stay lazy and side-effect-free for modules
    that register nothing).  Memoized per process; the scan itself is
    a few milliseconds over the whole package.
    """
    global _DISCOVERED
    if _DISCOVERED is not None:
        return _DISCOVERED
    package_root = Path(__file__).resolve().parents[1]  # src/repro
    modules = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root)
        if relative.name == "__main__.py":
            continue
        if relative.parts[0] == "engine":
            continue  # the engine defines the machinery, never workloads
        try:
            # python sources are utf-8; the locale default is not
            if not _SCENARIO_MARKER.search(path.read_text("utf-8")):
                continue
        except (OSError, UnicodeDecodeError):
            continue
        parts = ("repro",) + relative.with_suffix("").parts
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules.append(".".join(parts))
    _DISCOVERED = tuple(modules)
    return _DISCOVERED


def natural_key(name: str):
    """Sort key that orders E2 before E10."""
    import re

    return [
        int(chunk) if chunk.isdigit() else chunk
        for chunk in re.split(r"(\d+)", name)
    ]


@dataclass(frozen=True)
class Scenario:
    """A registered workload: its spec plus the callable behind it."""

    spec: ScenarioSpec
    fn: Callable[..., dict]
    module: str
    doc: str = ""
    #: verdict keys that are negative controls (expected False).
    expected_false: tuple = ()

    @property
    def name(self) -> str:
        return self.spec.name


def scenario(
    name: Optional[str] = None,
    *,
    tags: Iterable[str] = (),
    params: Optional[dict] = None,
    seed: int = 0,
    expected_false: Iterable[str] = (),
) -> Callable[[Callable[..., dict]], Callable[..., dict]]:
    """Register the decorated function as a scenario.

    ``params`` records the canonical default parameters — they become
    part of the spec hash, so changing a default re-keys the cache.
    ``expected_false`` names verdict keys that are negative controls
    (a False there does not count against reproduction).  The function
    itself is returned unchanged and stays directly callable (tests
    and benchmarks keep importing it as before).
    """

    def wrap(fn: Callable[..., dict]) -> Callable[..., dict]:
        spec = ScenarioSpec(
            name or fn.__name__, params or {}, seed=seed, tags=tags
        )
        register(spec, fn, expected_false=expected_false)
        return fn

    return wrap


def register(
    spec: ScenarioSpec,
    fn: Callable[..., dict],
    expected_false: Iterable[str] = (),
) -> Scenario:
    existing = _REGISTRY.get(spec.name)
    entry = Scenario(
        spec=spec,
        fn=fn,
        module=fn.__module__,
        doc=(fn.__doc__ or "").strip().splitlines()[0]
        if fn.__doc__
        else "",
        expected_false=tuple(expected_false),
    )
    if existing is not None:
        same_origin = (
            existing.module == entry.module
            and existing.fn.__qualname__ == fn.__qualname__
        )
        if not same_origin:
            raise ValueError(
                f"scenario {spec.name!r} already registered by "
                f"{existing.module}.{existing.fn.__qualname__}"
            )
    _REGISTRY[spec.name] = entry
    return entry


def unregister(name: str) -> None:
    """Remove a scenario (test helper)."""
    _REGISTRY.pop(name, None)


def load_all() -> None:
    """Import every scenario-bearing module (idempotent).

    The module set is auto-discovered from the package sources
    (:func:`discover_scenario_modules`), so adding a new
    ``@scenario``-bearing file anywhere under ``src/repro/`` is enough
    — no list to keep in sync.
    """
    global _LOADED
    if _LOADED:
        return
    for module in discover_scenario_modules():
        importlib.import_module(module)
    _LOADED = True


def get(name: str) -> Scenario:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def all_scenarios() -> List[Scenario]:
    load_all()
    return sorted(_REGISTRY.values(), key=lambda s: natural_key(s.name))


def registered(module: Optional[str] = None) -> List[Scenario]:
    """Currently-registered scenarios *without* triggering load_all.

    Lets a scenario-bearing module enumerate its own registrations at
    the bottom of its import (load_all there would recurse).
    """
    entries = sorted(_REGISTRY.values(), key=lambda s: natural_key(s.name))
    if module:
        entries = [e for e in entries if e.module == module]
    return entries


def all_tags() -> Dict[str, int]:
    """Tag -> scenario count over the whole registry."""
    counts: Dict[str, int] = {}
    for entry in all_scenarios():
        for tag in entry.spec.tags:
            counts[tag] = counts.get(tag, 0) + 1
    return dict(sorted(counts.items()))


def select(
    tags: Optional[Iterable[str]] = None,
    names: Optional[Iterable[str]] = None,
) -> List[Scenario]:
    """Scenarios matching any of ``tags`` and/or the explicit ``names``.

    With both filters the union is returned; with neither, everything.
    """
    entries = all_scenarios()
    if tags is None and names is None:
        return entries
    wanted_tags = set(tags or ())
    wanted_names = set(names or ())
    unknown = wanted_names - {e.name for e in entries}
    if unknown:
        raise KeyError(f"unknown scenario names: {sorted(unknown)}")
    return [
        e
        for e in entries
        if e.name in wanted_names
        or (wanted_tags and e.spec.matches(wanted_tags))
    ]
