"""Uniform scenario result records and their aggregation.

Every backend (serial, process pool, cache replay) produces the same
:class:`ScenarioResult`; a run of many scenarios aggregates into one
:class:`Report` that renders as text or round-trips through JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class ScenarioResult:
    """The outcome of executing one :class:`ScenarioSpec`."""

    name: str
    spec_hash: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    tags: Tuple[str, ...] = ()
    status: str = "ok"              # ok | error | timeout
    claim: str = ""
    verdict: Dict[str, Any] = field(default_factory=dict)
    rows: List[dict] = field(default_factory=list)
    elapsed_s: float = 0.0
    backend: str = "serial"
    cached: bool = False
    code_version: str = ""
    error: Optional[str] = None
    #: verdict keys that are negative controls — expected False; set
    #: by the scenario's @scenario(expected_false=...) declaration.
    expected_false: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def reproduced(self) -> Optional[bool]:
        """Whether every boolean verdict holds (negative controls excepted).

        ``None`` when the scenario failed or asserts nothing boolean.
        """
        if not self.ok:
            return None
        bools = {
            k: v for k, v in self.verdict.items() if isinstance(v, bool)
        }
        if not bools:
            return None
        return all(v or k in self.expected_false for k, v in bools.items())

    def headline_metric(self) -> Tuple[str, Any]:
        """The first numeric (non-bool) verdict entry, or the row count."""
        for key, value in self.verdict.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return key, value
        return "rows", len(self.rows)

    def as_cached(self) -> "ScenarioResult":
        return replace(self, cached=True, backend="cache")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "params": dict(self.params),
            "seed": self.seed,
            "tags": list(self.tags),
            "status": self.status,
            "claim": self.claim,
            "verdict": dict(self.verdict),
            "rows": list(self.rows),
            "elapsed_s": self.elapsed_s,
            "backend": self.backend,
            "cached": self.cached,
            "code_version": self.code_version,
            "error": self.error,
            "expected_false": list(self.expected_false),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        return cls(
            name=data["name"],
            spec_hash=data["spec_hash"],
            params=dict(data.get("params") or {}),
            seed=data.get("seed", 0),
            tags=tuple(data.get("tags") or ()),
            status=data.get("status", "ok"),
            claim=data.get("claim", ""),
            verdict=dict(data.get("verdict") or {}),
            rows=list(data.get("rows") or []),
            elapsed_s=data.get("elapsed_s", 0.0),
            backend=data.get("backend", "serial"),
            cached=data.get("cached", False),
            code_version=data.get("code_version", ""),
            error=data.get("error"),
            expected_false=tuple(data.get("expected_false") or ()),
        )

    def comparable_payload(self) -> Dict[str, Any]:
        """The deterministic part of the result (for equivalence checks)."""
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "status": self.status,
            "verdict": self.verdict,
            "rows": self.rows,
        }


@dataclass
class Report:
    """An aggregated run of many scenarios."""

    results: List[ScenarioResult] = field(default_factory=list)
    code_version: str = ""

    def __post_init__(self) -> None:
        from repro.engine.registry import natural_key

        self.results = sorted(self.results, key=lambda r: natural_key(r.name))

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def get(self, name: str) -> Optional[ScenarioResult]:
        for result in self.results:
            if result.name == name:
                return result
        return None

    @property
    def executed(self) -> List[ScenarioResult]:
        return [r for r in self.results if not r.cached]

    @property
    def from_cache(self) -> List[ScenarioResult]:
        return [r for r in self.results if r.cached]

    @property
    def failed(self) -> List[ScenarioResult]:
        return [r for r in self.results if not r.ok]

    # -- rendering ----------------------------------------------------------

    def summary_rows(self) -> List[dict]:
        rows = []
        for result in self.results:
            metric, value = result.headline_metric()
            reproduced = result.reproduced
            rows.append(
                {
                    "scenario": result.name,
                    "status": result.status,
                    "reproduced": "-" if reproduced is None else reproduced,
                    "backend": result.backend,
                    "cached": result.cached,
                    "elapsed_s": round(result.elapsed_s, 3),
                    "headline": f"{metric}={value}",
                }
            )
        return rows

    def render(self) -> str:
        from repro.analysis.report import format_table

        lines = [format_table(self.summary_rows())]
        total = sum(r.elapsed_s for r in self.executed)
        lines.append("")
        lines.append(
            f"{len(self.results)} scenarios: "
            f"{len(self.executed)} executed, {len(self.from_cache)} cached, "
            f"{len(self.failed)} failed ({total:.2f}s compute)"
        )
        for result in self.failed:
            lines.append(f"  {result.name}: {result.status}: {result.error}")
        return "\n".join(lines)

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code_version": self.code_version,
            "results": [r.to_dict() for r in self.results],
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1, default=str))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Report":
        data = json.loads(Path(path).read_text())
        return cls(
            results=[ScenarioResult.from_dict(r) for r in data["results"]],
            code_version=data.get("code_version", ""),
        )
