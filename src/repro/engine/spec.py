"""Frozen scenario descriptions with canonical content hashes.

A :class:`ScenarioSpec` is the unit of work the engine schedules and
caches: a name, a parameter dict, a base seed, and selection tags.  Two
specs with the same (name, params, seed) — regardless of dict ordering
or tag differences — have the same :meth:`content_hash`, which is what
the result cache and the per-job RNG derivation key on.  Tags are
deliberately excluded from the hash: they control *selection*, not the
computation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Tuple


#: marker distinguishing a frozen Mapping from a plain tuple of pairs,
#: so a params value like [("a", 1), ("b", 2)] round-trips as a tuple
#: instead of silently becoming a dict (and colliding hashes with one).
_MAPPING_TAG = "__mapping__"


def _freeze(value: Any) -> Any:
    """Recursively convert a params value into a hashable form."""
    if isinstance(value, Mapping):
        return (
            _MAPPING_TAG,
            tuple(sorted((str(k), _freeze(v)) for k, v in value.items())),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"scenario params must be JSON-like (got {type(value).__name__})"
    )


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for passing params back to functions."""
    if isinstance(value, tuple):
        if (
            len(value) == 2
            and value[0] == _MAPPING_TAG
            and isinstance(value[1], tuple)
        ):
            return {k: _thaw(v) for k, v in value[1]}
        return tuple(_thaw(v) for v in value)
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative, hashable unit of work."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    tags: FrozenSet[str] = field(default_factory=frozenset)

    def __init__(
        self,
        name: str,
        params: Mapping[str, Any] | Tuple[Tuple[str, Any], ...] | None = None,
        seed: int = 0,
        tags: Iterable[str] = (),
    ) -> None:
        object.__setattr__(self, "name", name)
        # store the bare (key, frozen-value) pairs; the _MAPPING_TAG
        # wrapper only matters for *nested* mappings
        _tag, pairs = _freeze(dict(params) if params else {})
        object.__setattr__(self, "params", pairs)
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "tags", frozenset(tags))

    # -- canonical identity -------------------------------------------------

    def params_dict(self) -> Dict[str, Any]:
        """The params as a plain dict (tuples stay tuples)."""
        return {k: _thaw(v) for k, v in self.params}

    def canonical_json(self) -> str:
        """Deterministic JSON encoding of the hashed identity.

        ``sort_keys`` canonicalises dict ordering and json renders
        tuples as lists, so a params dict given in any order — or with
        lists in place of tuples — hashes identically.
        """
        payload = {
            "name": self.name,
            "params": self.params_dict(),
            "seed": self.seed,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def content_hash(self) -> str:
        """Stable sha256 hex digest of (name, params, seed)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def derived_seed(self) -> int:
        """Deterministic per-job RNG seed from the content hash."""
        return int(self.content_hash[:12], 16) ^ self.seed

    # -- derivation ---------------------------------------------------------

    def with_params(self, **overrides: Any) -> "ScenarioSpec":
        """A new spec with some params replaced (hash changes)."""
        params = self.params_dict()
        params.update(overrides)
        return ScenarioSpec(self.name, params, self.seed, self.tags)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return ScenarioSpec(self.name, self.params_dict(), seed, self.tags)

    def matches(self, tags: Iterable[str] | None = None) -> bool:
        """True when *any* of the requested tags is present (or no filter)."""
        if not tags:
            return True
        return bool(self.tags & set(tags))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "params": self.params_dict(),
            "seed": self.seed,
            "tags": sorted(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            name=data["name"],
            params=data.get("params") or {},
            seed=data.get("seed", 0),
            tags=data.get("tags") or (),
        )
