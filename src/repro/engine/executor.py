"""Serial and multiprocessing scenario execution behind one interface.

Both backends funnel through :func:`run_spec`, which derives the job's
RNG seed from the spec hash before invoking the scenario function —
so a scenario produces bit-identical rows whether it runs in-process,
in a worker pool, or on a re-run (same seed => identical result).

The process backend uses a ``fork`` context where available (workers
inherit the loaded registry); under ``spawn`` the worker re-imports
the registry via :func:`repro.engine.registry.load_all`.
"""

from __future__ import annotations

import multiprocessing
import random
import time
import traceback
from typing import Callable, Iterable, List, Optional, Sequence

from repro.engine import registry
from repro.engine.cache import ResultCache
from repro.engine.results import Report, ScenarioResult
from repro.engine.spec import ScenarioSpec
from repro.telemetry.events import BUS
from repro.telemetry.metrics import METRICS

ProgressFn = Callable[[ScenarioResult], None]

_COMPONENT = "engine.executor"

#: terminal event kind per result status (anything else is an error).
_RESULT_KINDS = {"ok": "job-finish", "timeout": "job-timeout"}


def _observe_result(result: ScenarioResult) -> None:
    """Per-result telemetry at the collection point (any backend)."""
    if result.cached:
        METRICS.counter("engine.cache_hits").inc()
    else:
        if result.ok:
            METRICS.counter("engine.jobs_completed").inc()
        METRICS.histogram("engine.job_wall_s").observe(result.elapsed_s)
        METRICS.histogram(
            f"engine.wall_s.{result.name}"
        ).observe(result.elapsed_s)
    if not result.ok:
        METRICS.counter("engine.jobs_failed").inc()
    if BUS.enabled:
        BUS.emit(
            _COMPONENT,
            "cache-hit" if result.cached
            else _RESULT_KINDS.get(result.status, "job-error"),
            spec_hash=result.spec_hash,
            scenario=result.name,
            status=result.status,
            wall_time_s=round(result.elapsed_s, 6),
            backend=result.backend,
        )


def _seed_rngs(seed: int) -> None:
    random.seed(seed)
    try:
        import numpy

        numpy.random.seed(seed % 2**32)
    except ImportError:  # numpy is optional at runtime
        pass


def run_spec(spec: ScenarioSpec, backend: str = "serial") -> ScenarioResult:
    """Execute one spec deterministically and capture the outcome."""
    registry.load_all()
    scn = registry.get(spec.name)
    if BUS.enabled:
        BUS.emit(
            _COMPONENT, "job-start",
            spec_hash=spec.content_hash, scenario=spec.name,
            backend=backend,
        )
    _seed_rngs(spec.derived_seed())
    start = time.perf_counter()
    try:
        payload = scn.fn(**spec.params_dict()) or {}
        if not isinstance(payload, dict):
            raise TypeError(
                f"scenario {spec.name!r} returned "
                f"{type(payload).__name__}, expected a dict with "
                "rows/verdict/claim"
            )
        status, error = "ok", None
    except Exception:
        # the full, untruncated traceback: failures streamed out of a
        # worker (or a remote service) must be debuggable client-side
        payload, status, error = {}, "error", traceback.format_exc()
    elapsed = time.perf_counter() - start
    return ScenarioResult(
        name=spec.name,
        spec_hash=spec.content_hash,
        params=spec.params_dict(),
        seed=spec.seed,
        tags=tuple(sorted(spec.tags)),
        status=status,
        claim=payload.get("claim", ""),
        verdict=payload.get("verdict", {}),
        rows=payload.get("rows", []),
        elapsed_s=elapsed,
        backend=backend,
        error=error,
        expected_false=scn.expected_false,
    )


def _worker(spec: ScenarioSpec) -> ScenarioResult:
    return run_spec(spec, backend="process")


def _timeout_result(spec: ScenarioSpec, timeout_s: float) -> ScenarioResult:
    return ScenarioResult(
        name=spec.name,
        spec_hash=spec.content_hash,
        params=spec.params_dict(),
        seed=spec.seed,
        tags=tuple(sorted(spec.tags)),
        status="timeout",
        elapsed_s=timeout_s,
        backend="process",
        error=f"exceeded {timeout_s:.1f}s timeout",
    )


class SerialBackend:
    """Run scenarios one after the other in this process.

    Cannot enforce a timeout (there is no worker to abandon); callers
    wanting ``timeout_s`` honored get the process backend via
    :func:`make_backend`'s ``auto`` mode.
    """

    name = "serial"

    def __init__(self, timeout_s: Optional[float] = None):
        self.timeout_s = timeout_s  # accepted for interface parity

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        progress: Optional[ProgressFn] = None,
    ) -> List[ScenarioResult]:
        results = []
        for spec in specs:
            result = run_spec(spec, backend=self.name)
            results.append(result)
            if progress:
                progress(result)
        return results


class ProcessBackend:
    """Fan scenarios out over a multiprocessing worker pool.

    The per-job timeout is best-effort (measured from when the
    collector starts waiting on the job).  When a job times out, the
    whole pool is terminated — reclaiming the hung worker — and the
    not-yet-collected jobs are resubmitted to a fresh pool, so one
    hung scenario neither hangs the run nor mislabels queued jobs as
    timeouts.  Work a terminated pool had already finished but not
    delivered is re-executed; determinism makes that safe.
    """

    name = "process"

    def __init__(
        self, workers: int = 2, timeout_s: Optional[float] = None
    ):
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        progress: Optional[ProgressFn] = None,
    ) -> List[ScenarioResult]:
        registry.load_all()  # before fork, so workers inherit it
        results: List[ScenarioResult] = []
        remaining = list(specs)
        while remaining:
            remaining = self._run_batch(remaining, results, progress)
        return results

    def _run_batch(
        self,
        specs: List[ScenarioSpec],
        results: List[ScenarioResult],
        progress: Optional[ProgressFn],
    ) -> List[ScenarioSpec]:
        """One pool lifetime; returns the specs to resubmit (on timeout)."""
        pool = self._context().Pool(processes=self.workers)
        resubmit: List[ScenarioSpec] = []
        timed_out = False
        aborted = False
        try:
            pending = [
                (spec, pool.apply_async(_worker, (spec,))) for spec in specs
            ]
            for index, (spec, handle) in enumerate(pending):
                waited_from = time.perf_counter()
                try:
                    result = handle.get(self.timeout_s)
                except multiprocessing.TimeoutError:
                    timed_out = True
                    result = _timeout_result(spec, self.timeout_s or 0.0)
                    resubmit = [s for s, _h in pending[index + 1:]]
                except Exception as exc:
                    # format_exception(exc) renders the whole chain —
                    # including multiprocessing's RemoteTraceback cause,
                    # i.e. the worker-side frames — verbatim; elapsed is
                    # the collector's wait (an upper bound on the run),
                    # so even pool-level failures are queryable by time
                    result = ScenarioResult(
                        name=spec.name,
                        spec_hash=spec.content_hash,
                        params=spec.params_dict(),
                        seed=spec.seed,
                        tags=tuple(sorted(spec.tags)),
                        status="error",
                        backend=self.name,
                        elapsed_s=time.perf_counter() - waited_from,
                        error="".join(traceback.format_exception(exc)),
                    )
                results.append(result)
                if progress:
                    try:
                        progress(result)
                    except BaseException:
                        # a raising progress callback is the caller's
                        # abort signal (the service uses it to cancel):
                        # don't let close()+join() run out the queue
                        aborted = True
                        raise
                if timed_out:
                    break
        finally:
            if timed_out or aborted:
                pool.terminate()  # close()+join() would wait on the queue
            else:
                pool.close()
            pool.join()
        return resubmit


def make_backend(
    backend: str = "auto",
    workers: int = 1,
    timeout_s: Optional[float] = None,
):
    if backend == "auto":
        # a timeout needs a worker process to abandon, so it forces
        # the process backend even at workers=1
        backend = (
            "process" if workers > 1 or timeout_s is not None else "serial"
        )
    if backend == "serial":
        return SerialBackend(timeout_s=timeout_s)
    if backend == "process":
        return ProcessBackend(workers=workers, timeout_s=timeout_s)
    raise ValueError(f"unknown backend {backend!r}")


def execute(
    specs: Iterable[ScenarioSpec],
    *,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    backend: str = "auto",
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
) -> Report:
    """Run the given specs, consulting and filling ``cache`` if given.

    Cached scenarios are not re-executed; everything else runs on the
    selected backend.  The returned :class:`Report` mixes cached and
    fresh results, sorted by scenario name.
    """
    specs = list(specs)
    results: List[ScenarioResult] = []
    to_run: List[ScenarioSpec] = []

    def observed(result: ScenarioResult) -> None:
        _observe_result(result)
        if progress:
            progress(result)

    for spec in specs:
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results.append(hit)
            observed(hit)
        else:
            to_run.append(spec)
    runner = make_backend(backend, workers=workers, timeout_s=timeout_s)
    fresh = runner.run(to_run, progress=observed)
    if cache is not None:
        for result in fresh:
            if result.ok:
                cache.put(result)
    code_version = cache.code_version if cache is not None else ""
    return Report(results=results + fresh, code_version=code_version)
