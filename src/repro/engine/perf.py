"""Benchmark runs, the perf trajectory, and the regression gate.

One uniform payload (``repro-bench-v1``, the shape ``BENCH_RESULTS.json``
has always carried) feeds three consumers:

* ``BENCH_RESULTS.json`` — the latest full measurement, committed as
  the regression baseline;
* ``BENCH_TRAJECTORY.json`` — an append-only log of (code version,
  per-scenario wall time) entries, so perf wins and losses are visible
  over the repo's history;
* the regression gate — compares the current run against a baseline
  payload over the scenarios they share and fails (exit code 3) when
  total wall time regresses beyond a configurable threshold.

``python -m repro bench`` and ``benchmarks/run_all.py`` are both thin
wrappers over :func:`run_bench`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.engine import registry
from repro.engine.cache import ResultCache, compute_code_version
from repro.engine.executor import execute
from repro.engine.results import Report

BENCH_SCHEMA = "repro-bench-v1"
TRAJECTORY_SCHEMA = "repro-bench-trajectory-v1"

#: Default allowed wall-time growth before the gate trips (25%).
DEFAULT_THRESHOLD = 0.25

#: Wall-time growth below this absolute floor never trips the gate (or
#: flags a scenario) — such deltas are interpreter/executor noise.
_MIN_COMPARABLE_S = 0.25

EXIT_OK = 0
EXIT_SCENARIOS_FAILED = 1
EXIT_REGRESSION = 3


def bench_payload(report: Report, workers: int) -> dict:
    """The uniform ``repro-bench-v1`` payload for an executed report."""
    benchmarks = []
    for result in report:
        metric, value = result.headline_metric()
        benchmarks.append(
            {
                "scenario": result.name,
                "params": result.params,
                "tags": sorted(result.tags),
                "status": result.status,
                "headline_metric": {"name": metric, "value": value},
                "wall_time_s": round(result.elapsed_s, 4),
                "cached": result.cached,
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "code_version": compute_code_version(),
        "workers": workers,
        "scenarios": len(benchmarks),
        "failed": len(report.failed),
        "total_wall_time_s": round(
            sum(r.elapsed_s for r in report.executed), 3
        ),
        "benchmarks": benchmarks,
    }


def trajectory_entry(payload: dict, tags: Optional[Sequence[str]]) -> dict:
    """One append-only trajectory record derived from a bench payload."""
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "code_version": payload["code_version"],
        "workers": payload["workers"],
        "tags": sorted(tags) if tags else [],
        "scenarios": payload["scenarios"],
        "failed": payload["failed"],
        "total_wall_time_s": payload["total_wall_time_s"],
        "per_scenario_wall_s": {
            b["scenario"]: b["wall_time_s"]
            for b in payload["benchmarks"]
            if not b["cached"]
        },
    }


def append_trajectory(path: str | Path, entry: dict) -> Path:
    """Append *entry* to the trajectory file, creating it if missing."""
    path = Path(path)
    data = {"schema": TRAJECTORY_SCHEMA, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except ValueError:
            loaded = None  # corrupt file: restart the log, don't crash
        if (
            isinstance(loaded, dict)
            and loaded.get("schema") == TRAJECTORY_SCHEMA
            and isinstance(loaded.get("entries"), list)
        ):
            data = loaded
    data["entries"].append(entry)
    path.write_text(json.dumps(data, indent=1, default=str) + "\n")
    return path


@dataclass
class BenchComparison:
    """Outcome of gating a bench payload against a baseline payload."""

    baseline_version: str
    current_version: str
    threshold: float
    compared: int                  # scenarios present in both runs
    baseline_total_s: float
    current_total_s: float
    regressions: List[str]         # per-scenario informational flags
    regressed: bool                # total exceeded the threshold
    #: scenarios left out of the comparison because one side replayed
    #: them from the result cache (a replay's wall time measures the
    #: cache, not the scenario — comparing it would mask regressions
    #: or fake wins).
    excluded_cached: int = 0

    @property
    def ratio(self) -> float:
        if self.baseline_total_s <= 0:
            return 1.0
        return self.current_total_s / self.baseline_total_s

    def render(self) -> str:
        lines = [
            f"baseline {self.baseline_version} -> current "
            f"{self.current_version}: {self.compared} comparable scenarios",
            f"wall time {self.baseline_total_s:.2f}s -> "
            f"{self.current_total_s:.2f}s ({self.ratio:.2f}x, "
            f"threshold {1.0 + self.threshold:.2f}x)",
        ]
        if self.excluded_cached:
            lines.append(
                f"  {self.excluded_cached} scenario(s) excluded from the "
                "gate: cache replays, not fresh measurements"
            )
        for name in self.regressions:
            lines.append(f"  slower: {name}")
        lines.append(
            "REGRESSION: total wall time over threshold"
            if self.regressed
            else "regression gate passed"
        )
        return "\n".join(lines)


def _wall_times(payload: dict) -> Dict[str, float]:
    """Scenario -> fresh wall time; cache replays are never comparable."""
    return {
        b["scenario"]: b["wall_time_s"]
        for b in payload.get("benchmarks", [])
        if b.get("status") == "ok" and not b.get("cached")
    }


def _names(payload: dict) -> set:
    return {
        b["scenario"]
        for b in payload.get("benchmarks", [])
        if b.get("status") == "ok"
    }


def compare_payloads(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> BenchComparison:
    """Gate *current* against *baseline* over their shared scenarios.

    Only the intersection is compared, so a ``--tags smoke`` run gates
    cleanly against a committed full-suite baseline.  Scenarios either
    side replayed from the result cache (``"cached": true``) are
    excluded — a replay's wall time measures the cache, so letting it
    into the comparison would mask a real regression or fake a win —
    and the exclusion count is reported.  The pass/fail verdict is on
    the summed wall time; per-scenario slowdowns beyond the threshold
    are reported informationally (they are noisy in isolation,
    especially under worker contention).
    """
    base = _wall_times(baseline)
    cur = _wall_times(current)
    shared = sorted(set(base) & set(cur), key=registry.natural_key)
    excluded_cached = len(
        (_names(current) & _names(baseline)) - set(shared)
    )
    base_total = sum(base[name] for name in shared)
    cur_total = sum(cur[name] for name in shared)
    regressions = [
        f"{name}: {base[name]:.2f}s -> {cur[name]:.2f}s"
        for name in shared
        if cur[name] > base[name] * (1.0 + threshold)
        and cur[name] - base[name] > _MIN_COMPARABLE_S
    ]
    return BenchComparison(
        baseline_version=baseline.get("code_version", "?"),
        current_version=current.get("code_version", "?"),
        threshold=threshold,
        compared=len(shared),
        baseline_total_s=round(base_total, 3),
        current_total_s=round(cur_total, 3),
        regressions=regressions,
        regressed=(
            bool(shared)
            and cur_total > base_total * (1.0 + threshold)
            and cur_total - base_total > _MIN_COMPARABLE_S
        ),
        excluded_cached=excluded_cached,
    )


PROFILE_SCHEMA = "repro-bench-profile-v1"


def profile_payload(
    entries: Sequence, top: int = 20, quiet: bool = False
) -> dict:
    """cProfile every entry serially; keep the top cumulative functions.

    Returns the ``repro-bench-profile-v1`` payload: per scenario, its
    profiled wall time and the *top* functions by cumulative time
    (``ncalls``/``tottime``/``cumtime``) — the data future perf PRs
    should start from instead of guessing.
    """
    import cProfile
    import pstats

    from repro.engine.executor import run_spec

    scenarios = []
    for entry in entries:
        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.enable()
        result = run_spec(entry.spec, backend="profile")
        profiler.disable()
        elapsed = time.perf_counter() - start
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        functions = []
        for func in stats.fcn_list[: top + 5]:  # type: ignore[attr-defined]
            file, line, name = func
            cc, ncalls, tottime, cumtime, _callers = stats.stats[func]
            if name in ("<built-in method builtins.exec>",) or (
                file == "~" and "profiler" in name
            ):
                continue
            functions.append(
                {
                    "function": name,
                    "file": file,
                    "line": line,
                    "ncalls": ncalls,
                    "primitive_calls": cc,
                    "tottime_s": round(tottime, 4),
                    "cumtime_s": round(cumtime, 4),
                }
            )
            if len(functions) == top:
                break
        scenarios.append(
            {
                "scenario": entry.name,
                "status": result.status,
                "wall_time_s": round(elapsed, 4),
                "top_functions": functions,
            }
        )
        if not quiet:
            print(f"  {entry.name:<14} {result.status:<7} {elapsed:.2f}s")
    return {
        "schema": PROFILE_SCHEMA,
        "code_version": compute_code_version(),
        "top": top,
        "scenarios": scenarios,
    }


def run_profile(
    tags: Optional[Sequence[str]] = None,
    names: Optional[Sequence[str]] = None,
    out: str | Path = "BENCH_PROFILE.json",
    top: int = 20,
    quiet: bool = False,
) -> int:
    """``python -m repro bench --profile``: write ``BENCH_PROFILE.json``.

    Runs serially (a profiler per worker process would be meaningless)
    and skips the trajectory and the regression gate — profiled wall
    times carry instrumentation overhead and must never be compared
    against uninstrumented baselines.
    """
    entries = registry.select(tags=list(tags) if tags else None,
                              names=list(names) if names else None)
    if not entries:
        print("no scenarios selected")
        return 2
    payload = profile_payload(entries, top=top, quiet=quiet)
    Path(out).write_text(json.dumps(payload, indent=1, default=str) + "\n")
    failed = sum(1 for s in payload["scenarios"] if s["status"] != "ok")
    print(
        f"\nwrote {out}: {len(payload['scenarios'])} scenarios profiled, "
        f"top {top} cumulative functions each"
    )
    return EXIT_SCENARIOS_FAILED if failed else EXIT_OK


def run_bench(
    tags: Optional[Sequence[str]] = None,
    names: Optional[Sequence[str]] = None,
    workers: int = 4,
    timeout_s: Optional[float] = 300.0,
    out: str | Path = "BENCH_RESULTS.json",
    trajectory: Optional[str | Path] = "BENCH_TRAJECTORY.json",
    baseline: Optional[str | Path] = None,
    threshold: float = DEFAULT_THRESHOLD,
    cache_dir: Optional[str | Path] = None,
    quiet: bool = False,
) -> int:
    """Execute the selected scenarios and run the perf bookkeeping.

    The baseline defaults to whatever *out* held before this run (the
    committed results file); pass ``baseline=""`` to skip the gate and
    ``trajectory=None`` to skip the log.  Benchmarks run uncached by
    default so wall times are real.
    """
    entries = registry.select(tags=list(tags) if tags else None,
                              names=list(names) if names else None)
    if not entries:
        print("no scenarios selected")
        return 2
    explicit_baseline = baseline not in (None, "")
    baseline_path = Path(baseline) if explicit_baseline else Path(out)
    baseline_payload = None
    if baseline != "" and baseline_path.exists():
        try:
            loaded = json.loads(baseline_path.read_text())
        except ValueError:
            loaded = None
        if isinstance(loaded, dict) and loaded.get("schema") == BENCH_SCHEMA:
            baseline_payload = loaded
        elif explicit_baseline:
            # A requested gate that cannot load must fail loudly, not
            # silently wave regressions through.
            print(
                f"error: baseline {baseline_path} is not a "
                f"{BENCH_SCHEMA} payload"
            )
            return 2
    elif explicit_baseline:
        print(f"error: baseline {baseline_path} does not exist")
        return 2

    def progress(result) -> None:
        if not quiet:
            print(
                f"  {result.name:<14} {result.status:<7} "
                f"{result.elapsed_s:.2f}s",
                flush=True,
            )

    report = execute(
        [e.spec for e in entries],
        workers=workers,
        timeout_s=timeout_s,
        cache=ResultCache(cache_dir) if cache_dir else None,
        progress=progress,
    )
    payload = bench_payload(report, workers)
    Path(out).write_text(json.dumps(payload, indent=1, default=str) + "\n")
    print(
        f"\nwrote {out}: {payload['scenarios']} scenarios, "
        f"{payload['failed']} failed, "
        f"{payload['total_wall_time_s']:.2f}s total"
    )
    replayed = sum(1 for b in payload["benchmarks"] if b["cached"])
    if replayed:
        print(
            f"warning: {replayed} scenario(s) replayed from the result "
            "cache (marked \"cached\": true); their wall times are not "
            "fresh measurements and are excluded from the regression "
            "gate — this payload is not a full benchmark baseline"
        )
    if trajectory:
        append_trajectory(trajectory, trajectory_entry(payload, tags))
        print(f"appended trajectory entry to {trajectory}")
    exit_code = EXIT_SCENARIOS_FAILED if report.failed else EXIT_OK
    if baseline_payload is not None:
        comparison = compare_payloads(payload, baseline_payload, threshold)
        print()
        print(comparison.render())
        if comparison.regressed and exit_code == EXIT_OK:
            exit_code = EXIT_REGRESSION
    elif baseline != "":
        print(f"no baseline at {baseline_path}; regression gate skipped")
    return exit_code
