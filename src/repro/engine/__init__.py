"""Scenario engine: declarative, batchable, cacheable workloads.

Every workload in the repository — the 18 paper experiments, the nine
ablation benchmarks and the mapping design-space sweeps — is described
by a frozen :class:`~repro.engine.spec.ScenarioSpec` and registered in
one namespace (:mod:`repro.engine.registry`).  The engine then provides

* :mod:`repro.engine.executor` — serial and multiprocessing backends
  behind one interface, with per-job timeouts and deterministic
  per-job RNG seeding derived from the spec hash;
* :mod:`repro.engine.cache` — an on-disk JSON result cache keyed by
  spec hash + code version, so re-running a sweep only executes
  changed scenarios;
* :mod:`repro.engine.results` — uniform :class:`ScenarioResult`
  records aggregated into a single :class:`Report`;
* :mod:`repro.engine.cli` — ``python -m repro run|list|report``.
"""

from repro.engine.spec import ScenarioSpec
from repro.engine.results import Report, ScenarioResult
from repro.engine.registry import (
    Scenario,
    all_scenarios,
    get,
    load_all,
    scenario,
    select,
)
from repro.engine.executor import execute
from repro.engine.cache import ResultCache, compute_code_version

__all__ = [
    "Report",
    "ResultCache",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "all_scenarios",
    "compute_code_version",
    "execute",
    "get",
    "load_all",
    "scenario",
    "select",
]
