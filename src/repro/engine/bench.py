"""pytest-benchmark bridge for engine scenarios.

The ``benchmarks/bench_a*.py`` shims all do the same thing: run one
registered scenario under the benchmark fixture, print its table, and
assert its verdict.  That lives here so verdict semantics (including
negative controls) stay in one place.
"""

from __future__ import annotations

from repro.engine import registry
from repro.engine.executor import run_spec
from repro.engine.results import ScenarioResult


def run_scenario_bench(name: str, benchmark) -> ScenarioResult:
    """Run scenario ``name`` once under pytest-benchmark and assert it.

    Prints the scenario's row table (visible with ``-s``), fails the
    test on an error/timeout result or any failed verdict boolean, and
    returns the :class:`ScenarioResult` for extra assertions.
    """
    from repro.analysis.report import format_table

    spec = registry.get(name).spec
    result = benchmark.pedantic(
        lambda: run_spec(spec), rounds=1, iterations=1
    )
    print()
    print(format_table(result.rows))
    assert result.ok, f"{name} {result.status}: {result.error}"
    failed = {
        k: v
        for k, v in result.verdict.items()
        if isinstance(v, bool) and not v and k not in result.expected_false
    }
    assert not failed, f"{name} verdict failed: {failed}"
    return result
