"""On-disk JSON result cache keyed by spec hash + code version.

A cache entry is one JSON file ``<root>/<code_version>/<spec_hash>.json``
holding a serialized :class:`ScenarioResult`.  The code version is a
digest over every ``src/repro/**/*.py`` source file, so *any* source
change invalidates the whole cache — coarse but sound: re-running a
sweep after an edit only re-executes, never replays stale results.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec

_CODE_VERSION: Optional[str] = None


def compute_code_version(root: Optional[Path] = None) -> str:
    """Digest of the repro package sources (memoized per process)."""
    global _CODE_VERSION
    if root is None:
        if _CODE_VERSION is not None:
            return _CODE_VERSION
        root = Path(__file__).resolve().parents[1]  # src/repro
    digest = hashlib.sha256()
    for path in sorted(Path(root).rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    version = digest.hexdigest()[:12]
    if root == Path(__file__).resolve().parents[1]:
        _CODE_VERSION = version
    return version


class ResultCache:
    """Content-addressed store of successful scenario results."""

    def __init__(
        self, root: str | Path, code_version: Optional[str] = None
    ):
        self.root = Path(root)
        self.code_version = code_version or compute_code_version()
        self._dir = self.root / self.code_version

    def path_for(self, spec: ScenarioSpec) -> Path:
        return self._dir / f"{spec.content_hash}.json"

    def get(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """The cached result for this spec under the current code, or None."""
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            result = ScenarioResult.from_dict(data)
        except (ValueError, KeyError, TypeError):
            return None  # corrupt entry: treat as a miss
        return result.as_cached()

    def put(self, result: ScenarioResult) -> Path:
        path = self._dir / f"{result.spec_hash}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result.to_dict()
        payload["code_version"] = self.code_version
        payload["cached"] = False  # stored fresh; marked cached on read
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, default=str))
        tmp.replace(path)
        return path

    def __contains__(self, spec: ScenarioSpec) -> bool:
        return self.path_for(spec).exists()

    def entries(self) -> list:
        """All results stored under the current code version."""
        if not self._dir.is_dir():
            return []
        results = []
        for path in sorted(self._dir.glob("*.json")):
            try:
                results.append(
                    ScenarioResult.from_dict(json.loads(path.read_text()))
                )
            except (ValueError, KeyError, TypeError):
                continue
        return results

    def clear(self) -> int:
        """Drop every entry (all code versions); returns files removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def prune(self, max_entries: int) -> int:
        """LRU-cap the store at ``max_entries`` files; returns removed.

        Recency is file mtime — a replayed entry can be touched by the
        reader to keep it warm, but by default recency == write time.
        Pruning spans *all* code versions (stale versions are the
        first thing a long campaign should shed) and removes emptied
        version directories.  ``max_entries < 0`` is a no-op.
        """
        if max_entries < 0 or not self.root.is_dir():
            return 0
        entries = []
        for path in self.root.rglob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue  # raced with a concurrent prune/clear
        entries.sort(key=lambda pair: pair[0], reverse=True)
        removed = 0
        for _mtime, path in entries[max_entries:]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        for directory in self.root.iterdir():
            try:
                if directory.is_dir() and not any(directory.iterdir()):
                    directory.rmdir()
            except OSError:
                # racing a concurrent put/prune (ENOTEMPTY/ENOENT):
                # losing the cleanup must not fail the prune
                continue
        return removed

    def stats(self) -> dict:
        """Entry/byte totals, split current-version vs stale."""
        total = current = size = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.json"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                total += 1
                if path.parent.name == self.code_version:
                    current += 1
        return {
            "entries": total,
            "current_version": current,
            "stale": total - current,
            "bytes": size,
            "root": str(self.root),
            "code_version": self.code_version,
        }
